//! Facade crate re-exporting the rcqa workspace.
pub use rcqa_baselines as baselines;
pub use rcqa_core as core;
pub use rcqa_data as data;
pub use rcqa_gen as gen;
pub use rcqa_logic as logic;
pub use rcqa_query as query;
pub use rcqa_sat as sat;
pub use rcqa_session as session;
pub use rcqa_wal as wal;
