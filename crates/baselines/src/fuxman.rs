//! A Fuxman / ConQuer-style lower-bound rewriting for SUM queries in
//! Caggforest, used to reproduce the Section 7.3 refutation.
//!
//! Fuxman's technique computes the lower bound of a SUM by aggregating only
//! join results that are *certainly* present, taking the minimum contribution
//! within each block and dropping blocks whose participation is uncertain.
//! Dropping a contribution is sound when all values are non-negative — a
//! dropped term can only make the reported bound smaller — but becomes
//! unsound as soon as negative values are allowed (Theorem 7.9 of the paper):
//! an uncertain *negative* contribution can push the true greatest lower
//! bound below the reported one.
//!
//! The implementation targets star-shaped Caggforest queries: one *fact atom*
//! containing the aggregated variable, plus *dimension atoms* that join with
//! the fact atom through the fact atom's key (the shape of the Lemma 7.3 /
//! Theorem 7.9 query and of typical ConQuer workloads).

use rcqa_core::forall::{match_fact, Binding};
use rcqa_core::index::DbIndex;
use rcqa_core::prepared::PreparedAggQuery;
use rcqa_core::CoreError;
use rcqa_data::{AggFunc, DatabaseInstance, Rational, Value};
use rcqa_query::{is_caggforest, AggTerm, Atom, Term};

/// The result of the Fuxman-style SUM lower-bound computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuxmanGlb {
    /// The reported lower bound (see module documentation for when this value
    /// is actually sound).
    pub glb: Rational,
    /// Number of fact-table blocks whose contribution was counted.
    pub counted_blocks: usize,
    /// Number of fact-table blocks dropped because their participation in the
    /// join is uncertain.
    pub dropped_blocks: usize,
}

/// Computes the Fuxman-style lower bound of a closed star-shaped Caggforest
/// SUM query.
pub fn fuxman_sum_glb(
    query: &PreparedAggQuery,
    db: &DatabaseInstance,
) -> Result<FuxmanGlb, CoreError> {
    if query.normalised.agg != AggFunc::Sum {
        return Err(CoreError::UnsupportedAggregate {
            reason: "the Fuxman baseline only supports SUM and COUNT queries".into(),
        });
    }
    if !is_caggforest(&query.original, db.schema()) {
        return Err(CoreError::UnsupportedAggregate {
            reason: "the query is not in Caggforest".into(),
        });
    }
    let body = &query.normalised.body;
    // Identify the fact atom: the one containing the aggregated variable (or,
    // for COUNT-style constant terms, the last atom).
    let fact_atom: &Atom = match &query.normalised.term {
        AggTerm::Var(v) => body
            .atoms()
            .iter()
            .find(|a| a.vars().contains(v))
            .ok_or_else(|| CoreError::UnsupportedAggregate {
                reason: "aggregated variable does not occur in the body".into(),
            })?,
        AggTerm::Const(_) => {
            body.atoms()
                .last()
                .ok_or_else(|| CoreError::UnsupportedAggregate {
                    reason: "empty query body".into(),
                })?
        }
    };
    let dimension_atoms: Vec<&Atom> = body
        .atoms()
        .iter()
        .filter(|a| a.relation() != fact_atom.relation())
        .collect();

    let index = DbIndex::new(db);
    if !index.has_relation(fact_atom.relation()) {
        return Err(CoreError::FallbackUnavailable(
            "fact relation missing".into(),
        ));
    }
    let fact_index = index.relation(fact_atom.relation());
    let fact_key_len = db
        .schema()
        .signature(fact_atom.relation())
        .map(|s| s.key_len())
        .unwrap_or(fact_atom.arity());

    let interner = index.interner();
    let mut total = Rational::ZERO;
    let mut counted = 0usize;
    let mut dropped = 0usize;
    'blocks: for block in fact_index.blocks() {
        // Every fact of the block must match the fact atom's pattern; derive
        // the minimum contribution. (The baseline is a reference point, not a
        // hot path: it materialises each columnar row back into a `Fact` and
        // reuses the value-level `match_fact`.)
        let mut min_value: Option<Rational> = None;
        let mut key_binding: Option<Binding> = None;
        for row in 0..block.cols.rows() {
            let fact = fact_index.materialize_fact(block, row, interner);
            match match_fact(fact_atom, &fact, &Binding::new()) {
                Some(binding) => {
                    let value = match &query.normalised.term {
                        AggTerm::Const(c) => *c,
                        AggTerm::Var(v) => binding
                            .get(v)
                            .and_then(Value::as_num)
                            .expect("numeric aggregated column"),
                    };
                    min_value = Some(match min_value {
                        None => value,
                        Some(m) => m.min(value),
                    });
                    if key_binding.is_none() {
                        // Restrict to the key variables of the fact atom; they
                        // are shared by all facts of the block.
                        let key_vars: Vec<_> =
                            fact_atom.key_vars(fact_key_len).into_iter().collect();
                        key_binding = Some(
                            binding
                                .iter()
                                .filter(|(v, _)| key_vars.contains(v))
                                .map(|(v, val)| (v.clone(), val.clone()))
                                .collect(),
                        );
                    }
                }
                None => {
                    // Some repair may drop this block from the join.
                    dropped += 1;
                    continue 'blocks;
                }
            }
        }
        let Some(min_value) = min_value else {
            continue;
        };
        let key_binding = key_binding.unwrap_or_default();
        // Every dimension atom must be *certainly* satisfied for this block's
        // key: the dimension block it points to exists and all its facts match
        // the dimension pattern.
        for dim in &dimension_atoms {
            let dim_key_len = db
                .schema()
                .signature(dim.relation())
                .map(|s| s.key_len())
                .unwrap_or(dim.arity());
            // Absent constants / key values resolve to MISSING_ID, which
            // matches no block — exactly the "not certainly satisfied" case.
            let pattern: Vec<Option<u32>> = (0..dim_key_len)
                .map(|p| match dim.term(p) {
                    Term::Const(c) => Some(interner.id_or_missing(c)),
                    Term::Var(v) => key_binding.get(v).map(|val| interner.id_or_missing(val)),
                })
                .collect();
            let dim_index = index.relation(dim.relation());
            let mut any_block = false;
            let mut certain = true;
            for b in dim_index.blocks_matching(&pattern, interner) {
                any_block = true;
                if !(0..b.cols.rows()).all(|row| {
                    let f = dim_index.materialize_fact(b, row, interner);
                    match_fact(dim, &f, &key_binding).is_some()
                }) {
                    certain = false;
                    break;
                }
            }
            if !any_block || !certain {
                dropped += 1;
                continue 'blocks;
            }
        }
        total += min_value;
        counted += 1;
    }
    Ok(FuxmanGlb {
        glb: total,
        counted_blocks: counted,
        dropped_blocks: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_core::exact::exact_bounds;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_gen::fuxman_counterexample;
    use rcqa_query::parse_agg_query;

    fn star_schema() -> Schema {
        Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 2, [2]).unwrap())
    }

    #[test]
    fn sound_on_non_negative_data() {
        // A small star instance with non-negative values: the Fuxman bound is
        // a valid lower bound (it may be smaller than the exact GLB because it
        // drops uncertain contributions).
        let mut db = DatabaseInstance::new(star_schema());
        db.insert_all([
            fact!("S1", "a1", "c1"),
            fact!("S1", "a2", "c1"),
            fact!("S1", "a2", "other"),
            fact!("S2", "b1", "c2"),
            fact!("T", "a1", "b1", 10),
            fact!("T", "a2", "b1", 7),
        ])
        .unwrap();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let fux = fuxman_sum_glb(&q, &db).unwrap();
        let exact = exact_bounds(&q, &db, 1 << 20).unwrap();
        // Exact GLB: repair dropping (a2, c1) yields only the a1 row: 10.
        assert_eq!(exact.glb, Some(rat(10)));
        // Fuxman: counts the certain a1 block, drops the uncertain a2 block.
        assert_eq!(fux.glb, rat(10));
        assert_eq!(fux.counted_blocks, 1);
        assert_eq!(fux.dropped_blocks, 1);
        assert!(fux.glb <= exact.glb.unwrap());
    }

    #[test]
    fn section_7_3_refutation_unsound_with_negative_values() {
        let (db, query) = fuxman_counterexample();
        let q = PreparedAggQuery::new(&query, db.schema()).unwrap();
        let fux = fuxman_sum_glb(&q, &db).unwrap();
        let exact = exact_bounds(&q, &db, 1 << 20).unwrap();
        // The true greatest lower bound is -1 (repair keeping S1(u, c1)).
        assert_eq!(exact.glb, Some(rat(-1)));
        // The Fuxman-style bound drops the uncertain negative contribution and
        // reports 0, which is NOT a lower bound: the claim of [21] fails.
        assert_eq!(fux.glb, rat(0));
        assert!(fux.glb > exact.glb.unwrap());
    }

    #[test]
    fn rejects_non_caggforest_queries() {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap());
        let db = DatabaseInstance::new(schema.clone());
        // Partial join: not in Cforest.
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(r) <- R(x, y), S(y, z, r)").unwrap(),
            &schema,
        )
        .unwrap();
        assert!(fuxman_sum_glb(&q, &db).is_err());
    }
}
