//! # rcqa-baselines
//!
//! Baseline systems that the rewriting-based engine is compared against in
//! the experiments:
//!
//! * [`exact`] — exhaustive repair enumeration (re-exported from
//!   `rcqa-core`), the ground truth;
//! * [`maxsat`] — an AggCAvSAT-style reduction of `GLB-CQA` for SUM/COUNT
//!   queries to weighted partial MaxSAT (Dixit & Kolaitis);
//! * [`fuxman`] — a ConQuer/Fuxman-style lower-bound rewriting for Caggforest
//!   SUM queries, used to reproduce the Section 7.3 refutation.

#![warn(missing_docs)]

pub mod fuxman;
pub mod maxsat;

/// Exhaustive repair enumeration (ground truth), re-exported from `rcqa-core`.
pub mod exact {
    pub use rcqa_core::exact::{exact_bounds, exact_bounds_by_group, ExactBounds};
}

pub use fuxman::{fuxman_sum_glb, FuxmanGlb};
pub use maxsat::{maxsat_glb, MaxSatGlb};
