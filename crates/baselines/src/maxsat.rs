//! An AggCAvSAT-style baseline: computing `GLB-CQA` for SUM/COUNT queries by
//! reduction to weighted partial MaxSAT (after Dixit & Kolaitis, ICDE 2022,
//! cited as [17] in the paper).
//!
//! Encoding for a closed query `SUM(r) ← q(ū)` over an instance `db`:
//!
//! * one Boolean variable per fact that lies in an inconsistent block; hard
//!   *exactly-one* constraints per block encode that a repair picks one fact;
//! * one auxiliary variable per embedding `θ` of the body, with a hard clause
//!   `¬f_1 ∨ ... ∨ ¬f_k ∨ e_θ` (if all facts of the embedding are picked then
//!   the embedding is present);
//! * a soft clause `¬e_θ` with weight `θ(r)`.
//!
//! The optimal MaxSAT cost is then exactly the greatest lower bound. The
//! encoding requires non-negative weights, i.e. numeric columns over `Q≥0`.

use rcqa_core::forall::{embeddings, Binding};
use rcqa_core::glb::term_value;
use rcqa_core::index::DbIndex;
use rcqa_core::prepared::PreparedAggQuery;
use rcqa_core::CoreError;
use rcqa_data::{AggFunc, DatabaseInstance, Fact, NumericDomain, Rational};
use rcqa_sat::{Lit, MaxSatInstance, MaxSatResult};
use std::collections::HashMap;

/// Statistics about a MaxSAT-based GLB computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxSatGlb {
    /// The greatest lower bound, or `None` for `⊥`.
    pub glb: Option<Rational>,
    /// Number of Boolean variables in the encoding.
    pub variables: u32,
    /// Number of hard clauses.
    pub hard_clauses: usize,
    /// Number of soft clauses (embeddings).
    pub soft_clauses: usize,
}

/// Computes `GLB-CQA` of a closed SUM or COUNT query by the MaxSAT reduction.
pub fn maxsat_glb(query: &PreparedAggQuery, db: &DatabaseInstance) -> Result<MaxSatGlb, CoreError> {
    let agg = query.normalised.agg;
    if agg != AggFunc::Sum {
        return Err(CoreError::UnsupportedAggregate {
            reason: format!("the MaxSAT baseline supports SUM and COUNT queries, not {agg}"),
        });
    }
    if db.numeric_domain() != NumericDomain::NonNegative {
        return Err(CoreError::UnsupportedAggregate {
            reason: "the MaxSAT baseline requires non-negative weights (Q>=0 columns)".into(),
        });
    }
    if !query.normalised.body.free_vars().is_empty() {
        return Err(CoreError::UnsupportedAggregate {
            reason: "substitute group constants before calling the MaxSAT baseline".into(),
        });
    }

    // ⊥ check: is the query certain? (AggCAvSAT performs a separate CQA check;
    // we reuse the operational certainty checker.)
    let index = DbIndex::new(db);
    if !query.body.is_acyclic() {
        // The certainty check below requires a topological sort; for cyclic
        // bodies fall back to checking all repairs, which the caller should
        // avoid for large instances anyway.
        let analysis_certain = db.repairs().all(|r| {
            let idx = DbIndex::new(&r);
            !embeddings(&pseudo_levels(query, &r), &idx, &Binding::new()).is_empty()
        });
        if !analysis_certain {
            return Ok(MaxSatGlb {
                glb: None,
                variables: 0,
                hard_clauses: 0,
                soft_clauses: 0,
            });
        }
    } else {
        let checker = rcqa_core::forall::CertaintyChecker::new(query.body.levels(), &index);
        if !checker.certain_from(0, &Binding::new()) {
            return Ok(MaxSatGlb {
                glb: None,
                variables: 0,
                hard_clauses: 0,
                soft_clauses: 0,
            });
        }
    }

    let mut inst = MaxSatInstance::new();
    // One variable per fact in an inconsistent block.
    let mut fact_var: HashMap<Fact, Lit> = HashMap::new();
    for block in db.blocks() {
        if block.is_inconsistent() {
            let lits: Vec<Lit> = block
                .facts
                .iter()
                .map(|f| {
                    let v = inst.new_var();
                    let lit = Lit::pos(v);
                    fact_var.insert(f.clone(), lit);
                    lit
                })
                .collect();
            inst.add_hard_exactly_one(&lits);
        }
    }

    // Embeddings of the body over the whole (inconsistent) instance.
    let levels = if query.body.is_acyclic() {
        query.body.levels().to_vec()
    } else {
        pseudo_levels(query, db)
    };
    let embs = embeddings(&levels, &index, &Binding::new());
    let term = &query.normalised.term;
    for theta in &embs {
        let weight = term_value(term, theta);
        // Facts used by the embedding that live in inconsistent blocks.
        let mut clause: Vec<Lit> = Vec::new();
        for lvl in &levels {
            let fact = ground_fact(&lvl.atom, theta);
            if let Some(&lit) = fact_var.get(&fact) {
                clause.push(lit.negated());
            }
        }
        let e = Lit::pos(inst.new_var());
        clause.push(e);
        inst.add_hard(clause);
        inst.add_soft([e.negated()], weight);
    }

    let variables = inst.num_vars();
    let hard_clauses = inst.num_hard();
    let soft_clauses = inst.num_soft();
    match inst.solve() {
        MaxSatResult::Optimal { cost, .. } => Ok(MaxSatGlb {
            glb: Some(cost),
            variables,
            hard_clauses,
            soft_clauses,
        }),
        MaxSatResult::Unsatisfiable => Err(CoreError::FallbackUnavailable(
            "the hard clauses of the MaxSAT encoding are unsatisfiable".into(),
        )),
    }
}

fn ground_fact(atom: &rcqa_query::Atom, theta: &Binding) -> Fact {
    Fact::new(
        atom.relation(),
        atom.terms().iter().map(|t| match t {
            rcqa_query::Term::Const(c) => c.clone(),
            rcqa_query::Term::Var(v) => theta
                .get(v)
                .cloned()
                .expect("embedding binds every variable"),
        }),
    )
}

fn pseudo_levels(
    query: &PreparedAggQuery,
    db: &DatabaseInstance,
) -> Vec<rcqa_core::prepared::Level> {
    query
        .normalised
        .body
        .atoms()
        .iter()
        .map(|atom| rcqa_core::prepared::Level {
            atom: atom.clone(),
            key_len: db
                .schema()
                .signature(atom.relation())
                .map(|s| s.key_len())
                .unwrap_or(atom.arity()),
            new_key_vars: Vec::new(),
            new_other_vars: Vec::new(),
            prefix_vars: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_core::exact::exact_bounds;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    #[test]
    fn agrees_with_exact_on_introduction_example() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let result = maxsat_glb(&q, &db).unwrap();
        assert_eq!(result.glb, Some(rat(70)));
        assert!(result.variables > 0);
        assert!(result.soft_clauses > 0);
        let exact = exact_bounds(&q, &db, 1 << 20).unwrap();
        assert_eq!(result.glb, exact.glb);
    }

    #[test]
    fn count_queries_work_via_sum_of_one() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("COUNT(*) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let result = maxsat_glb(&q, &db).unwrap();
        assert_eq!(result.glb, Some(rat(1)));
    }

    #[test]
    fn bottom_detected() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let result = maxsat_glb(&q, &db).unwrap();
        assert_eq!(result.glb, None);
    }

    #[test]
    fn unsupported_aggregates_are_rejected() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("MIN(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        assert!(maxsat_glb(&q, &db).is_err());
    }
}
