//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no network access, so the workspace cannot pull
//! the real `rand` from crates.io. This shim implements the subset of the
//! `rand` 0.8 API that `rcqa-gen` relies on — `StdRng`, `SeedableRng`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool` — on top of a
//! deterministic splitmix64/xoshiro-style generator. It is **not** a
//! cryptographic RNG and makes no statistical-quality claims beyond what the
//! deterministic benchmark generators need.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high]` (inclusive bounds).
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sampling range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                // Modulo bias is negligible for the small spans the
                // generators use and irrelevant for deterministic workloads.
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as i128).wrapping_add(r as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that `Rng::gen_range` accepts (mirrors `rand::distributions`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd + OneLess> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, self.start, self.end.one_less())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for converting an exclusive upper bound into an inclusive one.
pub trait OneLess {
    /// The predecessor of `self`.
    fn one_less(self) -> Self;
}

macro_rules! impl_one_less {
    ($($t:ty),*) => {$(
        impl OneLess for $t {
            fn one_less(self) -> Self {
                self.checked_sub(1).expect("empty sampling range")
            }
        }
    )*};
}

impl_one_less!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core random-number source (object-safe subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic default RNG (stand-in for `rand::rngs::StdRng`).
///
/// Internally a splitmix64 stream, which passes through every 64-bit state
/// exactly once and is more than adequate for synthetic data generation.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// The `rand::rngs` module of the real crate.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
        let mut hits = [false; 4];
        for _ in 0..200 {
            hits[rng.gen_range(0..4usize)] = true;
        }
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
