//! Offline stand-in for the parts of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched from crates.io. This shim keeps the bench sources
//! API-compatible (`Criterion`, `benchmark_group`, `BenchmarkId`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! while performing a simple but honest measurement: a warm-up phase, then
//! `sample_size` timed samples whose minimum, median, and mean are printed in
//! a `group/function/param  time: [..]` line. There is no statistical
//! regression analysis, plotting, or state persisted across runs.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered via `Display`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a function name.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> BenchmarkId {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_started = Instant::now();
        let mut warm_up_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_up_iters += 1;
            if warm_up_started.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Choose an iteration count per sample so one sample is not dominated
        // by timer resolution for very fast routines.
        let per_iter = warm_up_started.elapsed() / warm_up_iters.max(1) as u32;
        let iters_per_sample = if per_iter < Duration::from_micros(50) {
            (Duration::from_micros(200).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(started.elapsed() / iters_per_sample as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: Duration::from_millis(300),
        };
        f(&mut bencher, input);
        self.report(&id, &mut bencher.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    fn report(&self, id: &BenchmarkId, samples: &mut [Duration]) {
        let label = match (&id.function, &id.parameter) {
            (f, Some(p)) if f.is_empty() => format!("{}/{p}", self.name),
            (f, Some(p)) => format!("{}/{f}/{p}", self.name),
            (f, None) => format!("{}/{f}", self.name),
        };
        if samples.is_empty() {
            println!("{label:<48} time: [no samples collected]");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{label:<48} time: [min {} / median {} / mean {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from("bench"), &mut f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, as the real crate does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, as the real crate does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 3), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("f", 10);
        assert_eq!(id.function, "f");
        assert_eq!(id.parameter.as_deref(), Some("10"));
        let id: BenchmarkId = "plain".into();
        assert!(id.parameter.is_none());
    }
}
