//! Offline stand-in for the parts of the `proptest` crate this workspace uses.
//!
//! The build environment has no network access, so the real `proptest` cannot
//! be fetched from crates.io. This shim implements the subset of the API the
//! workspace's property tests rely on:
//!
//! * the [`Strategy`] trait with `prop_map`, for integer ranges, tuples, and
//!   [`collection::vec`];
//! * the [`proptest!`] macro (including the `#![proptest_config(..)]` header)
//!   expanding each property into a deterministic multi-case `#[test]`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, and
//!   `prop_assume!`.
//!
//! Differences from the real crate: cases are generated from a seed derived
//! from the test name (fully deterministic across runs), there is **no
//! shrinking** — a failing case panics with the generated inputs in the
//! assertion message — and `prop_assume!` skips the current case instead of
//! drawing a replacement.

/// Deterministic test-case RNG (splitmix64).
pub mod test_runner {
    /// The random source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a deterministic function of `name`.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name, so each property gets its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample from `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }
}

/// The [`Strategy`] trait and adapters.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// The adapter returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    (self.start as i128).wrapping_add(rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span =
                        (*self.end() as i128).wrapping_sub(*self.start() as i128) as u128 + 1;
                    (*self.start() as i128).wrapping_add(rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // i128 spans overflow the i128-based arithmetic above only for ranges
    // wider than u128::MAX / 2, which the workspace never uses.
    impl_int_range_strategy!(i128);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: an exact length or a length range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of values of `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy generating unbiased booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic multi-case property tests.
///
/// Supports the same surface syntax as the real `proptest!` for the forms the
/// workspace uses: an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
///
/// Must be used directly inside a `proptest!` body: it expands to a
/// `continue` targeting the case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(-4i64..=4), &mut rng);
            assert!((-4..=4).contains(&w));
            let xs = Strategy::generate(&crate::collection::vec(0u8..4, 1..5), &mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
            let fixed = Strategy::generate(&crate::collection::vec(0i64..10, 5usize), &mut rng);
            assert_eq!(fixed.len(), 5);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: bindings, tuples, maps, and assume.
        #[test]
        fn macro_roundtrip(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, b)), n in 0i64..100) {
            prop_assume!(pair.0 != 9);
            prop_assert!(pair.0 < 9 && pair.1 < 10);
            prop_assert_eq!(n - n, 0);
            prop_assert_ne!(n, n + 1);
        }
    }
}
