//! Offline stand-in for the parts of the `tempfile` crate this workspace
//! uses: [`TempDir`] — a unique directory under [`std::env::temp_dir`],
//! removed (recursively, best-effort) when the guard drops.
//!
//! The registry is offline (see `crates/shims/`), so instead of the real
//! crate this shim derives uniqueness from the process id, a monotonic
//! clock reading, and a process-wide counter, and retries on the (already
//! improbable) collision.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{env, fs, io, process};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory that is deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new() -> io::Result<TempDir> {
        let base = env::temp_dir();
        let pid = process::id();
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        for _ in 0..64 {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!(".rcqa-tmp-{pid}-{nanos}-{n}"));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::other("could not create a unique temp dir"))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_removes_them_on_drop() {
        let a = TempDir::new().unwrap();
        let b = TempDir::new().unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        assert!(b.path().is_dir());
        fs::write(a.path().join("f.txt"), b"x").unwrap();
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        drop(a);
        drop(b);
        assert!(!pa.exists(), "dropped dir (with contents) is removed");
        assert!(!pb.exists());
    }
}
