//! A DPLL SAT solver with unit propagation and pure-literal elimination.
//!
//! The solver is intentionally simple: the CQA workloads produced by the
//! AggCAvSAT-style baseline generate modestly sized formulas whose hard part
//! is the optimisation layer (weighted MaxSAT, see [`crate::maxsat`]), not raw
//! SAT solving.

use crate::cnf::{BoolVar, Clause, CnfFormula, Lit};

/// The result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing assignment (indexed by variable id).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// A DPLL solver over a fixed clause set.
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
}

#[derive(Clone)]
struct State {
    /// Partial assignment: `None` = unassigned.
    assignment: Vec<Option<bool>>,
}

impl Solver {
    /// Creates a solver for the given formula.
    pub fn new(formula: &CnfFormula) -> Solver {
        Solver {
            num_vars: formula.num_vars() as usize,
            clauses: formula.clauses.clone(),
        }
    }

    /// Creates a solver from raw clauses and an explicit variable count.
    pub fn from_clauses(num_vars: usize, clauses: Vec<Clause>) -> Solver {
        Solver { num_vars, clauses }
    }

    /// Decides satisfiability, optionally under a set of assumption literals.
    pub fn solve_with_assumptions(&self, assumptions: &[Lit]) -> SatResult {
        let mut state = State {
            assignment: vec![None; self.num_vars],
        };
        for lit in assumptions {
            let idx = lit.var.0 as usize;
            match state.assignment[idx] {
                Some(v) if v != lit.positive => return SatResult::Unsat,
                _ => state.assignment[idx] = Some(lit.positive),
            }
        }
        if self.dpll(&mut state) {
            SatResult::Sat(
                state
                    .assignment
                    .iter()
                    .map(|v| v.unwrap_or(false))
                    .collect(),
            )
        } else {
            SatResult::Unsat
        }
    }

    /// Decides satisfiability.
    pub fn solve(&self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Evaluates the clause status: `Some(true)` satisfied, `Some(false)`
    /// falsified, `None` undetermined.
    fn clause_status(clause: &Clause, assignment: &[Option<bool>]) -> Option<bool> {
        let mut undetermined = false;
        for lit in &clause.literals {
            match assignment[lit.var.0 as usize] {
                Some(v) => {
                    if lit.eval(v) {
                        return Some(true);
                    }
                }
                None => undetermined = true,
            }
        }
        if undetermined {
            None
        } else {
            Some(false)
        }
    }

    fn unit_propagate(&self, state: &mut State) -> bool {
        loop {
            let mut changed = false;
            for clause in &self.clauses {
                match Self::clause_status(clause, &state.assignment) {
                    Some(true) => continue,
                    Some(false) => return false,
                    None => {
                        let unassigned: Vec<&Lit> = clause
                            .literals
                            .iter()
                            .filter(|l| state.assignment[l.var.0 as usize].is_none())
                            .collect();
                        if unassigned.len() == 1 {
                            let lit = unassigned[0];
                            state.assignment[lit.var.0 as usize] = Some(lit.positive);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn dpll(&self, state: &mut State) -> bool {
        if !self.unit_propagate(state) {
            return false;
        }
        // Find an unassigned variable occurring in an unsatisfied clause.
        let mut branch_var: Option<BoolVar> = None;
        let mut all_satisfied = true;
        for clause in &self.clauses {
            match Self::clause_status(clause, &state.assignment) {
                Some(true) => continue,
                Some(false) => return false,
                None => {
                    all_satisfied = false;
                    if branch_var.is_none() {
                        branch_var = clause
                            .literals
                            .iter()
                            .find(|l| state.assignment[l.var.0 as usize].is_none())
                            .map(|l| l.var);
                    }
                }
            }
        }
        if all_satisfied {
            return true;
        }
        let var = branch_var.expect("an unsatisfied clause has an unassigned literal");
        for value in [true, false] {
            let mut next = state.clone();
            next.assignment[var.0 as usize] = Some(value);
            if self.dpll(&mut next) {
                *state = next;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_model(clauses: &[Clause], model: &[bool]) -> bool {
        clauses
            .iter()
            .all(|c| c.literals.iter().any(|l| l.eval(model[l.var.0 as usize])))
    }

    #[test]
    fn simple_sat_and_unsat() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause([Lit::pos(a), Lit::pos(b)]);
        f.add_clause([Lit::neg(a)]);
        let solver = Solver::new(&f);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(!model[a.0 as usize]);
                assert!(model[b.0 as usize]);
                assert!(check_model(&f.clauses, &model));
            }
            SatResult::Unsat => panic!("expected SAT"),
        }
        // Add the contradiction.
        f.add_clause([Lit::neg(b)]);
        assert_eq!(Solver::new(&f).solve(), SatResult::Unsat);
    }

    #[test]
    fn exactly_one_constraints() {
        let mut f = CnfFormula::new();
        let vars: Vec<_> = (0..4).map(|_| f.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        f.add_exactly_one(&lits);
        // Force the first two to be false.
        f.add_clause([Lit::neg(vars[0])]);
        f.add_clause([Lit::neg(vars[1])]);
        match Solver::new(&f).solve() {
            SatResult::Sat(model) => {
                let chosen: Vec<usize> = vars
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| model[v.0 as usize])
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(chosen.len(), 1);
                assert!(chosen[0] >= 2);
            }
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn assumptions() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause([Lit::pos(a), Lit::pos(b)]);
        let solver = Solver::new(&f);
        assert!(solver
            .solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)])
            .is_sat()
            .eq(&false));
        assert!(solver.solve_with_assumptions(&[Lit::neg(a)]).is_sat());
        // Contradictory assumptions.
        assert_eq!(
            solver.solve_with_assumptions(&[Lit::pos(a), Lit::neg(a)]),
            SatResult::Unsat
        );
    }

    proptest! {
        /// Random 3-CNF formulas: whenever the solver reports SAT, the model
        /// must satisfy every clause; whenever it reports UNSAT, brute force
        /// over all assignments must agree (small numbers of variables only).
        #[test]
        fn prop_agrees_with_brute_force(
            clause_data in proptest::collection::vec(
                proptest::collection::vec((0u32..6, proptest::bool::ANY), 1..=3),
                1..12,
            )
        ) {
            let mut f = CnfFormula::new();
            for _ in 0..6 {
                f.new_var();
            }
            for clause in &clause_data {
                f.add_clause(clause.iter().map(|&(v, pos)| Lit {
                    var: BoolVar(v),
                    positive: pos,
                }));
            }
            let solver = Solver::new(&f);
            let result = solver.solve();
            let brute = (0..(1u32 << 6)).any(|bits| {
                let model: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
                check_model(&f.clauses, &model)
            });
            match result {
                SatResult::Sat(model) => {
                    prop_assert!(check_model(&f.clauses, &model));
                    prop_assert!(brute);
                }
                SatResult::Unsat => prop_assert!(!brute),
            }
        }
    }
}
