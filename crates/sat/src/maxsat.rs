//! Weighted partial MaxSAT by branch and bound on top of the DPLL solver.
//!
//! A weighted partial MaxSAT instance has *hard* clauses (must hold) and
//! *soft* clauses with non-negative rational weights. The solver finds an
//! assignment satisfying all hard clauses that minimises the total weight of
//! violated soft clauses. This is the optimisation problem that the
//! AggCAvSAT-style baseline (Dixit & Kolaitis, ICDE 2022) reduces range
//! consistent answering of SUM/COUNT queries to.

use crate::cnf::{Clause, CnfFormula, Lit};
use crate::solver::{SatResult, Solver};
use rcqa_data::Rational;

/// A weighted partial MaxSAT instance.
#[derive(Clone, Debug, Default)]
pub struct MaxSatInstance {
    formula: CnfFormula,
    hard: Vec<Clause>,
    soft: Vec<(Clause, Rational)>,
}

/// The result of solving a MaxSAT instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaxSatResult {
    /// An optimal assignment exists: its model and the minimum total weight of
    /// violated soft clauses.
    Optimal {
        /// The optimal assignment, indexed by variable id.
        model: Vec<bool>,
        /// The minimum total violated weight.
        cost: Rational,
    },
    /// The hard clauses are unsatisfiable.
    Unsatisfiable,
}

impl MaxSatInstance {
    /// Creates an empty instance.
    pub fn new() -> MaxSatInstance {
        MaxSatInstance::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> crate::cnf::BoolVar {
        self.formula.new_var()
    }

    /// Adds a hard clause.
    pub fn add_hard(&mut self, literals: impl IntoIterator<Item = Lit>) {
        self.hard.push(Clause::new(literals));
    }

    /// Adds hard clauses stating that exactly one of the literals holds.
    pub fn add_hard_exactly_one(&mut self, literals: &[Lit]) {
        self.add_hard(literals.to_vec());
        for i in 0..literals.len() {
            for j in (i + 1)..literals.len() {
                self.add_hard([literals[i].negated(), literals[j].negated()]);
            }
        }
    }

    /// Adds a soft clause with the given non-negative weight.
    pub fn add_soft(&mut self, literals: impl IntoIterator<Item = Lit>, weight: Rational) {
        debug_assert!(
            weight.is_non_negative(),
            "soft weights must be non-negative"
        );
        self.soft.push((Clause::new(literals), weight));
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.formula.num_vars()
    }

    /// Number of hard clauses.
    pub fn num_hard(&self) -> usize {
        self.hard.len()
    }

    /// Number of soft clauses.
    pub fn num_soft(&self) -> usize {
        self.soft.len()
    }

    fn violated_weight(&self, model: &[bool]) -> Rational {
        let mut total = Rational::ZERO;
        for (clause, weight) in &self.soft {
            let satisfied = clause
                .literals
                .iter()
                .any(|l| l.eval(model[l.var.0 as usize]));
            if !satisfied {
                total += *weight;
            }
        }
        total
    }

    /// Solves the instance by linear-search branch and bound: repeatedly find
    /// a model of the hard clauses plus "blocking" constraints that force the
    /// violated weight strictly below the incumbent.
    ///
    /// The search is exact. Its complexity is exponential in the worst case,
    /// as expected for an NP-hard problem.
    pub fn solve(&self) -> MaxSatResult {
        let num_vars = self.formula.num_vars() as usize;
        let base_solver = Solver::from_clauses(num_vars, self.hard.clone());
        let mut best: Option<(Vec<bool>, Rational)> = match base_solver.solve() {
            SatResult::Sat(model) => {
                let cost = self.violated_weight(&model);
                Some((model, cost))
            }
            SatResult::Unsat => return MaxSatResult::Unsatisfiable,
        };

        // Branch and bound over the soft clauses: explore, in order, the
        // decision of satisfying or violating each soft clause, pruning when
        // the accumulated violated weight reaches the incumbent.
        //
        // `choices[i]`: None = undecided, Some(true) = must satisfy,
        // Some(false) = counted as violated.
        fn search(
            instance: &MaxSatInstance,
            num_vars: usize,
            idx: usize,
            forced: &mut Vec<Clause>,
            violated: Rational,
            best: &mut Option<(Vec<bool>, Rational)>,
        ) {
            if let Some((_, best_cost)) = best {
                if violated >= *best_cost {
                    return; // prune: cannot improve
                }
            }
            if idx == instance.soft.len() {
                // All soft clauses decided; check consistency of the forced
                // satisfactions together with the hard clauses.
                let mut clauses = instance.hard.clone();
                clauses.extend(forced.iter().cloned());
                let solver = Solver::from_clauses(num_vars, clauses);
                if let SatResult::Sat(model) = solver.solve() {
                    // The true violated weight may be lower than the branch's
                    // bound (a clause we "gave up on" may still be satisfied).
                    let cost = instance.violated_weight(&model);
                    let better = match best {
                        None => true,
                        Some((_, b)) => cost < *b,
                    };
                    if better {
                        *best = Some((model, cost));
                    }
                }
                return;
            }
            let (clause, weight) = &instance.soft[idx];
            // Branch 1: require the clause to be satisfied.
            forced.push(clause.clone());
            // Quick feasibility check to avoid deep fruitless recursion.
            let feasible = {
                let mut clauses = instance.hard.clone();
                clauses.extend(forced.iter().cloned());
                Solver::from_clauses(num_vars, clauses).solve().is_sat()
            };
            if feasible {
                search(instance, num_vars, idx + 1, forced, violated, best);
            }
            forced.pop();
            // Branch 2: allow the clause to be violated, paying its weight.
            search(
                instance,
                num_vars,
                idx + 1,
                forced,
                violated + *weight,
                best,
            );
        }

        let mut forced: Vec<Clause> = Vec::new();
        search(self, num_vars, 0, &mut forced, Rational::ZERO, &mut best);
        let (model, cost) = best.expect("hard clauses are satisfiable");
        MaxSatResult::Optimal { model, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::rat;

    #[test]
    fn unsatisfiable_hard_clauses() {
        let mut inst = MaxSatInstance::new();
        let a = inst.new_var();
        inst.add_hard([Lit::pos(a)]);
        inst.add_hard([Lit::neg(a)]);
        assert_eq!(inst.solve(), MaxSatResult::Unsatisfiable);
    }

    #[test]
    fn prefers_cheapest_violation() {
        // Exactly one of a, b, c must hold. Soft clauses ask each of them to
        // be false with different weights; the solver should pick the variable
        // whose "being true" costs least.
        let mut inst = MaxSatInstance::new();
        let a = inst.new_var();
        let b = inst.new_var();
        let c = inst.new_var();
        inst.add_hard_exactly_one(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
        inst.add_soft([Lit::neg(a)], rat(10));
        inst.add_soft([Lit::neg(b)], rat(3));
        inst.add_soft([Lit::neg(c)], rat(7));
        match inst.solve() {
            MaxSatResult::Optimal { model, cost } => {
                assert_eq!(cost, rat(3));
                assert!(!model[a.0 as usize]);
                assert!(model[b.0 as usize]);
                assert!(!model[c.0 as usize]);
            }
            MaxSatResult::Unsatisfiable => panic!("expected optimal"),
        }
    }

    #[test]
    fn zero_cost_when_all_soft_satisfiable() {
        let mut inst = MaxSatInstance::new();
        let a = inst.new_var();
        let b = inst.new_var();
        inst.add_hard([Lit::pos(a), Lit::pos(b)]);
        inst.add_soft([Lit::pos(a)], rat(5));
        inst.add_soft([Lit::pos(b)], rat(5));
        match inst.solve() {
            MaxSatResult::Optimal { cost, model } => {
                assert_eq!(cost, rat(0));
                assert!(model[a.0 as usize] && model[b.0 as usize]);
            }
            _ => panic!("expected optimal"),
        }
    }

    #[test]
    fn weighted_combination() {
        // a and b are mutually exclusive (hard). Soft: want a (weight 2),
        // want b (weight 3), want c false (weight 1) but c forced true by a.
        let mut inst = MaxSatInstance::new();
        let a = inst.new_var();
        let b = inst.new_var();
        let c = inst.new_var();
        inst.add_hard([Lit::neg(a), Lit::neg(b)]);
        inst.add_hard([Lit::neg(a), Lit::pos(c)]);
        inst.add_soft([Lit::pos(a)], rat(2));
        inst.add_soft([Lit::pos(b)], rat(3));
        inst.add_soft([Lit::neg(c)], rat(1));
        match inst.solve() {
            MaxSatResult::Optimal { cost, model } => {
                // Best: choose b (violating "want a": 2 ... wait also c can be
                // false then): cost = 2 (violate a) + 0 + 0 = 2.
                assert_eq!(cost, rat(2));
                assert!(model[b.0 as usize]);
                assert!(!model[a.0 as usize]);
            }
            _ => panic!("expected optimal"),
        }
    }

    #[test]
    fn fractional_weights() {
        let mut inst = MaxSatInstance::new();
        let a = inst.new_var();
        inst.add_soft([Lit::pos(a)], rcqa_data::ratio(1, 2));
        inst.add_soft([Lit::neg(a)], rcqa_data::ratio(1, 3));
        match inst.solve() {
            MaxSatResult::Optimal { cost, model } => {
                assert_eq!(cost, rcqa_data::ratio(1, 3));
                assert!(model[a.0 as usize]);
            }
            _ => panic!("expected optimal"),
        }
    }
}
