//! CNF formulas: variables, literals, clauses.

use std::fmt;

/// A propositional variable, identified by a positive index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolVar(pub u32);

/// A literal: a variable with a polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// The underlying variable.
    pub var: BoolVar,
    /// `true` for the positive literal, `false` for the negated one.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of a variable.
    pub fn pos(var: BoolVar) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of a variable.
    pub fn neg(var: BoolVar) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under an assignment of its variable.
    pub fn eval(self, value: bool) -> bool {
        if self.positive {
            value
        } else {
            !value
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var.0)
        } else {
            write!(f, "-x{}", self.var.0)
        }
    }
}

/// A clause: a disjunction of literals.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    pub fn new(literals: impl IntoIterator<Item = Lit>) -> Clause {
        Clause {
            literals: literals.into_iter().collect(),
        }
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula builder that also allocates variables.
#[derive(Clone, Debug, Default)]
pub struct CnfFormula {
    num_vars: u32,
    /// The clauses of the formula.
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates an empty formula.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> BoolVar {
        let v = BoolVar(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, literals: impl IntoIterator<Item = Lit>) {
        self.clauses.push(Clause::new(literals));
    }

    /// Adds clauses stating that exactly one of the literals holds
    /// (at-least-one plus pairwise at-most-one).
    pub fn add_exactly_one(&mut self, literals: &[Lit]) {
        self.add_clause(literals.to_vec());
        for i in 0..literals.len() {
            for j in (i + 1)..literals.len() {
                self.add_clause([literals[i].negated(), literals[j].negated()]);
            }
        }
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals() {
        let v = BoolVar(3);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert!(p.eval(true));
        assert!(!p.eval(false));
        assert!(n.eval(false));
        assert_eq!(p.to_string(), "x3");
        assert_eq!(n.to_string(), "-x3");
    }

    #[test]
    fn formula_building() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        let c = f.new_var();
        assert_eq!(f.num_vars(), 3);
        f.add_clause([Lit::pos(a), Lit::neg(b)]);
        assert_eq!(f.len(), 1);
        f.add_exactly_one(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
        // 1 original + 1 at-least-one + 3 pairwise at-most-one.
        assert_eq!(f.len(), 5);
        assert_eq!(f.clauses[0].len(), 2);
        assert_eq!(f.clauses[0].to_string(), "(x0 | -x1)");
    }
}
