//! # rcqa-sat
//!
//! A small, self-contained SAT / weighted-partial-MaxSAT substrate used by the
//! AggCAvSAT-style baseline of the `rcqa` workspace (see Section 2 of the
//! paper: Dixit and Kolaitis compute range consistent answers with SAT
//! solvers). Hard clauses encode the block structure of repairs; soft weighted
//! clauses encode the contribution of each query embedding to the aggregate.

#![warn(missing_docs)]

pub mod cnf;
pub mod maxsat;
pub mod solver;

pub use cnf::{BoolVar, Clause, CnfFormula, Lit};
pub use maxsat::{MaxSatInstance, MaxSatResult};
pub use solver::{SatResult, Solver};
