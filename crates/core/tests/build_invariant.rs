//! The one-index-build-per-call invariant, asserted via the process-wide
//! [`DbIndex::build_count`] counter.
//!
//! These tests live in their own integration-test binary (one process) so
//! that no *other* test builds indexes concurrently while a counting section
//! runs; within the binary the tests serialise on a local mutex. The counter
//! being process-wide — an `AtomicU64`, not thread-local — is exactly what
//! lets the parallel-executor test below observe "the main thread built one
//! index and the worker threads built none".

use rcqa_core::engine::{EngineOptions, RangeCqa};
use rcqa_core::index::DbIndex;
use rcqa_data::{fact, DatabaseInstance, DeltaEvent, Schema, Signature};
use rcqa_query::parse_agg_query;
use std::sync::Mutex;

/// Serialises the counting sections of this binary's tests.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn db_stock() -> DatabaseInstance {
    let schema = Schema::new()
        .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
        .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
    let mut db = DatabaseInstance::new(schema);
    db.insert_all([
        fact!("Dealers", "Smith", "Boston"),
        fact!("Dealers", "Smith", "New York"),
        fact!("Dealers", "James", "Boston"),
        fact!("Stock", "Tesla X", "Boston", 35),
        fact!("Stock", "Tesla X", "Boston", 40),
        fact!("Stock", "Tesla Y", "Boston", 35),
        fact!("Stock", "Tesla Y", "New York", 95),
        fact!("Stock", "Tesla Y", "New York", 96),
    ])
    .unwrap();
    db
}

#[test]
fn build_counter_increments_per_construction() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let db = db_stock();
    let before = DbIndex::build_count();
    let _a = DbIndex::new(&db);
    let _b = DbIndex::new(&db);
    assert_eq!(DbIndex::build_count() - before, 2);
}

#[test]
fn one_index_build_per_call() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The acceptance criterion of the one-pass pipeline: each of glb, lub,
    // and range constructs exactly one DbIndex, even with GROUP BY
    // (rewriting-backed strategies only; the exact fallback enumerates
    // repairs and indexes each repair by design). MAX is rewriting-backed
    // for both bounds.
    let db = db_stock();
    let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&q, db.schema()).unwrap();

    let before = DbIndex::build_count();
    let glb = engine.glb(&db).unwrap();
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "glb must build exactly one index"
    );
    assert_eq!(glb.len(), 2);

    let before = DbIndex::build_count();
    let lub = engine.lub(&db).unwrap();
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "lub must build exactly one index"
    );
    assert_eq!(lub.len(), 2);

    let before = DbIndex::build_count();
    let ranges = engine.range(&db).unwrap();
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "range must build exactly one index"
    );
    assert_eq!(ranges.len(), 2);

    // The closed variant holds the invariant too.
    let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&q, db.schema()).unwrap();
    let before = DbIndex::build_count();
    engine.glb(&db).unwrap();
    assert_eq!(DbIndex::build_count() - before, 1);
}

#[test]
fn apply_delta_is_maintenance_not_a_build() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // Incremental maintenance must not advance the build counter: that is
    // what lets a serving session answer N queries and absorb mutations with
    // exactly one observable construction.
    let mut db = db_stock();
    let mut index = DbIndex::new(&db);
    let before = DbIndex::build_count();
    let events = [
        DeltaEvent::insert(fact!("Dealers", "Lopez", "New York")),
        DeltaEvent::insert(fact!("Stock", "Tesla Z", "Boston", 50)),
        DeltaEvent::delete(fact!("Stock", "Tesla Y", "Boston", 35)),
    ];
    let dirty = index.apply_delta(&events);
    assert_eq!(dirty.len(), 3);
    assert_eq!(
        DbIndex::build_count() - before,
        0,
        "apply_delta must not count as an index build"
    );
    // The maintained index answers exactly like a cold rebuild would.
    for e in events {
        db.apply(e).unwrap();
    }
    let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&q, db.schema()).unwrap();
    let maintained = engine.range_with_index(&db, &index).unwrap();
    let cold = engine.range_with_index(&db, &DbIndex::new(&db)).unwrap();
    assert_eq!(maintained, cold);
    assert_eq!(maintained.len(), 3);
}

#[test]
fn range_with_index_builds_nothing() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The serving layer's entry point: evaluation over a caller-owned index
    // performs zero constructions, at every worker count.
    let db = db_stock();
    let index = DbIndex::new(&db);
    let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
    for threads in [1, 4] {
        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
        let before = DbIndex::build_count();
        for _ in 0..5 {
            let ranges = engine.range_with_index(&db, &index).unwrap();
            assert_eq!(ranges.len(), 2);
        }
        assert_eq!(
            DbIndex::build_count() - before,
            0,
            "range_with_index at {threads} threads must build nothing"
        );
    }
}

#[test]
fn parallel_executor_workers_build_no_indexes() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // With the parallel executor fanned out over worker threads, the single
    // index is built on the calling thread and shared; the process-wide
    // counter must still report exactly one construction per call.
    let db = db_stock();
    let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
    for threads in [2, 4, 8] {
        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
        let before = DbIndex::build_count();
        let ranges = engine.range(&db).unwrap();
        assert_eq!(
            DbIndex::build_count() - before,
            1,
            "range at {threads} threads must build exactly one index"
        );
        assert_eq!(ranges.len(), 2);
    }
}
