//! The one-index-build-per-call invariant, asserted via the process-wide
//! [`DbIndex::build_count`] counter.
//!
//! These tests live in their own integration-test binary (one process) so
//! that no *other* test builds indexes concurrently while a counting section
//! runs; within the binary the tests serialise on a local mutex. The counter
//! being process-wide — an `AtomicU64`, not thread-local — is exactly what
//! lets the parallel-executor test below observe "the main thread built one
//! index and the worker threads built none".

use rcqa_core::engine::{EngineOptions, RangeCqa};
use rcqa_core::index::DbIndex;
use rcqa_data::{fact, DatabaseInstance, Schema, Signature};
use rcqa_query::parse_agg_query;
use std::sync::Mutex;

/// Serialises the counting sections of this binary's tests.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn db_stock() -> DatabaseInstance {
    let schema = Schema::new()
        .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
        .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
    let mut db = DatabaseInstance::new(schema);
    db.insert_all([
        fact!("Dealers", "Smith", "Boston"),
        fact!("Dealers", "Smith", "New York"),
        fact!("Dealers", "James", "Boston"),
        fact!("Stock", "Tesla X", "Boston", 35),
        fact!("Stock", "Tesla X", "Boston", 40),
        fact!("Stock", "Tesla Y", "Boston", 35),
        fact!("Stock", "Tesla Y", "New York", 95),
        fact!("Stock", "Tesla Y", "New York", 96),
    ])
    .unwrap();
    db
}

#[test]
fn build_counter_increments_per_construction() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let db = db_stock();
    let before = DbIndex::build_count();
    let _a = DbIndex::new(&db);
    let _b = DbIndex::new(&db);
    assert_eq!(DbIndex::build_count() - before, 2);
}

#[test]
fn one_index_build_per_call() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The acceptance criterion of the one-pass pipeline: each of glb, lub,
    // and range constructs exactly one DbIndex, even with GROUP BY
    // (rewriting-backed strategies only; the exact fallback enumerates
    // repairs and indexes each repair by design). MAX is rewriting-backed
    // for both bounds.
    let db = db_stock();
    let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&q, db.schema()).unwrap();

    let before = DbIndex::build_count();
    let glb = engine.glb(&db).unwrap();
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "glb must build exactly one index"
    );
    assert_eq!(glb.len(), 2);

    let before = DbIndex::build_count();
    let lub = engine.lub(&db).unwrap();
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "lub must build exactly one index"
    );
    assert_eq!(lub.len(), 2);

    let before = DbIndex::build_count();
    let ranges = engine.range(&db).unwrap();
    assert_eq!(
        DbIndex::build_count() - before,
        1,
        "range must build exactly one index"
    );
    assert_eq!(ranges.len(), 2);

    // The closed variant holds the invariant too.
    let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
    let engine = RangeCqa::new(&q, db.schema()).unwrap();
    let before = DbIndex::build_count();
    engine.glb(&db).unwrap();
    assert_eq!(DbIndex::build_count() - before, 1);
}

#[test]
fn parallel_executor_workers_build_no_indexes() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // With the parallel executor fanned out over worker threads, the single
    // index is built on the calling thread and shared; the process-wide
    // counter must still report exactly one construction per call.
    let db = db_stock();
    let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
    for threads in [2, 4, 8] {
        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
        let before = DbIndex::build_count();
        let ranges = engine.range(&db).unwrap();
        assert_eq!(
            DbIndex::build_count() - before,
            1,
            "range at {threads} threads must build exactly one index"
        );
        assert_eq!(ranges.len(), 2);
    }
}
