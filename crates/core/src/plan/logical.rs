//! Logical planning: pick an evaluation strategy per requested bound.
//!
//! This is the decision layer of the strategy table in the module docs of
//! [`crate::engine`]: per `(aggregate, bound, numeric domain)` the planner
//! chooses the cheapest sound path, falling back to exhaustive repair
//! enumeration when no AGGR\[FOL\] rewriting is known (or the attack graph is
//! cyclic).

use crate::glb::Choice;
use crate::index::AccessPath;
use crate::plan::physical::{BoundOp, PhysicalPlan, PlanNode};
use crate::prepared::PreparedAggQuery;
use crate::rewrite::BoundKind;
use rcqa_data::{AggFunc, NumericDomain};
use std::fmt;

/// How one bound of the query is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundStrategy {
    /// Theorem 6.1 / 7.11 rewriting semantics, evaluated operationally over
    /// ∀embeddings: `combine` aggregates independent branches, `choice`
    /// resolves alternatives within a block.
    Rewriting {
        /// The branch-combining aggregate operator `F⊕`.
        combine: AggFunc,
        /// MIN (GLB semantics) or MAX (LUB semantics) within a block.
        choice: Choice,
    },
    /// Theorem 7.10 shortcut: plain extremum over all embeddings (GLB of MIN,
    /// LUB of MAX).
    PlainExtremum {
        /// Whether the extremum maximises.
        choice: Choice,
    },
    /// Exhaustive repair enumeration (the only sound path for this cell).
    ExactFallback,
}

impl BoundStrategy {
    /// The strategy of the engine's strategy table for `bound`, given the
    /// prepared query and the numeric domain of the instance.
    pub fn choose(
        prepared: &PreparedAggQuery,
        bound: BoundKind,
        domain: NumericDomain,
    ) -> BoundStrategy {
        if !prepared.body.is_acyclic() {
            return BoundStrategy::ExactFallback;
        }
        let agg = prepared.normalised.agg;
        // The Theorem 6.1 rewriting for SUM requires monotonicity, which in
        // turn requires numeric columns over Q≥0 (Section 7.3).
        let sum_ok = agg != AggFunc::Sum || domain == NumericDomain::NonNegative;
        match (bound, agg) {
            (BoundKind::Glb, AggFunc::Sum) if sum_ok => BoundStrategy::Rewriting {
                combine: AggFunc::Sum,
                choice: Choice::Minimise,
            },
            (BoundKind::Glb, AggFunc::Max) => BoundStrategy::Rewriting {
                combine: AggFunc::Max,
                choice: Choice::Minimise,
            },
            (BoundKind::Glb, AggFunc::Min) => BoundStrategy::PlainExtremum {
                choice: Choice::Minimise,
            },
            (BoundKind::Lub, AggFunc::Max) => BoundStrategy::PlainExtremum {
                choice: Choice::Maximise,
            },
            (BoundKind::Lub, AggFunc::Min) => BoundStrategy::Rewriting {
                combine: AggFunc::Min,
                choice: Choice::Maximise,
            },
            _ => BoundStrategy::ExactFallback,
        }
    }

    /// Whether the strategy consumes the per-group embedding analysis.
    pub fn needs_analysis(&self) -> bool {
        !matches!(self, BoundStrategy::ExactFallback)
    }

    /// Whether the strategy needs the ∀embedding filter (not just the
    /// embeddings and the certainty bit).
    pub fn needs_forall(&self) -> bool {
        matches!(self, BoundStrategy::Rewriting { .. })
    }
}

impl fmt::Display for BoundStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundStrategy::Rewriting { combine, choice } => {
                write!(f, "Rewriting({combine}, {choice:?})")
            }
            BoundStrategy::PlainExtremum { choice } => write!(f, "PlainExtremum({choice:?})"),
            BoundStrategy::ExactFallback => write!(f, "ExactEnumeration"),
        }
    }
}

/// The logical plan of one engine call: which bounds are requested and how
/// each is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogicalPlan {
    /// The numeric domain the plan was made for.
    pub domain: NumericDomain,
    /// Strategy for the greatest lower bound, if requested.
    pub glb: Option<BoundStrategy>,
    /// Strategy for the least upper bound, if requested.
    pub lub: Option<BoundStrategy>,
}

impl LogicalPlan {
    /// Plans the requested bounds for a prepared query over `domain`.
    pub fn new(
        prepared: &PreparedAggQuery,
        domain: NumericDomain,
        want_glb: bool,
        want_lub: bool,
    ) -> LogicalPlan {
        LogicalPlan {
            domain,
            glb: want_glb.then(|| BoundStrategy::choose(prepared, BoundKind::Glb, domain)),
            lub: want_lub.then(|| BoundStrategy::choose(prepared, BoundKind::Lub, domain)),
        }
    }

    /// Downgrades every requested bound to the exhaustive-repair fallback.
    ///
    /// The honest route for **residual comparison predicates** — predicates
    /// on a non-free variable that occurs at no key position of any atom.
    /// Such a predicate cannot be pushed into the block index (a block mixes
    /// facts that pass and facts that fail it, so dropping or keeping whole
    /// blocks is wrong in both directions) and the rewriting theorems say
    /// nothing about it; enumerating repairs with the predicate applied as
    /// an embedding filter is the only sound path.
    pub fn force_exact(mut self) -> LogicalPlan {
        self.glb = self.glb.map(|_| BoundStrategy::ExactFallback);
        self.lub = self.lub.map(|_| BoundStrategy::ExactFallback);
        self
    }

    /// Whether any requested bound consumes the embedding analysis.
    pub fn needs_analysis(&self) -> bool {
        self.glb
            .iter()
            .chain(self.lub.iter())
            .any(|s| s.needs_analysis())
    }

    /// Whether any requested bound needs the ∀embedding filter.
    pub fn needs_forall(&self) -> bool {
        self.glb
            .iter()
            .chain(self.lub.iter())
            .any(|s| s.needs_forall())
    }

    /// Lowers the logical plan to the physical operator pipeline executed by
    /// [`crate::plan::exec::execute`].
    pub fn lower(&self, prepared: &PreparedAggQuery) -> PhysicalPlan {
        self.lower_with_access(prepared, &[])
    }

    /// Lowers with an access path: when `access` is non-empty the pipeline's
    /// leaf is a [`PlanNode::Seek`] over the restricted block index (the
    /// [`crate::index::DbIndex::restrict`] view those [`AccessPath`] records
    /// came from) instead of a full [`PlanNode::Scan`].
    pub fn lower_with_access(
        &self,
        prepared: &PreparedAggQuery,
        access: &[AccessPath],
    ) -> PhysicalPlan {
        let relations: Vec<String> = prepared
            .body
            .atoms_in_order()
            .iter()
            .map(|a| a.relation().to_string())
            .collect();
        let group_vars = prepared.normalised.body.free_vars().to_vec();
        let grouped = !group_vars.is_empty();
        let needs_analysis = self.needs_analysis();

        let scan = if access.is_empty() {
            PlanNode::Scan { relations }
        } else {
            PlanNode::Seek {
                relations,
                paths: access.iter().map(|p| p.to_string()).collect(),
            }
        };
        let join = PlanNode::Join {
            levels: prepared.body.len(),
            open_body: grouped,
            keep_embeddings: needs_analysis,
            input: Box::new(scan),
        };
        let partition = PlanNode::PartitionByGroup {
            group_vars,
            input: Box::new(join),
        };
        let forall = PlanNode::ForallCheck {
            run: needs_analysis,
            compute_forall: self.needs_forall(),
            input: Box::new(partition),
        };
        let aggregate = PlanNode::AggregateBound {
            glb: self.glb.map(BoundOp::from_strategy),
            lub: self.lub.map(BoundOp::from_strategy),
            input: Box::new(forall),
        };
        PhysicalPlan {
            root: PlanNode::RangeMerge {
                input: Box::new(aggregate),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn schema() -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
    }

    fn plan(text: &str, domain: NumericDomain) -> LogicalPlan {
        let q = parse_agg_query(text).unwrap();
        let prepared = PreparedAggQuery::new(&q, &schema()).unwrap();
        LogicalPlan::new(&prepared, domain, true, true)
    }

    #[test]
    fn strategy_table_is_reproduced() {
        let p = plan("SUM(r) <- R(x, y), S(y, z, r)", NumericDomain::NonNegative);
        assert!(matches!(p.glb, Some(BoundStrategy::Rewriting { .. })));
        assert_eq!(p.lub, Some(BoundStrategy::ExactFallback));

        // Section 7.3: negatives disable the SUM rewriting.
        let p = plan(
            "SUM(r) <- R(x, y), S(y, z, r)",
            NumericDomain::Unconstrained,
        );
        assert_eq!(p.glb, Some(BoundStrategy::ExactFallback));

        let p = plan("MIN(r) <- R(x, y), S(y, z, r)", NumericDomain::NonNegative);
        assert!(matches!(p.glb, Some(BoundStrategy::PlainExtremum { .. })));
        assert!(matches!(p.lub, Some(BoundStrategy::Rewriting { .. })));

        let p = plan("MAX(r) <- R(x, y), S(y, z, r)", NumericDomain::NonNegative);
        assert!(matches!(p.glb, Some(BoundStrategy::Rewriting { .. })));
        assert!(matches!(p.lub, Some(BoundStrategy::PlainExtremum { .. })));

        let p = plan("AVG(r) <- R(x, y), S(y, z, r)", NumericDomain::NonNegative);
        assert_eq!(p.glb, Some(BoundStrategy::ExactFallback));
        assert_eq!(p.lub, Some(BoundStrategy::ExactFallback));
    }

    #[test]
    fn lowering_produces_the_full_pipeline() {
        let q = parse_agg_query("(x, SUM(r)) <- R(x, y), S(y, z, r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &schema()).unwrap();
        let logical = LogicalPlan::new(&prepared, NumericDomain::NonNegative, true, false);
        let physical = logical.lower(&prepared);
        let shown = physical.to_string();
        for op in [
            "RangeMerge",
            "AggregateBound",
            "ForallCheck",
            "PartitionByGroup",
            "Join",
            "Scan",
        ] {
            assert!(shown.contains(op), "missing {op} in:\n{shown}");
        }
        assert!(
            shown.contains("open body"),
            "grouped query joins the open body"
        );
    }
}
