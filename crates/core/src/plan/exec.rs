//! The plan executor: interprets a [`PhysicalPlan`] over a shared
//! [`DbIndex`], sequentially or on a block-sharded worker pool.
//!
//! ## Threading model
//!
//! The executor parallelises at the [`PlanNode::PartitionByGroup`] boundary:
//! the single shared block index is read-only, so after the one join pass
//! partitions the embeddings by group key, the sorted group partitions are
//! sharded into contiguous chunks and fanned out over a
//! [`std::thread::scope`] worker pool (no external dependencies — the
//! workspace builds offline). Each worker owns a **per-worker memoised
//! [`CertaintyChecker`]** over the shared index: certainty sub-problems are
//! reused across the groups of one shard, and no locks are taken on the hot
//! path. The final [`PlanNode::RangeMerge`] concatenates the shard outputs in
//! shard order; because the partition step emits groups in sorted group-key
//! **value** order (interned ids are compared through
//! [`ValueInterner::cmp_id_tuples`], so the order is independent of the id
//! layout) and shards are contiguous, the merged answer is **byte-identical**
//! to the sequential one at every thread count — and to the answer of a cold
//! rebuild whose interner assigned different ids.
//!
//! ## Id discipline
//!
//! The join pass, group partitioning, and the ∀embedding filter all run on
//! interned `u32` ids (see [`crate::index`]): a group is a `(Vec<u32>,
//! Vec<Vec<u32>>)` — key ids plus embedding id vectors — and group keys are
//! hashed/compared as raw integers (id equality is value equality). Values
//! materialise at the **result boundary** only: per group, the key becomes
//! [`Value`]s when its [`GroupRange`] row is built (the exact fallback's
//! group substitution also needs them), and the group's analysis materialises
//! its surviving embeddings once, after the id-level certainty work.
//!
//! Worker count comes from
//! [`EngineOptions::threads`](crate::engine::EngineOptions::threads)
//! (explicit value > `RCQA_THREADS` env > available parallelism) and is
//! clamped to the number of groups; a single group — in particular every
//! closed query — runs inline on the calling thread.
//!
//! The executor only ever *borrows* the index ([`ExecContext::index`]), so a
//! caller may share one immutable index across any number of concurrent
//! executions: the serving layer (`rcqa-session`) freezes an `Arc<DbIndex>`
//! per snapshot and runs every client's plan — each with its own worker pool
//! — against the same copy. Snapshot indexes are themselves structurally
//! shared (per-relation and per-block-column `Arc`s, see [`crate::index`]),
//! so "the same copy" may physically overlap the indexes of neighbouring
//! snapshots; that sharing is invisible here because published indexes —
//! interior `Arc`s included — are never mutated.
//!
//! [`PlanNode::PartitionByGroup`]: crate::plan::physical::PlanNode::PartitionByGroup
//! [`PlanNode::RangeMerge`]: crate::plan::physical::PlanNode::RangeMerge

use crate::engine::{substitute_group, BoundAnswer, EngineOptions, GroupRange, Method};
use crate::error::CoreError;
use crate::exact::{exact_bounds_filtered, ExactBounds};
use crate::forall::{
    analyse_group_with_embeddings_ids, embeddings_compiled_ids, embeddings_from_blocks_ids,
    ids_to_binding, level0_blocks, Binding, CertaintyChecker, CompiledLevels, ForallAnalysis,
};
use crate::glb::{global_extremum, optimal_aggregate, Choice};
use crate::index::DbIndex;
use crate::plan::physical::{BoundOp, ExecSpec, PhysicalPlan};
use crate::prepared::PreparedAggQuery;
use crate::rewrite::BoundKind;
use rcqa_data::{DatabaseInstance, Value, ValueInterner, UNBOUND_ID};
use rcqa_query::{Term, Var, VarPredicate};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One partitioned group in the executor's working representation: the group
/// key and the group's embeddings, all as interned ids over the closed
/// body's slot table.
type IdGroup = (Vec<u32>, Vec<Vec<u32>>);

/// Everything the executor needs besides the plan itself.
#[derive(Clone, Copy)]
pub struct ExecContext<'a> {
    /// The prepared query being answered.
    pub prepared: &'a PreparedAggQuery,
    /// The database instance (consulted by the exact fallback only).
    pub db: &'a DatabaseInstance,
    /// The shared block index (built exactly once by the engine entry point).
    pub index: &'a DbIndex,
    /// Engine options (fallback policy, repair budget, worker count).
    pub options: &'a EngineOptions,
    /// Comparison predicates the exact fallback applies as embedding filters
    /// inside each enumerated repair (non-free variables only — predicates
    /// on key-position variables are pushed into the restricted index and
    /// predicates on free variables filter whole result rows upstream, so
    /// the rewriting-backed operators never see a predicate here).
    pub exact_predicates: &'a [VarPredicate],
}

/// Executes a physical plan, returning one [`GroupRange`] per group in
/// sorted group-key order.
pub fn execute(plan: &PhysicalPlan, cx: &ExecContext<'_>) -> Result<Vec<GroupRange>, CoreError> {
    let spec = plan.spec();
    let requested_workers = cx.options.resolve_threads().max(1);

    // Scan + Join + PartitionByGroup: one compilation of the closed body, one
    // join pass over the shared index (sharded by level-0 block key when
    // parallel), embeddings partitioned by group key.
    let compiled = CompiledLevels::new(cx.prepared.body.levels());
    let free = cx.prepared.normalised.body.free_vars().to_vec();
    let groups: Vec<IdGroup> = if free.is_empty() {
        let embs = if spec.needs_analysis {
            embeddings_compiled_ids(&compiled, cx.index, &compiled.unbound_ids())
        } else {
            Vec::new()
        };
        vec![(Vec::new(), embs)]
    } else {
        partition_groups_sharded(
            cx.prepared,
            cx.index,
            &compiled,
            &free,
            spec.keep_embeddings,
            requested_workers,
        )
    };

    eval_groups(&spec, cx, &compiled, &free, groups, requested_workers)
}

/// Above this many requested groups, [`execute_for_groups`] stops running one
/// pinned join per key and falls back to a single full partition pass with a
/// key filter: per-key enumeration costs one (pruned) level-0 walk per key,
/// which beats the full join only while the key set is small.
const PER_KEY_JOIN_CAP: usize = 16;

/// Executes a physical plan for **only** the groups whose key is in `keys`.
///
/// For a small key set, the open body is enumerated once **per key** with the
/// free-variable slots pre-bound to that key's ids: every level whose atom
/// carries a bound variable at a key position prunes its block walk through
/// [`crate::index::RelationIndex::blocks_matching`], and every other level
/// rejects mismatching rows during the match, so the per-key cost is
/// proportional to the key's own embeddings (plus the walk of blocks no
/// bound position constrains) — independent of how many *other* groups
/// exist. Larger key sets fall back to one full partition pass filtered to
/// the requested keys.
///
/// The returned rows are byte-identical to the corresponding rows of
/// [`execute`]: a pinned enumeration explores the full enumeration's
/// recursion tree minus the branches that bind a free variable elsewhere, so
/// each requested group sees exactly its bucket of the full run, in the same
/// order — and requested keys are emitted in the same sorted group-key value
/// order as a full run (keys with no embedding are absent, exactly as there).
pub fn execute_for_groups(
    plan: &PhysicalPlan,
    cx: &ExecContext<'_>,
    keys: &BTreeSet<Vec<Value>>,
) -> Result<Vec<GroupRange>, CoreError> {
    let spec = plan.spec();
    let free = cx.prepared.normalised.body.free_vars().to_vec();
    if free.is_empty() {
        // A closed query has a single (empty-keyed) group; filtering does not
        // apply.
        return execute(plan, cx);
    }
    let interner = cx.index.interner();
    // Resolve the requested keys into id space. A key containing a value the
    // index has never seen can match no group (every group key is assembled
    // from fact values), so it simply drops out of the filter set.
    let mut key_ids: Vec<Vec<u32>> = keys
        .iter()
        .filter_map(|key| key.iter().map(|v| interner.id_of(v)).collect())
        .collect();
    let compiled = CompiledLevels::new(cx.prepared.body.levels());
    let groups: Vec<IdGroup> = if key_ids.len() <= PER_KEY_JOIN_CAP {
        // Evaluate keys in sorted value order, matching `sorted_groups`.
        key_ids.sort_by(|a, b| interner.cmp_id_tuples(a, b));
        pinned_groups(cx, &compiled, &free, spec.keep_embeddings, &key_ids)
    } else {
        let key_set: HashSet<Vec<u32>> = key_ids.into_iter().collect();
        partition_groups_ids(
            cx.prepared,
            cx.index,
            &compiled,
            &free,
            spec.keep_embeddings,
        )
        .into_iter()
        .filter(|(key, _)| key_set.contains(key))
        .collect()
    };
    let requested_workers = cx.options.resolve_threads().max(1);
    eval_groups(&spec, cx, &compiled, &free, groups, requested_workers)
}

/// The per-key arm of [`execute_for_groups`]: one pinned open-body
/// enumeration per requested key (already sorted in group-key value order),
/// re-expressed over the closed body's slot table. Keys with no embedding
/// produce no partition, exactly as in a full run.
fn pinned_groups(
    cx: &ExecContext<'_>,
    closed: &CompiledLevels,
    free: &[Var],
    keep_embeddings: bool,
    key_ids: &[Vec<u32>],
) -> Vec<IdGroup> {
    let open = CompiledLevels::new(cx.prepared.open_levels());
    let (free_slots, remap) = group_projection(&open, closed, free);
    let closed_len = closed.table().len();
    let mut out = Vec::new();
    for kid in key_ids {
        let mut initial = open.unbound_ids();
        for (&slot, &id) in free_slots.iter().zip(kid.iter()) {
            initial[slot] = id;
        }
        let embs = embeddings_compiled_ids(&open, cx.index, &initial);
        if embs.is_empty() {
            continue;
        }
        let closed_embs: Vec<Vec<u32>> = if keep_embeddings {
            embs.iter()
                .map(|theta| {
                    let mut closed_slots: Vec<u32> = vec![UNBOUND_ID; closed_len];
                    for (o, c) in remap.iter().enumerate() {
                        if let Some(c) = c {
                            closed_slots[*c] = theta[o];
                        }
                    }
                    closed_slots
                })
                .collect()
        } else {
            Vec::new()
        };
        out.push((kid.clone(), closed_embs));
    }
    out
}

/// The `ForallCheck + AggregateBound + RangeMerge` tail shared by [`execute`]
/// and [`execute_for_groups`]: evaluates pre-partitioned groups sequentially
/// or over contiguous shards on a worker pool.
fn eval_groups(
    spec: &ExecSpec,
    cx: &ExecContext<'_>,
    compiled: &CompiledLevels,
    free: &[Var],
    groups: Vec<IdGroup>,
    requested_workers: usize,
) -> Result<Vec<GroupRange>, CoreError> {
    // Slots of the free variables in the closed body's table, for seeding
    // per-group base bindings. (With an acyclic body every free variable
    // occurs in some atom and therefore has a slot.)
    let free_slots: Vec<Option<usize>> = free.iter().map(|v| compiled.table().slot(v)).collect();

    let workers = requested_workers.clamp(1, groups.len().max(1));
    if workers <= 1 {
        // Sequential: one checker whose memo is shared by every group.
        let checker = CertaintyChecker::with_compiled(compiled.clone(), cx.index);
        return eval_shard(spec, cx, &checker, compiled, &free_slots, groups);
    }

    // ForallCheck + AggregateBound, fanned out over contiguous group shards;
    // RangeMerge concatenates the shard outputs in shard order.
    let shards = shard(groups, workers);
    let free_slots = &free_slots;
    let shard_results: Vec<Result<Vec<GroupRange>, CoreError>> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let compiled = compiled.clone();
                s.spawn(move || {
                    let checker = CertaintyChecker::with_compiled(compiled.clone(), cx.index);
                    eval_shard(spec, cx, &checker, &compiled, free_slots, shard)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("plan executor worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for result in shard_results {
        out.extend(result?);
    }
    Ok(out)
}

/// Splits `items` into at most `shards` contiguous, size-balanced chunks.
fn shard<T>(items: Vec<T>, shards: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out: Vec<Vec<T>> = Vec::with_capacity(shards);
    let mut items = items.into_iter();
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(items.by_ref().take(len).collect());
    }
    out
}

/// Runs ForallCheck + AggregateBound for one contiguous shard of groups,
/// sharing one memoised certainty checker across the shard.
fn eval_shard(
    spec: &ExecSpec,
    cx: &ExecContext<'_>,
    checker: &CertaintyChecker<'_>,
    compiled: &CompiledLevels,
    free_slots: &[Option<usize>],
    groups: Vec<IdGroup>,
) -> Result<Vec<GroupRange>, CoreError> {
    let interner = cx.index.interner();
    let mut out = Vec::with_capacity(groups.len());
    for (key_ids, embs) in groups {
        // The result boundary: the group key materialises here, for the
        // GroupRange row and (below) the exact fallback's substitution.
        let key = interner.values_of(&key_ids);
        let analysis = if spec.needs_analysis {
            let mut base = compiled.unbound_ids();
            for (slot, &id) in free_slots.iter().zip(key_ids.iter()) {
                if let Some(s) = slot {
                    base[*s] = id;
                }
            }
            Some(analyse_group_with_embeddings_ids(
                checker,
                &base,
                embs,
                spec.needs_forall,
            ))
        } else {
            None
        };
        let mut exact_cache: Option<ExactBounds> = None;
        let glb = match spec.glb {
            Some(op) => Some(bound_answer(
                op,
                BoundKind::Glb,
                cx,
                analysis.as_ref(),
                &key,
                &mut exact_cache,
            )?),
            None => None,
        };
        let lub = match spec.lub {
            Some(op) => Some(bound_answer(
                op,
                BoundKind::Lub,
                cx,
                analysis.as_ref(),
                &key,
                &mut exact_cache,
            )?),
            None => None,
        };
        // Residual predicates are invisible to the partitioner, so the exact
        // enumeration may discover that a candidate group has no satisfying
        // embedding at all — such a group is not a possible answer and has
        // no row. (Closed queries keep their single row: a scalar query
        // honestly answers ⊥.)
        if !key.is_empty()
            && !cx.exact_predicates.is_empty()
            && exact_cache.is_some_and(|b| !b.satisfiable)
        {
            continue;
        }
        out.push(GroupRange { key, glb, lub });
    }
    Ok(out)
}

/// Computes one bound of one group from the shared analysis (or the cached
/// exact enumeration for [`BoundOp::ExactEnumeration`]).
fn bound_answer(
    op: BoundOp,
    bound: BoundKind,
    cx: &ExecContext<'_>,
    analysis: Option<&ForallAnalysis>,
    key: &[Value],
    exact_cache: &mut Option<ExactBounds>,
) -> Result<BoundAnswer, CoreError> {
    let term = &cx.prepared.normalised.term;
    match op {
        BoundOp::Rewrite { combine, choice } => {
            let analysis = analysis.expect("the Rewrite operator requires the analysis");
            let value = analysis.certain.then(|| {
                optimal_aggregate(
                    cx.prepared.body.levels(),
                    &analysis.forall_embeddings,
                    term,
                    combine,
                    choice,
                )
            });
            Ok(BoundAnswer {
                value: value.flatten(),
                method: Method::Rewriting,
            })
        }
        BoundOp::Extremum { choice } => {
            let analysis = analysis.expect("the Extremum operator requires the analysis");
            // Theorem 7.10 (GLB of MIN) and its mirror (LUB of MAX).
            let value = analysis
                .certain
                .then(|| global_extremum(&analysis.embeddings, term, choice == Choice::Maximise));
            Ok(BoundAnswer {
                value: value.flatten(),
                method: Method::PlainExtremum,
            })
        }
        BoundOp::ExactEnumeration => {
            if !cx.options.allow_exact_fallback {
                return Err(CoreError::UnsupportedAggregate {
                    reason: format!(
                        "no AGGR[FOL] rewriting is known for {bound:?} of {} and the \
                         exact fallback is disabled",
                        cx.prepared.normalised.agg
                    ),
                });
            }
            let bounds = match exact_cache {
                Some(bounds) => *bounds,
                None => {
                    let computed = if key.is_empty() {
                        exact_bounds_filtered(
                            cx.prepared,
                            cx.db,
                            cx.options.max_repairs,
                            cx.exact_predicates,
                        )?
                    } else {
                        let closed = substitute_group(cx.prepared, key)?;
                        exact_bounds_filtered(
                            &closed,
                            cx.db,
                            cx.options.max_repairs,
                            cx.exact_predicates,
                        )?
                    };
                    *exact_cache = Some(computed);
                    computed
                }
            };
            let value = match bound {
                BoundKind::Glb => bounds.glb,
                BoundKind::Lub => bounds.lub,
            };
            Ok(BoundAnswer {
                value,
                method: Method::ExactEnumeration,
            })
        }
    }
}

/// The open → closed projection of the `PartitionByGroup` operator: slots of
/// the free variables in the open table (the group key), and the slot
/// remapping open → closed (same variable set, possibly different topological
/// order). Unknown closed slots only arise for cyclic closed bodies, whose
/// evaluation never consumes the embeddings.
fn group_projection(
    open: &CompiledLevels,
    closed: &CompiledLevels,
    free: &[Var],
) -> (Vec<usize>, Vec<Option<usize>>) {
    let free_slots: Vec<usize> = free
        .iter()
        .map(|v| {
            open.table()
                .slot(v)
                .expect("free variable occurs in the open body")
        })
        .collect();
    let remap: Vec<Option<usize>> = open
        .table()
        .vars()
        .iter()
        .map(|v| closed.table().slot(v))
        .collect();
    (free_slots, remap)
}

/// Buckets a batch of open-body embeddings (as id vectors) by group key,
/// re-expressing each kept embedding over the closed body's slot table.
///
/// Keys are raw id tuples hashed as integers — exact, since id equality is
/// value equality. Buckets preserve arrival order; the key *order* across
/// buckets is imposed afterwards by [`sorted_groups`].
fn bucket_embeddings(
    closed_len: usize,
    free_slots: &[usize],
    remap: &[Option<usize>],
    open_embeddings: Vec<Vec<u32>>,
    keep_embeddings: bool,
) -> HashMap<Vec<u32>, Vec<Vec<u32>>> {
    let mut groups: HashMap<Vec<u32>, Vec<Vec<u32>>> = HashMap::new();
    for theta in open_embeddings {
        let key: Vec<u32> = free_slots.iter().map(|&s| theta[s]).collect();
        debug_assert!(
            !key.contains(&UNBOUND_ID),
            "free variables are bound by every embedding"
        );
        let bucket = groups.entry(key).or_default();
        if keep_embeddings {
            let mut closed_slots: Vec<u32> = vec![UNBOUND_ID; closed_len];
            for (o, c) in remap.iter().enumerate() {
                if let Some(c) = c {
                    closed_slots[*c] = theta[o];
                }
            }
            bucket.push(closed_slots);
        }
    }
    groups
}

/// Orders bucketed groups by group-key **value** order (via
/// [`ValueInterner::cmp_id_tuples`]): the output order is therefore
/// independent of both the hash map's iteration order and the interner's id
/// layout, which is what keeps answers byte-identical across thread counts
/// and across warm/cold indexes.
fn sorted_groups(
    groups: HashMap<Vec<u32>, Vec<Vec<u32>>>,
    interner: &ValueInterner,
) -> Vec<IdGroup> {
    let mut out: Vec<IdGroup> = groups.into_iter().collect();
    out.sort_by(|a, b| interner.cmp_id_tuples(&a.0, &b.0));
    out
}

/// Enumerates the open body once over the shared index and partitions the
/// embeddings by group key, re-expressed over the closed body's slot table
/// (so downstream certainty checks need no per-group re-preparation). This is
/// the sequential `PartitionByGroup` operator, in id space.
fn partition_groups_ids(
    prepared: &PreparedAggQuery,
    index: &DbIndex,
    closed: &CompiledLevels,
    free: &[Var],
    keep_embeddings: bool,
) -> Vec<IdGroup> {
    let open = CompiledLevels::new(prepared.open_levels());
    let (free_slots, remap) = group_projection(&open, closed, free);
    let open_embeddings = embeddings_compiled_ids(&open, index, &open.unbound_ids());
    sorted_groups(
        bucket_embeddings(
            closed.table().len(),
            &free_slots,
            &remap,
            open_embeddings,
            keep_embeddings,
        ),
        index.interner(),
    )
}

/// Value-level wrapper over [`partition_groups_ids`] for callers outside the
/// executor (the engine's candidate-group enumeration): group keys — and,
/// when kept, embeddings — are materialised at return.
pub(crate) fn partition_groups(
    prepared: &PreparedAggQuery,
    index: &DbIndex,
    closed: &CompiledLevels,
    free: &[Var],
    keep_embeddings: bool,
) -> Vec<(Vec<Value>, Vec<Binding>)> {
    let interner = index.interner();
    partition_groups_ids(prepared, index, closed, free, keep_embeddings)
        .into_iter()
        .map(|(key, embs)| {
            (
                interner.values_of(&key),
                embs.iter()
                    .map(|ids| ids_to_binding(closed.table(), ids, interner))
                    .collect(),
            )
        })
        .collect()
}

/// The parallel `Scan + Join + PartitionByGroup` phase: the shared index is
/// sharded **by level-0 block key** into contiguous ranges, each worker joins
/// and buckets its range, and the per-shard maps are merged in shard order.
/// Because the sequential enumeration also walks level-0 blocks in that
/// order, the merged partitions — keys *and* the embedding order within each
/// group — are byte-identical to [`partition_groups_ids`].
fn partition_groups_sharded(
    prepared: &PreparedAggQuery,
    index: &DbIndex,
    closed: &CompiledLevels,
    free: &[Var],
    keep_embeddings: bool,
    workers: usize,
) -> Vec<IdGroup> {
    let open = CompiledLevels::new(prepared.open_levels());
    let blocks = match level0_blocks(&open, index, &open.binding()) {
        Some(blocks) => blocks,
        None => return partition_groups_ids(prepared, index, closed, free, keep_embeddings),
    };
    let workers = workers.clamp(1, blocks.len().max(1));
    if workers <= 1 {
        return partition_groups_ids(prepared, index, closed, free, keep_embeddings);
    }
    let (free_slots, remap) = group_projection(&open, closed, free);
    let initial = open.unbound_ids();
    let closed_len = closed.table().len();
    let shards = shard(blocks, workers);
    let (open, initial, free_slots, remap) = (&open, &initial, &free_slots, &remap);
    let shard_maps: Vec<HashMap<Vec<u32>, Vec<Vec<u32>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|blocks| {
                s.spawn(move || {
                    let embs = embeddings_from_blocks_ids(open, index, initial, &blocks);
                    bucket_embeddings(closed_len, free_slots, remap, embs, keep_embeddings)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    });
    // RangeMerge discipline: merge shard maps in shard order, so each group's
    // embeddings appear in level-0 block order exactly as sequentially.
    let mut merged: HashMap<Vec<u32>, Vec<Vec<u32>>> = HashMap::new();
    for map in shard_maps {
        let mut entries: Vec<(Vec<u32>, Vec<Vec<u32>>)> = map.into_iter().collect();
        // Within one shard the map's iteration order is arbitrary, but each
        // bucket's contents are already in block order; bucket-to-bucket
        // order inside a shard is immaterial because buckets are disjoint.
        for (key, embs) in entries.drain(..) {
            merged.entry(key).or_default().extend(embs);
        }
    }
    sorted_groups(merged, index.interner())
}

/// One key position of a [`SupportAtom`]'s block-key pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SupportSlot {
    /// Any block key matches at this position.
    Any,
    /// Only this constant matches (the query pins the position).
    Const(Value),
    /// The `i`-th component (free-variable order) of the group key matches.
    Group(usize),
}

/// The block-key pattern of one body atom, instantiable per group row: which
/// blocks of [`SupportAtom::relation`] the row's evaluation may consult.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupportAtom {
    /// The atom's relation.
    pub relation: String,
    /// One pattern slot per key position of the relation.
    pub key: Vec<SupportSlot>,
}

/// The **support set** of a statement's result rows, described intensionally:
/// instantiating the atom patterns with a row's group key over-approximates
/// every `(relation, block key)` pair that row's embeddings and certainty
/// checks can touch.
///
/// Soundness: the executor probes blocks exclusively through
/// [`crate::index::RelationIndex::blocks_matching`] with patterns built by
/// `key_pattern_ids` — each atom's key positions with constants resolved and
/// bound slots filled in. During a group's evaluation (join, certainty memo,
/// ∀embedding filter) a free variable is always bound to the group key and
/// every other slot only *refines* the pattern, so each probed pattern is a
/// specialisation of the atom's base pattern with the group key substituted —
/// and matches only blocks the instantiated [`RowSupport`] covers. Block
/// restrictions (pushed-down predicates) shrink the visible block set, which
/// the over-approximation soundly ignores. A row's value is therefore a
/// function of the covered blocks alone: a commit none of whose dirty blocks
/// is covered cannot change the row.
///
/// The one escape hatch is [`BoundOp::ExactEnumeration`]: the exhaustive
/// fallback enumerates repairs of the **whole instance** (its repair-count
/// budget check included), so any plan using it on either bound gets an
/// `exhaustive` support — every block supports every row.
#[derive(Clone, Debug)]
pub struct RowSupport {
    atoms: Vec<SupportAtom>,
    exhaustive: bool,
}

impl RowSupport {
    /// The support of the rows produced by `plan` for `prepared`.
    pub(crate) fn for_plan(plan: &PhysicalPlan, prepared: &PreparedAggQuery) -> RowSupport {
        let spec = plan.spec();
        if matches!(spec.glb, Some(BoundOp::ExactEnumeration))
            || matches!(spec.lub, Some(BoundOp::ExactEnumeration))
        {
            return RowSupport::exhaustive();
        }
        let free = prepared.normalised.body.free_vars();
        let schema = prepared.body.schema();
        let mut atoms = Vec::new();
        for atom in prepared.normalised.body.atoms() {
            let Some(sig) = schema.signature(atom.relation()) else {
                // An atom outside the schema cannot be localised; give up.
                return RowSupport::exhaustive();
            };
            let key = atom.terms()[..sig.key_len()]
                .iter()
                .map(|t| match t {
                    Term::Const(c) => SupportSlot::Const(c.clone()),
                    Term::Var(v) => match free.iter().position(|f| f == v) {
                        Some(i) => SupportSlot::Group(i),
                        None => SupportSlot::Any,
                    },
                })
                .collect();
            atoms.push(SupportAtom {
                relation: atom.relation().to_string(),
                key,
            });
        }
        RowSupport {
            atoms,
            exhaustive: false,
        }
    }

    /// The all-blocks support: every block supports every row.
    pub fn exhaustive() -> RowSupport {
        RowSupport {
            atoms: Vec::new(),
            exhaustive: true,
        }
    }

    /// Whether every block supports every row (any delta invalidates all
    /// cached rows, and dirty-block intersection is pointless).
    pub fn is_exhaustive(&self) -> bool {
        self.exhaustive
    }

    /// The per-atom block-key patterns (empty when exhaustive).
    pub fn atoms(&self) -> &[SupportAtom] {
        &self.atoms
    }

    /// Whether the block `(relation, block_key)` supports the row with group
    /// key `row_key`: some atom pattern, instantiated with the row's key,
    /// matches the block.
    pub fn hits(&self, row_key: &[Value], relation: &str, block_key: &[Value]) -> bool {
        if self.exhaustive {
            return true;
        }
        self.atoms.iter().any(|a| {
            a.relation == relation
                && a.key.len() == block_key.len()
                && a.key.iter().zip(block_key).all(|(slot, v)| match slot {
                    SupportSlot::Any => true,
                    SupportSlot::Const(c) => c == v,
                    SupportSlot::Group(i) => &row_key[*i] == v,
                })
        })
    }

    /// Merges the supports of several plans over one shared body (the
    /// serving layer prepares one engine per aggregate): the atoms coincide,
    /// so the merge only widens to exhaustive when any constituent is.
    pub fn merge(self, other: RowSupport) -> RowSupport {
        if self.exhaustive {
            self
        } else if other.exhaustive {
            other
        } else {
            debug_assert_eq!(
                self.atoms, other.atoms,
                "supports merged across one statement share the body"
            );
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_contiguous_and_balanced() {
        let items: Vec<usize> = (0..10).collect();
        let shards = shard(items.clone(), 4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0], vec![0, 1, 2]);
        assert_eq!(shards[1], vec![3, 4, 5]);
        assert_eq!(shards[2], vec![6, 7]);
        assert_eq!(shards[3], vec![8, 9]);
        // More shards than items: one item per shard, no empties.
        let shards = shard(vec![1, 2], 8);
        assert_eq!(shards, vec![vec![1], vec![2]]);
        // Empty input stays a single empty shard.
        let shards = shard(Vec::<usize>::new(), 3);
        assert_eq!(shards.len(), 1);
        assert!(shards[0].is_empty());
    }
}
