//! The two-level plan architecture of the engine.
//!
//! [`RangeCqa`](crate::engine::RangeCqa) no longer dispatches evaluation
//! strategies ad hoc; every call goes through an explicit two-stage plan:
//!
//! 1. **Logical planning** ([`logical`]): classify the query per
//!    `(aggregate, bound, numeric domain)` and pick a [`BoundStrategy`] for
//!    each requested bound — Theorem 6.1 / 7.11 rewriting over ∀embeddings,
//!    the Theorem 7.10 plain extremum, or the exhaustive-repair fallback.
//! 2. **Lowering** ([`physical`]): turn the logical plan into a linear
//!    physical-operator pipeline
//!    (`Scan → Join → PartitionByGroup → ForallCheck → AggregateBound →
//!    RangeMerge`) that states, operator by operator, what the executor does.
//! 3. **Execution** ([`exec`]): interpret the physical plan over a shared
//!    [`DbIndex`](crate::index::DbIndex), either sequentially or on a
//!    block-sharded `std::thread::scope` worker pool (see
//!    [`EngineOptions::threads`](crate::engine::EngineOptions::threads)).
//!
//! The split exists so that every evaluation path — `glb`, `lub`, `range`,
//! and the exact fallback — runs through one executor with one set of
//! invariants (single index build, shared group partitioning, deterministic
//! merge order), and so the chosen plan is inspectable:
//!
//! ```
//! use rcqa_core::engine::RangeCqa;
//! use rcqa_data::{NumericDomain, Schema, Signature};
//! use rcqa_query::parse_agg_query;
//!
//! let schema = Schema::new()
//!     .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
//!     .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
//! let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
//! let engine = RangeCqa::new(&q, &schema).unwrap();
//! let plan = engine.plan(NumericDomain::NonNegative, true, true);
//! println!("{plan}"); // RangeMerge └─ AggregateBound └─ ForallCheck └─ ...
//! ```

pub mod exec;
pub mod logical;
pub mod physical;

pub use exec::{execute, ExecContext};
pub use logical::{BoundStrategy, LogicalPlan};
pub use physical::{BoundOp, PhysicalPlan, PlanNode};
