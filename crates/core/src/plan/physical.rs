//! The physical plan IR: the linear operator pipeline the executor
//! interprets.
//!
//! The pipeline is deliberately shaped like a textbook query plan so that it
//! can be printed (`EXPLAIN`-style via [`fmt::Display`]) and asserted on in
//! tests, while staying faithful to what [`crate::plan::exec`] actually does:
//!
//! ```text
//! RangeMerge                       deterministic merge of worker shards
//! └─ AggregateBound                per group × bound: rewriting / extremum / exact
//!    └─ ForallCheck                per group: certainty + ∀embedding filter
//!       └─ PartitionByGroup        shard embeddings by GROUP BY key
//!          └─ Join                 one level-wise join pass over the body
//!             └─ Scan              the shared block index (one build per call)
//! ```

use crate::glb::Choice;
use crate::plan::logical::BoundStrategy;
use rcqa_data::AggFunc;
use rcqa_query::Var;
use std::fmt;

/// The physical operator computing one bound of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundOp {
    /// Theorem 6.1 / 7.11 recursion over the group's ∀embeddings.
    Rewrite {
        /// The branch-combining aggregate operator.
        combine: AggFunc,
        /// Block-level alternative resolution (MIN for GLB, MAX for LUB).
        choice: Choice,
    },
    /// Theorem 7.10 extremum over the group's embeddings.
    Extremum {
        /// Whether the extremum maximises.
        choice: Choice,
    },
    /// Exhaustive repair enumeration of the group-substituted closed query.
    ExactEnumeration,
}

impl BoundOp {
    /// Lowers a logical strategy to its physical operator.
    pub fn from_strategy(strategy: BoundStrategy) -> BoundOp {
        match strategy {
            BoundStrategy::Rewriting { combine, choice } => BoundOp::Rewrite { combine, choice },
            BoundStrategy::PlainExtremum { choice } => BoundOp::Extremum { choice },
            BoundStrategy::ExactFallback => BoundOp::ExactEnumeration,
        }
    }
}

impl fmt::Display for BoundOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundOp::Rewrite { combine, choice } => write!(f, "Rewrite({combine}, {choice:?})"),
            BoundOp::Extremum { choice } => write!(f, "Extremum({choice:?})"),
            BoundOp::ExactEnumeration => write!(f, "ExactEnumeration"),
        }
    }
}

/// One node of the physical plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanNode {
    /// Access path: the shared block index over the named relations (built
    /// exactly once per engine call, shared by all executor workers).
    Scan {
        /// Relations scanned, in topological body order.
        relations: Vec<String>,
    },
    /// Access path: a **restricted view** of the shared block index — the
    /// relations carrying comparison predicates on key positions were
    /// narrowed by [`crate::index::DbIndex::restrict`] (ordered binary-
    /// searched range seeks where the stats said so, linear filters
    /// otherwise) before the join pass ran. A leaf, like [`PlanNode::Scan`];
    /// the join reads the view exactly as it would the full index.
    Seek {
        /// Relations read, in topological body order.
        relations: Vec<String>,
        /// One rendered access-path line per restricted relation (relation,
        /// seek/filter predicates, matched/total blocks, stats estimate).
        paths: Vec<String>,
    },
    /// One level-wise join pass over the (open or closed) body.
    Join {
        /// Number of join levels (atoms).
        levels: usize,
        /// Whether the GROUP BY variables are un-frozen for the pass.
        open_body: bool,
        /// Whether embeddings are materialised (false when every bound uses
        /// the exact fallback and only candidate group keys are needed).
        keep_embeddings: bool,
        /// Upstream operator.
        input: Box<PlanNode>,
    },
    /// Partition the join output by GROUP BY key (the block-shard boundary
    /// of the parallel executor).
    PartitionByGroup {
        /// The GROUP BY variables (empty for closed queries).
        group_vars: Vec<Var>,
        /// Upstream operator.
        input: Box<PlanNode>,
    },
    /// Per-group certainty check and (optionally) the ∀embedding filter.
    ForallCheck {
        /// Whether the operator runs at all (skipped when every bound uses
        /// the exact fallback).
        run: bool,
        /// Whether the ∀embedding filter runs (rewriting strategies only).
        compute_forall: bool,
        /// Upstream operator.
        input: Box<PlanNode>,
    },
    /// Per group, compute the requested bounds.
    AggregateBound {
        /// Operator for the greatest lower bound, if requested.
        glb: Option<BoundOp>,
        /// Operator for the least upper bound, if requested.
        lub: Option<BoundOp>,
        /// Upstream operator.
        input: Box<PlanNode>,
    },
    /// Merge the per-shard group answers in deterministic group-key order.
    RangeMerge {
        /// Upstream operator.
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    /// The upstream operator, if any.
    pub fn input(&self) -> Option<&PlanNode> {
        match self {
            PlanNode::Scan { .. } | PlanNode::Seek { .. } => None,
            PlanNode::Join { input, .. }
            | PlanNode::PartitionByGroup { input, .. }
            | PlanNode::ForallCheck { input, .. }
            | PlanNode::AggregateBound { input, .. }
            | PlanNode::RangeMerge { input } => Some(input),
        }
    }
}

/// A complete physical plan (a linear pipeline rooted at [`PlanNode::RangeMerge`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// The root operator.
    pub root: PlanNode,
}

/// The flattened execution parameters of a well-formed pipeline, extracted
/// once by the executor instead of re-matching the tree per group.
#[derive(Clone, Debug)]
pub(crate) struct ExecSpec {
    pub glb: Option<BoundOp>,
    pub lub: Option<BoundOp>,
    pub needs_analysis: bool,
    pub needs_forall: bool,
    pub keep_embeddings: bool,
}

impl PhysicalPlan {
    /// Flattens the pipeline into its execution parameters.
    ///
    /// # Panics
    /// Panics if the plan does not have the canonical
    /// `RangeMerge → AggregateBound → ForallCheck → PartitionByGroup → Join →
    /// Scan|Seek` shape produced by [`crate::plan::logical::LogicalPlan::lower`]
    /// (`Seek` when [`crate::plan::logical::LogicalPlan::lower_with_access`]
    /// installed a restricted access path).
    pub(crate) fn spec(&self) -> ExecSpec {
        let PlanNode::RangeMerge { input } = &self.root else {
            panic!("physical plan must be rooted at RangeMerge");
        };
        let PlanNode::AggregateBound { glb, lub, input } = input.as_ref() else {
            panic!("RangeMerge must read from AggregateBound");
        };
        let PlanNode::ForallCheck {
            run,
            compute_forall,
            input,
        } = input.as_ref()
        else {
            panic!("AggregateBound must read from ForallCheck");
        };
        let PlanNode::PartitionByGroup { input, .. } = input.as_ref() else {
            panic!("ForallCheck must read from PartitionByGroup");
        };
        let PlanNode::Join {
            keep_embeddings,
            input,
            ..
        } = input.as_ref()
        else {
            panic!("PartitionByGroup must read from Join");
        };
        let (PlanNode::Scan { .. } | PlanNode::Seek { .. }) = input.as_ref() else {
            panic!("Join must read from Scan or Seek");
        };
        ExecSpec {
            glb: *glb,
            lub: *lub,
            needs_analysis: *run,
            needs_forall: *compute_forall,
            keep_embeddings: *keep_embeddings,
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut node = Some(&self.root);
        let mut depth = 0usize;
        while let Some(n) = node {
            if depth == 0 {
                writeln!(f, "{}", describe(n))?;
            } else {
                writeln!(f, "{}└─ {}", "   ".repeat(depth - 1), describe(n))?;
            }
            node = n.input();
            depth += 1;
        }
        Ok(())
    }
}

fn describe(node: &PlanNode) -> String {
    match node {
        PlanNode::Scan { relations } => {
            format!("Scan [{}] (shared block index)", relations.join(", "))
        }
        PlanNode::Seek { relations, paths } => format!(
            "Seek [{}] (restricted block index: {})",
            relations.join(", "),
            paths.join(" · ")
        ),
        PlanNode::Join {
            levels,
            open_body,
            keep_embeddings,
            ..
        } => format!(
            "Join [{levels} level{}, {} body{}]",
            if *levels == 1 { "" } else { "s" },
            if *open_body { "open" } else { "closed" },
            if *keep_embeddings { "" } else { ", keys only" }
        ),
        PlanNode::PartitionByGroup { group_vars, .. } => {
            if group_vars.is_empty() {
                "PartitionByGroup [single group]".to_string()
            } else {
                format!(
                    "PartitionByGroup [{}]",
                    group_vars
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        }
        PlanNode::ForallCheck {
            run,
            compute_forall,
            ..
        } => match (run, compute_forall) {
            (false, _) => "ForallCheck [skipped]".to_string(),
            (true, false) => "ForallCheck [certainty only]".to_string(),
            (true, true) => "ForallCheck [certainty + ∀embeddings]".to_string(),
        },
        PlanNode::AggregateBound { glb, lub, .. } => {
            let show = |b: &Option<BoundOp>| {
                b.map(|op| op.to_string())
                    .unwrap_or_else(|| "-".to_string())
            };
            format!("AggregateBound [glb: {}, lub: {}]", show(glb), show(lub))
        }
        PlanNode::RangeMerge { .. } => "RangeMerge [deterministic group order]".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::logical::LogicalPlan;
    use crate::prepared::PreparedAggQuery;
    use rcqa_data::{NumericDomain, Schema, Signature};
    use rcqa_query::parse_agg_query;

    #[test]
    fn spec_round_trips_the_lowered_plan() {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap());
        let q = parse_agg_query("(x, MAX(r)) <- R(x, y), S(y, z, r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &schema).unwrap();
        let plan =
            LogicalPlan::new(&prepared, NumericDomain::NonNegative, true, true).lower(&prepared);
        let spec = plan.spec();
        assert!(matches!(spec.glb, Some(BoundOp::Rewrite { .. })));
        assert!(matches!(spec.lub, Some(BoundOp::Extremum { .. })));
        assert!(spec.needs_analysis);
        assert!(spec.needs_forall);
        assert!(spec.keep_embeddings);

        // Exact-only plans skip analysis and embedding materialisation.
        let q = parse_agg_query("(x, AVG(r)) <- R(x, y), S(y, z, r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &schema).unwrap();
        let plan =
            LogicalPlan::new(&prepared, NumericDomain::NonNegative, true, false).lower(&prepared);
        let spec = plan.spec();
        assert_eq!(spec.glb, Some(BoundOp::ExactEnumeration));
        assert_eq!(spec.lub, None);
        assert!(!spec.needs_analysis);
        assert!(!spec.keep_embeddings);
    }
}
