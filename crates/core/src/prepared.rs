//! Query preparation: attack-graph analysis, topological sorting, and the
//! per-level variable structure used by Section 4 of the paper.
//!
//! For a topological sort `(F_1, ..., F_n)` of an acyclic attack graph, the
//! paper defines (Section 4):
//!
//! * `ū_ℓ` — all variables of `F_1, ..., F_ℓ`;
//! * `x̄_ℓ` — the variables of `Key(F_ℓ)` not occurring earlier;
//! * `ȳ_ℓ` — the variables of `notKey(F_ℓ)` not occurring earlier,
//!
//! so that `ū_ℓ = (ū_{ℓ-1}, x̄_ℓ, ȳ_ℓ)`. Free variables of the query are
//! treated as constants and excluded from all three.

use crate::error::CoreError;
use rcqa_data::Schema;
use rcqa_query::{AggQuery, Atom, AttackGraph, ConjunctiveQuery, Var};
use std::collections::BTreeSet;

/// The per-level variable structure for one atom of the topological sort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Level {
    /// The atom `F_ℓ`.
    pub atom: Atom,
    /// Length of the primary key of the atom's relation.
    pub key_len: usize,
    /// `x̄_ℓ`: new key variables introduced at this level.
    pub new_key_vars: Vec<Var>,
    /// `ȳ_ℓ`: new non-key variables introduced at this level.
    pub new_other_vars: Vec<Var>,
    /// `ū_ℓ`: all (non-frozen) variables of `F_1, ..., F_ℓ`.
    pub prefix_vars: Vec<Var>,
}

/// A conjunctive-query body prepared for the operational algorithms: validated
/// against the schema, attack graph built, and (when acyclic) atoms arranged
/// in a topological sort with the per-level variable structure.
#[derive(Clone, Debug)]
pub struct PreparedBody {
    schema: Schema,
    body: ConjunctiveQuery,
    graph: AttackGraph,
    /// Topological sort as indices into `body.atoms()`, if the graph is
    /// acyclic.
    topo: Option<Vec<usize>>,
    /// Per-level structure, in topological order (empty when cyclic).
    levels: Vec<Level>,
}

impl PreparedBody {
    /// Prepares a query body: validates it and computes its attack graph and
    /// level structure.
    pub fn new(body: &ConjunctiveQuery, schema: &Schema) -> Result<PreparedBody, CoreError> {
        body.validate(schema)?;
        let graph = AttackGraph::new(body, schema);
        let topo = graph.topological_sort();
        let levels = match &topo {
            Some(order) => Self::build_levels(body, schema, order),
            None => Vec::new(),
        };
        Ok(PreparedBody {
            schema: schema.clone(),
            body: body.clone(),
            graph,
            topo,
            levels,
        })
    }

    fn build_levels(body: &ConjunctiveQuery, schema: &Schema, order: &[usize]) -> Vec<Level> {
        let frozen: BTreeSet<Var> = body.free_vars().iter().cloned().collect();
        let mut seen: BTreeSet<Var> = BTreeSet::new();
        let mut prefix: Vec<Var> = Vec::new();
        let mut levels = Vec::with_capacity(order.len());
        for &i in order {
            let atom = body.atoms()[i].clone();
            let key_len = schema
                .signature(atom.relation())
                .map(|s| s.key_len())
                .unwrap_or(atom.arity());
            let mut new_key_vars = Vec::new();
            let mut new_other_vars = Vec::new();
            // Preserve positional order for determinism.
            for (p, term) in atom.terms().iter().enumerate() {
                if let Some(v) = term.as_var() {
                    if frozen.contains(v) || seen.contains(v) {
                        continue;
                    }
                    if p < key_len {
                        if !new_key_vars.contains(v) {
                            new_key_vars.push(v.clone());
                        }
                    } else if !new_key_vars.contains(v) && !new_other_vars.contains(v) {
                        new_other_vars.push(v.clone());
                    }
                }
            }
            for v in new_key_vars.iter().chain(new_other_vars.iter()) {
                seen.insert(v.clone());
                prefix.push(v.clone());
            }
            levels.push(Level {
                atom,
                key_len,
                new_key_vars,
                new_other_vars,
                prefix_vars: prefix.clone(),
            });
        }
        levels
    }

    /// The schema the body was prepared against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The original query body.
    pub fn body(&self) -> &ConjunctiveQuery {
        &self.body
    }

    /// The attack graph.
    pub fn attack_graph(&self) -> &AttackGraph {
        &self.graph
    }

    /// Returns `true` if the attack graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo.is_some()
    }

    /// The topological sort, if acyclic.
    pub fn topological_sort(&self) -> Option<&[usize]> {
        self.topo.as_deref()
    }

    /// The per-level structure, in topological order (empty if cyclic).
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Atoms in topological order (falls back to query order when cyclic).
    pub fn atoms_in_order(&self) -> Vec<Atom> {
        match &self.topo {
            Some(order) => order
                .iter()
                .map(|&i| self.body.atoms()[i].clone())
                .collect(),
            None => self.body.atoms().to_vec(),
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.body.atoms().len()
    }

    /// Returns `true` if the body has no atoms.
    pub fn is_empty(&self) -> bool {
        self.body.atoms().is_empty()
    }

    /// All non-frozen variables, in level order (`ū_n`).
    pub fn all_vars(&self) -> Vec<Var> {
        self.levels
            .last()
            .map(|l| l.prefix_vars.clone())
            .unwrap_or_default()
    }
}

/// A fully prepared aggregation query (COUNT normalised to SUM(1)).
#[derive(Clone, Debug)]
pub struct PreparedAggQuery {
    /// The original query as supplied by the user.
    pub original: AggQuery,
    /// The normalised query actually evaluated (COUNT → SUM(1)).
    pub normalised: AggQuery,
    /// The prepared body.
    pub body: PreparedBody,
    /// Level structure of the *open* body — the body with the GROUP BY
    /// variables un-frozen — used to enumerate candidate groups in one join
    /// pass. Empty for closed queries. Computed once here so evaluation never
    /// re-runs attack-graph analysis per call (let alone per group).
    open_levels: Vec<Level>,
}

impl PreparedAggQuery {
    /// Validates and prepares an aggregation query.
    pub fn new(query: &AggQuery, schema: &Schema) -> Result<PreparedAggQuery, CoreError> {
        query.validate(schema)?;
        let normalised = query.normalise_count();
        let body = PreparedBody::new(&normalised.body, schema)?;
        let open_levels = if normalised.body.free_vars().is_empty() {
            Vec::new()
        } else {
            Self::build_open_levels(&normalised.body, schema)
        };
        Ok(PreparedAggQuery {
            original: query.clone(),
            normalised,
            body,
            open_levels,
        })
    }

    /// The level structure of the open body (candidate-group enumeration
    /// order). Empty for closed queries.
    pub fn open_levels(&self) -> &[Level] {
        &self.open_levels
    }

    fn build_open_levels(body: &ConjunctiveQuery, schema: &Schema) -> Vec<Level> {
        let open_body = ConjunctiveQuery::boolean(body.atoms().iter().cloned());
        if let Ok(open) = PreparedBody::new(&open_body, schema) {
            if open.is_acyclic() {
                return open.levels().to_vec();
            }
        }
        // Enumeration does not need a topological sort; fall back to pseudo
        // levels in query order (only the atom and key length are used).
        open_body
            .atoms()
            .iter()
            .map(|atom| Level {
                atom: atom.clone(),
                key_len: schema
                    .signature(atom.relation())
                    .map(|s| s.key_len())
                    .unwrap_or(atom.arity()),
                new_key_vars: Vec::new(),
                new_other_vars: Vec::new(),
                prefix_vars: Vec::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::Signature;
    use rcqa_query::parse_agg_query;

    fn fig3_schema() -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap())
    }

    #[test]
    fn levels_for_fig3_query() {
        // SUM(r) <- R(x, y), S(y, z, 'd', r)
        let q = parse_agg_query("SUM(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &fig3_schema()).unwrap();
        let body = &prepared.body;
        assert!(body.is_acyclic());
        assert_eq!(body.topological_sort().unwrap(), &[0, 1]);
        let levels = body.levels();
        assert_eq!(levels.len(), 2);
        // Level 1: F_1 = R(x, y); x̄_1 = (x), ȳ_1 = (y).
        assert_eq!(levels[0].new_key_vars, vec![Var::new("x")]);
        assert_eq!(levels[0].new_other_vars, vec![Var::new("y")]);
        assert_eq!(levels[0].prefix_vars, vec![Var::new("x"), Var::new("y")]);
        // Level 2: F_2 = S(y, z, d, r); x̄_2 = (z), ȳ_2 = (r).
        assert_eq!(levels[1].new_key_vars, vec![Var::new("z")]);
        assert_eq!(levels[1].new_other_vars, vec![Var::new("r")]);
        assert_eq!(
            levels[1].prefix_vars,
            vec![Var::new("x"), Var::new("y"), Var::new("z"), Var::new("r")]
        );
        assert_eq!(body.all_vars().len(), 4);
    }

    #[test]
    fn frozen_free_variables_are_excluded() {
        let q = parse_agg_query("(x, SUM(r)) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &fig3_schema()).unwrap();
        let levels = prepared.body.levels();
        // x is free, hence frozen: level 1 introduces only y.
        assert!(levels[0].new_key_vars.is_empty());
        assert_eq!(levels[0].new_other_vars, vec![Var::new("y")]);
        assert_eq!(prepared.body.all_vars().len(), 3);
    }

    #[test]
    fn count_is_normalised() {
        let q = parse_agg_query("COUNT(*) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &fig3_schema()).unwrap();
        assert_eq!(prepared.original.agg, rcqa_data::AggFunc::Count);
        assert_eq!(prepared.normalised.agg, rcqa_data::AggFunc::Sum);
    }

    #[test]
    fn cyclic_body_has_no_levels() {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, [1]).unwrap())
            .with_relation("S", Signature::new(2, 1, [1]).unwrap());
        let q = parse_agg_query("SUM(y) <- R(x, y), S(z, y)").unwrap();
        let prepared = PreparedAggQuery::new(&q, &schema).unwrap();
        assert!(!prepared.body.is_acyclic());
        assert!(prepared.body.levels().is_empty());
        assert_eq!(prepared.body.atoms_in_order().len(), 2);
    }

    #[test]
    fn invalid_query_is_rejected() {
        let q = parse_agg_query("SUM(r) <- R(x, y), Nope(z, r)").unwrap();
        assert!(PreparedAggQuery::new(&q, &fig3_schema()).is_err());
    }
}
