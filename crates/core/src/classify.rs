//! The separation decision: is `GLB-CQA(g())` / `LUB-CQA(g())` expressible in
//! AGGR\[FOL\]? (Theorem 1.1, Theorem 5.5, Theorem 6.1, Theorems 7.10/7.11.)

use crate::error::CoreError;
use crate::prepared::PreparedAggQuery;
use rcqa_data::{AggFunc, NumericDomain, Schema};
use rcqa_query::{is_caggforest, AggQuery, CertaintyComplexity};
use std::fmt;

/// Whether a bound of the query is expressible in AGGR\[FOL\].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expressibility {
    /// A rewriting exists and can be constructed (the engine will use it).
    Rewritable {
        /// Which theorem of the paper justifies the rewriting.
        justification: String,
    },
    /// No rewriting exists.
    NotRewritable {
        /// Which theorem of the paper rules the rewriting out.
        justification: String,
    },
    /// The paper leaves this case open (Section 8); the engine falls back to
    /// exact methods.
    Open {
        /// Why the case is open.
        justification: String,
    },
}

impl Expressibility {
    /// Returns `true` for the [`Expressibility::Rewritable`] case.
    pub fn is_rewritable(&self) -> bool {
        matches!(self, Expressibility::Rewritable { .. })
    }
}

impl fmt::Display for Expressibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expressibility::Rewritable { justification } => {
                write!(f, "rewritable in AGGR[FOL] ({justification})")
            }
            Expressibility::NotRewritable { justification } => {
                write!(f, "not rewritable in AGGR[FOL] ({justification})")
            }
            Expressibility::Open { justification } => write!(f, "open ({justification})"),
        }
    }
}

/// The full classification of an aggregation query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    /// Whether the attack graph of the (existentially closed) body is acyclic.
    pub attack_graph_acyclic: bool,
    /// Complexity of `CERTAINTY` for the body (Koutris–Wijsen trichotomy).
    pub certainty: CertaintyComplexity,
    /// Expressibility of `GLB-CQA(g())`.
    pub glb: Expressibility,
    /// Expressibility of `LUB-CQA(g())`.
    pub lub: Expressibility,
    /// Whether the query falls in Fuxman's class Caggforest (ConQuer).
    pub in_caggforest: bool,
    /// Whether the aggregate operator is monotone over the assumed domain.
    pub monotone: bool,
    /// Whether the aggregate operator is associative.
    pub associative: bool,
}

/// Classifies a query assuming numeric columns range over `Q≥0` (the paper's
/// default).
pub fn classify(query: &AggQuery, schema: &Schema) -> Result<Classification, CoreError> {
    classify_with_domain(query, schema, NumericDomain::NonNegative)
}

/// Classifies a query for a given numeric domain (Section 7.3 shows that the
/// domain matters: `SUM` stops being monotone as soon as `−1` is allowed).
pub fn classify_with_domain(
    query: &AggQuery,
    schema: &Schema,
    domain: NumericDomain,
) -> Result<Classification, CoreError> {
    let prepared = PreparedAggQuery::new(query, schema)?;
    Ok(classify_prepared(&prepared, schema, domain))
}

/// Like [`classify_with_domain`], but over an already-prepared query — no
/// re-preparation, no attack-graph recomputation (the hot path for callers
/// that hold a [`crate::engine::RangeCqa`]).
pub fn classify_prepared(
    prepared: &PreparedAggQuery,
    schema: &Schema,
    domain: NumericDomain,
) -> Classification {
    let query = &prepared.original;
    let acyclic = prepared.body.is_acyclic();
    let certainty = prepared.body.attack_graph().certainty_complexity();
    let in_caggforest = is_caggforest(query, schema);

    // COUNT is analysed as SUM(1) (remark after Theorem 6.1).
    let effective = prepared.normalised.agg;
    let monotone = effective.is_monotone(domain);
    let associative = effective.is_associative();

    let glb = if !acyclic {
        Expressibility::NotRewritable {
            justification: "Theorem 5.5: cyclic attack graph".to_string(),
        }
    } else if monotone && associative {
        Expressibility::Rewritable {
            justification: if query.agg == AggFunc::Count {
                "Theorem 6.1 via COUNT = SUM(1)".to_string()
            } else {
                "Theorem 6.1: monotone and associative aggregate, acyclic attack graph".to_string()
            },
        }
    } else if effective == AggFunc::Min {
        Expressibility::Rewritable {
            justification: "Theorem 7.10: MIN-queries with acyclic attack graphs".to_string(),
        }
    } else if effective == AggFunc::Max {
        Expressibility::Rewritable {
            justification: "Theorem 7.11: MAX-queries with acyclic attack graphs".to_string(),
        }
    } else if effective.has_descending_chain(domain) {
        Expressibility::Open {
            justification: format!(
                "Section 7.1: {effective} has a descending chain; GLB-CQA is NL/NP-hard for \
                 specific queries (Lemmas 7.2/7.3), the general case is open (Section 8)"
            ),
        }
    } else {
        Expressibility::Open {
            justification: format!(
                "Section 8: {effective} lacks monotonicity or associativity and is not \
                 covered by the paper's results"
            ),
        }
    };

    let lub = if !acyclic {
        Expressibility::NotRewritable {
            justification: "Theorem 5.5 (applies to LUB as well): cyclic attack graph".to_string(),
        }
    } else {
        match effective {
            AggFunc::Min | AggFunc::Max => Expressibility::Rewritable {
                justification: "Theorem 7.11: MIN/MAX separation for glb and lub".to_string(),
            },
            AggFunc::Sum | AggFunc::Count => Expressibility::Open {
                justification: "Theorem 7.8: the dual of SUM has a descending chain; \
                                LUB-CQA(SUM) is not expressible for the Lemma 7.2 query, \
                                the general case is open"
                    .to_string(),
            },
            other => Expressibility::Open {
                justification: format!(
                    "Section 8: the dual of {other} lacks monotonicity; not covered"
                ),
            },
        }
    };

    Classification {
        attack_graph_acyclic: acyclic,
        certainty,
        glb,
        lub,
        in_caggforest,
        monotone,
        associative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::Signature;
    use rcqa_query::parse_agg_query;

    fn schema() -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap())
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 1, [2]).unwrap())
            .with_relation("B", Signature::new(2, 1, [1]).unwrap())
    }

    #[test]
    fn sum_acyclic_is_rewritable_for_glb_only() {
        let q = parse_agg_query("SUM(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(c.attack_graph_acyclic);
        assert!(c.glb.is_rewritable());
        assert!(!c.lub.is_rewritable());
        assert!(c.monotone && c.associative);
        assert_eq!(c.certainty, CertaintyComplexity::FirstOrder);
    }

    #[test]
    fn count_is_rewritable_via_sum_of_one() {
        let q = parse_agg_query("COUNT(*) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(c.glb.is_rewritable());
    }

    #[test]
    fn cyclic_attack_graph_blocks_both_bounds() {
        // R(x, y), S(y, x) form a (weak) attack-graph cycle; Theorem 5.5 rules
        // out AGGR[FOL] rewritings for both bounds.
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, [1]).unwrap())
            .with_relation("S", Signature::new(2, 1, []).unwrap());
        let q = parse_agg_query("SUM(y) <- R(x, y), S(y, x)").unwrap();
        let c = classify(&q, &schema).unwrap();
        assert!(!c.attack_graph_acyclic);
        assert!(!c.glb.is_rewritable());
        assert!(!c.lub.is_rewritable());
        assert_eq!(c.certainty, CertaintyComplexity::PolynomialTime);
    }

    #[test]
    fn lemma_7_2_query_has_acyclic_attack_graph() {
        // The Lemma 7.2 query AGG(r) <- R(x, y, r), S1(y, x), S2(y, x) has an
        // acyclic attack graph; its hardness for AVG/PRODUCT comes from the
        // descending chain of the aggregate, not from the graph.
        let schema = Schema::new()
            .with_relation("B", Signature::new(3, 2, [2]).unwrap())
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap());
        let q = parse_agg_query("AVG(r) <- B(x, y, r), S1(y, x), S2(y, x)").unwrap();
        let c = classify(&q, &schema).unwrap();
        assert!(c.attack_graph_acyclic);
        assert!(matches!(c.glb, Expressibility::Open { .. }));
        let sum = parse_agg_query("SUM(r) <- B(x, y, r), S1(y, x), S2(y, x)").unwrap();
        let c = classify(&sum, &schema).unwrap();
        assert!(c.glb.is_rewritable());
    }

    #[test]
    fn min_max_rewritable_for_both_bounds() {
        let q = parse_agg_query("MIN(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(c.glb.is_rewritable());
        assert!(c.lub.is_rewritable());
        let q = parse_agg_query("MAX(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(c.glb.is_rewritable());
        assert!(c.lub.is_rewritable());
    }

    #[test]
    fn avg_and_count_distinct_are_open() {
        let q = parse_agg_query("AVG(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(matches!(c.glb, Expressibility::Open { .. }));
        let q = parse_agg_query("COUNT-DISTINCT(r) <- B(x, r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(matches!(c.glb, Expressibility::Open { .. }));
        assert!(!c.monotone);
    }

    #[test]
    fn sum_over_unconstrained_domain_is_not_rewritable_by_theorem_6_1() {
        // Theorem 7.9 / Section 7.3: once −1 is allowed, SUM loses
        // monotonicity and the Theorem 6.1 justification disappears.
        let q = parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, r, z)").unwrap();
        let schema = Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 3, [1]).unwrap());
        let c = classify_with_domain(&q, &schema, NumericDomain::Unconstrained).unwrap();
        assert!(!c.monotone);
        assert!(!c.glb.is_rewritable());
        let c_pos = classify_with_domain(&q, &schema, NumericDomain::NonNegative).unwrap();
        assert!(c_pos.glb.is_rewritable());
    }

    #[test]
    fn display_expressibility() {
        let q = parse_agg_query("SUM(r) <- R(x, y), S(y, z, 'd', r)").unwrap();
        let c = classify(&q, &schema()).unwrap();
        assert!(c.glb.to_string().contains("rewritable"));
        assert!(c.lub.to_string().contains("open"));
    }
}
