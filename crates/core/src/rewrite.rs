//! Symbolic construction of the AGGR\[FOL\] rewritings.
//!
//! This module produces the formulas promised by the paper:
//!
//! * the consistent first-order rewriting of an acyclic self-join-free body
//!   (used by Lemma 4.3 and the `⊥` test),
//! * the ∀embedding formula `φ(ū)` of Lemma 4.3,
//! * the GLB (and mirrored LUB) rewriting of Theorem 6.1, generalising the
//!   construction worked out on Fig. 5 of the paper,
//! * the simple extremum rewritings of Theorem 7.10 / 7.11 for MIN and MAX.
//!
//! The produced formulas can be pretty-printed (the practical analogue of
//! shipping SQL to a DBMS) and evaluated with [`rcqa_logic::Evaluator`], which
//! the test-suite uses to cross-check the operational evaluator on small
//! instances.
//!
//! Note on size: Theorem 1.1 shows a rewriting of at most quadratic length
//! exists. Our uniform construction re-embeds the ∀embedding formula once per
//! level and is therefore `O(|q|³)` in the worst case — still polynomial and
//! constructed in polynomial time; experiment E10 measures the actual growth.

use crate::glb::Choice;
use crate::prepared::{Level, PreparedAggQuery};
use rcqa_data::{AggFunc, AggOp};
use rcqa_logic::{Formula, NumTerm, NumericalQuery};
use rcqa_query::{AggTerm, Atom, Term, Var};
use std::collections::{BTreeMap, BTreeSet};

/// A freshness counter for generated variable names.
#[derive(Default)]
struct Gensym(usize);

impl Gensym {
    fn fresh(&mut self, hint: &str) -> Var {
        self.0 += 1;
        Var::new(format!("{hint}__{}", self.0))
    }
}

/// Constructs the consistent first-order rewriting of the conjunction
/// `F_1 ∧ ... ∧ F_n` (atoms in attack-graph topological order), treating the
/// variables in `frozen` as constants (free variables of the produced
/// formula).
///
/// For every database instance `db` and valuation `θ` of the frozen
/// variables, the formula holds in `db` iff every repair of `db` satisfies
/// `∃(non-frozen vars) F_1 ∧ ... ∧ F_n` under `θ`.
pub fn certainty_rewriting(levels: &[Level], frozen: &BTreeSet<Var>) -> Formula {
    let mut gensym = Gensym::default();
    let atoms: Vec<(Atom, usize)> = levels.iter().map(|l| (l.atom.clone(), l.key_len)).collect();
    certain_rec(&atoms, &BTreeMap::new(), frozen, &mut gensym)
}

fn certain_rec(
    atoms: &[(Atom, usize)],
    subst: &BTreeMap<Var, Term>,
    bound: &BTreeSet<Var>,
    gensym: &mut Gensym,
) -> Formula {
    let Some(((atom, key_len), rest)) = atoms.split_first() else {
        return Formula::True;
    };
    let atom = atom.substitute(subst);
    let key_len = *key_len;

    // Variables of the atom that are not yet bound, split into key/non-key.
    let mut new_key_vars: Vec<Var> = Vec::new();
    let mut new_other_vars: Vec<Var> = Vec::new();
    for (p, term) in atom.terms().iter().enumerate() {
        if let Some(v) = term.as_var() {
            if bound.contains(v) || new_key_vars.contains(v) || new_other_vars.contains(v) {
                continue;
            }
            if p < key_len {
                new_key_vars.push(v.clone());
            } else {
                new_other_vars.push(v.clone());
            }
        }
    }

    // Fresh variables, one per non-key position, for the universal part.
    let fresh: Vec<Var> = (key_len..atom.arity())
        .map(|p| gensym.fresh(&format!("w{p}")))
        .collect();
    let universal_atom = Atom::new(
        atom.relation(),
        atom.terms()
            .iter()
            .take(key_len)
            .cloned()
            .chain(fresh.iter().map(|v| Term::Var(v.clone())))
            .collect::<Vec<Term>>(),
    );

    // Compatibility constraints and the substitution for the recursive call.
    let mut compat: Vec<Formula> = Vec::new();
    let mut rec_subst: BTreeMap<Var, Term> = subst.clone();
    let mut seen_new: BTreeMap<Var, Var> = BTreeMap::new();
    for (offset, p) in (key_len..atom.arity()).enumerate() {
        let fresh_var = &fresh[offset];
        match atom.term(p) {
            Term::Const(c) => compat.push(Formula::Eq(
                Term::Var(fresh_var.clone()),
                Term::Const(c.clone()),
            )),
            Term::Var(v) => {
                if bound.contains(v) || new_key_vars.contains(v) {
                    // Already determined (a constant from the rewriting's point
                    // of view, or fixed by the key of this atom).
                    compat.push(Formula::Eq(
                        Term::Var(fresh_var.clone()),
                        Term::Var(v.clone()),
                    ));
                } else if let Some(first) = seen_new.get(v) {
                    // Repeated new non-key variable within the atom.
                    compat.push(Formula::Eq(
                        Term::Var(fresh_var.clone()),
                        Term::Var(first.clone()),
                    ));
                } else {
                    seen_new.insert(v.clone(), fresh_var.clone());
                    rec_subst.insert(v.clone(), Term::Var(fresh_var.clone()));
                }
            }
        }
    }

    let mut rec_bound = bound.clone();
    rec_bound.extend(new_key_vars.iter().cloned());
    rec_bound.extend(fresh.iter().cloned());
    let inner = certain_rec(rest, &rec_subst, &rec_bound, gensym);

    let universal_part = Formula::forall(
        fresh.clone(),
        Formula::implies(
            Formula::Atom(universal_atom),
            Formula::and(compat.into_iter().chain([inner])),
        ),
    );

    Formula::exists(
        new_key_vars.into_iter().chain(new_other_vars),
        Formula::and([Formula::Atom(atom), universal_part]),
    )
}

/// Constructs the formula `φ(ū)` of Lemma 4.3: a valuation of `ū` satisfies it
/// iff it is a ∀embedding of the body.
pub fn forall_embedding_formula(levels: &[Level], frozen: &BTreeSet<Var>) -> Formula {
    let mut parts: Vec<Formula> = Vec::new();
    let mut bound: BTreeSet<Var> = frozen.clone();
    for (j, lvl) in levels.iter().enumerate() {
        let mut bound_j = bound.clone();
        bound_j.extend(lvl.new_key_vars.iter().cloned());
        // ω_{j+1}: certainty of the suffix with ū_j ∪ x̄_{j+1} frozen.
        let omega = certainty_rewriting(&levels[j..], &bound_j);
        parts.push(omega);
        parts.push(Formula::Atom(lvl.atom.clone()));
        bound.extend(lvl.new_key_vars.iter().cloned());
        bound.extend(lvl.new_other_vars.iter().cloned());
    }
    Formula::and(parts)
}

/// A constructed range-CQA rewriting.
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The consistent first-order rewriting of the body: the answer is `⊥`
    /// (for a group) exactly when this formula is false.
    pub certainty: Formula,
    /// The ∀embedding formula `φ(ū)` (Lemma 4.3).
    pub forall: Formula,
    /// The numerical term computing the bound, with the GROUP BY variables as
    /// its free variables.
    pub value: NumTerm,
    /// The GROUP BY variables.
    pub group_by: Vec<Var>,
}

impl Rewriting {
    /// Packages the rewriting as a numerical query guarded by the certainty
    /// formula (groups whose guard fails have answer `⊥`).
    pub fn as_numerical_query(&self) -> NumericalQuery {
        NumericalQuery {
            free_vars: self.group_by.clone(),
            term: self.value.clone(),
            guard: self.certainty.clone(),
        }
    }

    /// Total size (AST nodes) of the rewriting.
    pub fn size(&self) -> usize {
        self.certainty.size() + self.forall.size() + self.value.size()
    }
}

/// Which bound a rewriting computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// Greatest lower bound across repairs.
    Glb,
    /// Least upper bound across repairs.
    Lub,
}

/// Constructs the Theorem 6.1-style rewriting for a prepared query with an
/// acyclic attack graph, combining independent branches with `combine` and
/// resolving same-key alternatives according to `choice`.
///
/// * `GLB` for a monotone, associative aggregate: `combine` = the aggregate,
///   `choice` = [`Choice::Minimise`] (Theorem 6.1).
/// * `LUB` for MIN-queries: `combine` = MIN, `choice` = [`Choice::Maximise`]
///   (Theorem 7.11 via order reversal).
pub fn construct_rewriting(
    prepared: &PreparedAggQuery,
    combine: AggFunc,
    choice: Choice,
) -> Rewriting {
    assert!(
        prepared.body.is_acyclic(),
        "rewritings exist only for acyclic attack graphs (Theorem 5.5)"
    );
    let levels = prepared.body.levels();
    let frozen: BTreeSet<Var> = prepared
        .normalised
        .body
        .free_vars()
        .iter()
        .cloned()
        .collect();
    let certainty = certainty_rewriting(levels, &frozen);
    let forall = forall_embedding_formula(levels, &frozen);

    // T_n: the aggregated term itself.
    let mut term: NumTerm = match &prepared.normalised.term {
        AggTerm::Var(v) => NumTerm::Var(v.clone()),
        AggTerm::Const(c) => NumTerm::Const(*c),
    };

    let choice_op = match choice {
        Choice::Minimise => AggOp::positive(AggFunc::Min),
        Choice::Maximise => AggOp::positive(AggFunc::Max),
    };
    let combine_op = AggOp::positive(combine);

    // Walk levels from the innermost (F_n) outwards (F_1).
    for (l, lvl) in levels.iter().enumerate().rev() {
        // ψ_{ℓ+1}(ū_{ℓ+1}): the prefix extends to a ∀embedding.
        let later_vars: Vec<Var> = levels
            .iter()
            .skip(l + 1)
            .flat_map(|later| {
                later
                    .new_key_vars
                    .iter()
                    .chain(later.new_other_vars.iter())
                    .cloned()
            })
            .collect();
        let psi_full = Formula::exists(later_vars.clone(), forall.clone());
        // V_{ℓ+1}(ū_ℓ, x̄_{ℓ+1}) := choice over ȳ_{ℓ+1} of T_{ℓ+1}.
        let v_term = NumTerm::aggr(choice_op, lvl.new_other_vars.clone(), term, psi_full);
        // ψ^key_{ℓ+1}(ū_ℓ, x̄_{ℓ+1}): some extension of the key prefix is a
        // ∀embedding.
        let psi_key = Formula::exists(
            lvl.new_other_vars
                .iter()
                .cloned()
                .chain(later_vars)
                .collect::<Vec<Var>>(),
            forall.clone(),
        );
        // T_ℓ(ū_ℓ) := combine over x̄_{ℓ+1} of V_{ℓ+1}.
        term = NumTerm::aggr(combine_op, lvl.new_key_vars.clone(), v_term, psi_key);
    }

    Rewriting {
        certainty,
        forall,
        value: term,
        group_by: prepared.normalised.body.free_vars().to_vec(),
    }
}

/// Constructs the simple extremum rewriting of Theorem 7.10 (GLB of MIN) or
/// its mirror (LUB of MAX): when the query is certain, the bound is just the
/// plain extremum of `r` over all embeddings of the body.
pub fn extremum_rewriting(prepared: &PreparedAggQuery, maximise: bool) -> Rewriting {
    let levels = prepared.body.levels();
    let frozen: BTreeSet<Var> = prepared
        .normalised
        .body
        .free_vars()
        .iter()
        .cloned()
        .collect();
    let certainty = certainty_rewriting(levels, &frozen);
    let forall = forall_embedding_formula(levels, &frozen);
    let body_vars: Vec<Var> = prepared.body.all_vars();
    let body_formula = Formula::and(
        prepared
            .normalised
            .body
            .atoms()
            .iter()
            .cloned()
            .map(Formula::Atom),
    );
    let arg = match &prepared.normalised.term {
        AggTerm::Var(v) => NumTerm::Var(v.clone()),
        AggTerm::Const(c) => NumTerm::Const(*c),
    };
    let op = if maximise {
        AggOp::positive(AggFunc::Max)
    } else {
        AggOp::positive(AggFunc::Min)
    };
    Rewriting {
        certainty,
        forall,
        value: NumTerm::aggr(op, body_vars, arg, body_formula),
        group_by: prepared.normalised.body.free_vars().to_vec(),
    }
}

/// Dispatches to the appropriate rewriting for the requested bound, following
/// the classification of Theorems 6.1, 7.10 and 7.11. Returns `None` when no
/// rewriting is known for this aggregate/bound combination.
pub fn rewriting_for(prepared: &PreparedAggQuery, bound: BoundKind) -> Option<Rewriting> {
    if !prepared.body.is_acyclic() {
        return None;
    }
    let agg = prepared.normalised.agg;
    match (bound, agg) {
        (BoundKind::Glb, AggFunc::Sum) | (BoundKind::Glb, AggFunc::Max) => {
            Some(construct_rewriting(prepared, agg, Choice::Minimise))
        }
        (BoundKind::Glb, AggFunc::Min) => Some(extremum_rewriting(prepared, false)),
        (BoundKind::Lub, AggFunc::Max) => Some(extremum_rewriting(prepared, true)),
        (BoundKind::Lub, AggFunc::Min) => Some(construct_rewriting(
            prepared,
            AggFunc::Min,
            Choice::Maximise,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, rat, DatabaseInstance, Schema, Signature};
    use rcqa_logic::Evaluator;
    use rcqa_query::parse_agg_query;

    fn fig3_schema() -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap())
    }

    fn db0() -> DatabaseInstance {
        let mut db = DatabaseInstance::new(fig3_schema());
        db.insert_all([
            fact!("R", "a1", "b1"),
            fact!("R", "a1", "b2"),
            fact!("R", "a2", "b2"),
            fact!("R", "a2", "b3"),
            fact!("R", "a3", "b4"),
            fact!("S", "b1", "c1", "d", 1),
            fact!("S", "b1", "c1", "d", 2),
            fact!("S", "b1", "c2", "d", 3),
            fact!("S", "b2", "c3", "d", 5),
            fact!("S", "b2", "c3", "d", 6),
            fact!("S", "b3", "c4", "d", 5),
            fact!("S", "b4", "c5", "d", 7),
            fact!("S", "b4", "c5", "e", 8),
        ])
        .unwrap();
        db
    }

    fn prepared(text: &str, schema: &Schema) -> PreparedAggQuery {
        PreparedAggQuery::new(&parse_agg_query(text).unwrap(), schema).unwrap()
    }

    #[test]
    fn certainty_rewriting_matches_repairs_on_db0() {
        let db = db0();
        let q = prepared("SUM(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let cert = certainty_rewriting(q.body.levels(), &BTreeSet::new());
        // Every repair of db0 satisfies the body, so the rewriting holds.
        let ev = Evaluator::new(&db);
        assert!(ev.eval_formula(&cert, &Default::default()));
        // Brute-force cross-check.
        let all_repairs_satisfy = db.repairs().all(|r| {
            let idx = crate::index::DbIndex::new(&r);
            !crate::forall::embeddings(q.body.levels(), &idx, &Default::default()).is_empty()
        });
        assert!(all_repairs_satisfy);

        // A query that is not certain: ask for products stocked in quantity 95
        // in James's town.
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db2 = DatabaseInstance::new(schema);
        db2.insert_all([
            fact!("Dealers", "James", "Boston"),
            fact!("Dealers", "James", "New York"),
            fact!("Stock", "Tesla Y", "New York", 95),
        ])
        .unwrap();
        let q2 = prepared(
            "SUM(y) <- Dealers('James', t), Stock(p, t, y)",
            db2.schema(),
        );
        let cert2 = certainty_rewriting(q2.body.levels(), &BTreeSet::new());
        let ev2 = Evaluator::new(&db2);
        assert!(!ev2.eval_formula(&cert2, &Default::default()));
    }

    #[test]
    fn forall_formula_selects_exactly_m0() {
        let db = db0();
        let q = prepared("SUM(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let phi = forall_embedding_formula(q.body.levels(), &BTreeSet::new());
        let ev = Evaluator::new(&db);
        let analysis = crate::forall::analyse(&q.body, &db);
        // Every operational ∀embedding satisfies the formula, and every
        // operational embedding that is not a ∀embedding falsifies it.
        for emb in &analysis.embeddings {
            let val: rcqa_logic::Valuation = emb.to_valuation();
            let by_formula = ev.eval_formula(&phi, &val);
            let by_operational = analysis.forall_embeddings.contains(emb);
            assert_eq!(by_formula, by_operational, "embedding {emb:?}");
        }
    }

    #[test]
    fn symbolic_glb_rewriting_agrees_with_exact_enumeration() {
        // Evaluating the nested AGGR[FOL] term with the active-domain
        // evaluator is exponential in the quantifier depth, so this
        // cross-check uses a trimmed version of db0.
        let mut db = DatabaseInstance::new(fig3_schema());
        db.insert_all([
            fact!("R", "a1", "b1"),
            fact!("R", "a1", "b2"),
            fact!("S", "b1", "c1", "d", 1),
            fact!("S", "b1", "c1", "d", 2),
            fact!("S", "b1", "c2", "d", 3),
            fact!("S", "b2", "c3", "d", 5),
        ])
        .unwrap();
        let q = prepared("SUM(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let rewriting = rewriting_for(&q, BoundKind::Glb).unwrap();
        let ev = Evaluator::new(&db);
        let rows = ev.eval_query(&rewriting.as_numerical_query());
        assert_eq!(rows.len(), 1);
        // Exact: the a1 block picks b1 or b2; b1 yields min(1,2) + 3 = 4,
        // b2 yields 5; the GLB is 4.
        assert_eq!(rows[0].1, Some(rat(4)));
        let exact = crate::exact::exact_bounds(&q, &db, 1 << 20).unwrap();
        assert_eq!(rows[0].1, exact.glb);
    }

    #[test]
    fn extremum_rewritings() {
        let db = db0();
        let q = prepared("MIN(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let glb = rewriting_for(&q, BoundKind::Glb).unwrap();
        let ev = Evaluator::new(&db);
        let rows = ev.eval_query(&glb.as_numerical_query());
        assert_eq!(rows[0].1, Some(rat(1)));

        let qmax = prepared("MAX(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let lub = rewriting_for(&qmax, BoundKind::Lub).unwrap();
        let rows = ev.eval_query(&lub.as_numerical_query());
        // The S-fact with value 8 has 'e' in the constant column, so it does
        // not embed; the plain maximum over embeddings is 7.
        assert_eq!(rows[0].1, Some(rat(7)));
    }

    #[test]
    fn no_rewriting_for_unsupported_cases() {
        let db = db0();
        let q = prepared("AVG(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        assert!(rewriting_for(&q, BoundKind::Glb).is_none());
        let q = prepared("SUM(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        assert!(rewriting_for(&q, BoundKind::Lub).is_none());
    }

    #[test]
    fn rewriting_size_is_polynomial_in_query_size() {
        // Chain queries R1(x1, x2), R2(x2, x3), ..., Rk(xk, xk+1) have acyclic
        // attack graphs; the rewriting size should grow polynomially (and the
        // certainty rewriting roughly quadratically).
        let mut sizes = Vec::new();
        for k in 1..=6usize {
            let mut schema = Schema::new();
            let mut atoms = Vec::new();
            for i in 0..k {
                schema.add_relation(format!("R{i}"), Signature::new(2, 1, [1]).unwrap());
                atoms.push(format!("R{i}(x{i}, x{})", i + 1));
            }
            let text = format!("SUM(x{k}) <- {}", atoms.join(", "));
            let q = PreparedAggQuery::new(&parse_agg_query(&text).unwrap(), &schema).unwrap();
            let rewriting = rewriting_for(&q, BoundKind::Glb).unwrap();
            sizes.push((q.body.len(), rewriting.certainty.size(), rewriting.size()));
        }
        // Certainty rewriting grows and stays within a quadratic envelope.
        for (n, cert_size, _) in &sizes {
            assert!(
                *cert_size <= 40 * n * n + 40,
                "certainty size {cert_size} for n={n}"
            );
        }
        // Total rewriting size is monotonically increasing in query size.
        for w in sizes.windows(2) {
            assert!(w[1].2 > w[0].2);
        }
    }
}
