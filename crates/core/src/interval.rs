//! Interval reasoning over range-consistent answers: HAVING trichotomy and
//! certain top-k.
//!
//! A range-consistent answer is an interval `[glb, lub]` bracketing the
//! query's value across all repairs. Comparisons against such an interval do
//! not yield booleans but a **trichotomy**: a HAVING condition is *certain*
//! (holds in every repair), *violated* (holds in none), or *possible*
//! (otherwise). Likewise `ORDER BY … LIMIT k` yields the rows **certainly**
//! in the top k — rows that outrank the competition in every repair — rather
//! than a guess at one repair's ordering.
//!
//! Both notions are conservative interval approximations: the answer set of
//! a group across repairs is a subset of `[glb, lub]` containing both
//! endpoints, so "certain"/"violated" verdicts are sound, while "possible"
//! may include conditions no repair actually realises (e.g. `= c` for a `c`
//! strictly inside an interval whose interior is never attained).

use crate::engine::GroupRange;
use rcqa_data::Rational;
use rcqa_query::CmpOp;
use std::cmp::Ordering;
use std::fmt;

/// The trichotomy of a HAVING condition evaluated against an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HavingStatus {
    /// The condition holds in **every** repair.
    Certain,
    /// The condition may hold in some repairs and fail in others (or the
    /// interval is `[⊥, ⊥]`, so no numeric comparison is meaningful).
    Possible,
    /// The condition holds in **no** repair.
    Violated,
}

impl fmt::Display for HavingStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HavingStatus::Certain => write!(f, "certain"),
            HavingStatus::Possible => write!(f, "possible"),
            HavingStatus::Violated => write!(f, "violated"),
        }
    }
}

/// Evaluates `agg op threshold` against the interval `[glb, lub]`.
///
/// `None` encodes the distinguished answer `⊥` (some repair yields the empty
/// multiset); a comparison against `⊥` is neither true nor false, so any
/// `None` bound yields [`HavingStatus::Possible`].
pub fn having_status(
    glb: Option<Rational>,
    lub: Option<Rational>,
    op: CmpOp,
    threshold: Rational,
) -> HavingStatus {
    let (Some(g), Some(l)) = (glb, lub) else {
        return HavingStatus::Possible;
    };
    let c = threshold;
    let (certain, violated) = match op {
        CmpOp::Lt => (l < c, g >= c),
        CmpOp::Le => (l <= c, g > c),
        CmpOp::Gt => (g > c, l <= c),
        CmpOp::Ge => (g >= c, l < c),
        // Equality is certain only for a degenerate interval pinned at `c`;
        // a `c` outside `[g, l]` is unattainable in every repair.
        CmpOp::Eq => (g == c && l == c, c < g || c > l),
        CmpOp::Ne => (c < g || c > l, g == c && l == c),
    };
    match (certain, violated) {
        (true, _) => HavingStatus::Certain,
        (_, true) => HavingStatus::Violated,
        _ => HavingStatus::Possible,
    }
}

/// Combines the statuses of a conjunction of HAVING conditions: violated if
/// **any** conjunct is violated, certain iff **all** are certain, possible
/// otherwise.
pub fn having_status_all(statuses: impl IntoIterator<Item = HavingStatus>) -> HavingStatus {
    let mut out = HavingStatus::Certain;
    for s in statuses {
        match s {
            HavingStatus::Violated => return HavingStatus::Violated,
            HavingStatus::Possible => out = HavingStatus::Possible,
            HavingStatus::Certain => {}
        }
    }
    out
}

fn bound_value(b: Option<crate::engine::BoundAnswer>) -> Option<Rational> {
    b.and_then(|b| b.value)
}

/// Compares two optional values under the requested direction; `None` (`⊥`)
/// sorts after every numeric value regardless of direction.
fn cmp_opt(a: Option<Rational>, b: Option<Rational>, descending: bool) -> Ordering {
    match (a, b) {
        (Some(x), Some(y)) => {
            if descending {
                y.cmp(&x)
            } else {
                x.cmp(&y)
            }
        }
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// The deterministic presentation order for `ORDER BY`: by `glb`, then
/// `lub` (both in the requested direction, `⊥` rows last), then group key
/// ascending. Returns the index permutation rather than moving the rows, so
/// callers can reorder any row-aligned data alongside.
///
/// Without a `LIMIT`, this is *only* a presentation order — the interval
/// semantics promise nothing about the relative order of overlapping
/// intervals across repairs.
pub fn order_rows(rows: &[GroupRange], descending: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&rows[a], &rows[b]);
        cmp_opt(bound_value(ra.glb), bound_value(rb.glb), descending)
            .then_with(|| cmp_opt(bound_value(ra.lub), bound_value(rb.lub), descending))
            .then_with(|| ra.key.cmp(&rb.key))
    });
    order
}

/// Whether `h` can strictly precede `g` in the ordering of **some** repair.
///
/// Value ties are broken by group key ascending (the same deterministic
/// tiebreak as [`order_rows`]), so for `key_h < key_g` an overlap at a single
/// point already lets `h` go first. Rows whose value is unknown (`⊥`
/// possible) conservatively precede everything.
fn possibly_precedes(h: &GroupRange, g: &GroupRange, descending: bool) -> bool {
    let (Some(h_glb), Some(h_lub)) = (bound_value(h.glb), bound_value(h.lub)) else {
        return true;
    };
    let (Some(g_glb), Some(g_lub)) = (bound_value(g.glb), bound_value(g.lub)) else {
        return true;
    };
    let wins_ties = h.key < g.key;
    if descending {
        if wins_ties {
            h_lub >= g_glb
        } else {
            h_lub > g_glb
        }
    } else if wins_ties {
        h_glb <= g_lub
    } else {
        h_glb < g_lub
    }
}

/// The rows **certainly** in the top `k` under the requested direction: a
/// row qualifies iff fewer than `k` other rows can possibly precede it in
/// any repair. Returns their indices in [`order_rows`] order; at most `k`
/// rows qualify ("possibly precedes" holds in at least one direction for
/// every pair, so certain rows form a chain). Rows with a `⊥` bound never
/// qualify.
///
/// Fewer than `k` rows may qualify — the honest answer when intervals
/// overlap is that the remaining top-k slots are not certain for anyone.
pub fn certain_topk(rows: &[GroupRange], k: usize, descending: bool) -> Vec<usize> {
    order_rows(rows, descending)
        .into_iter()
        .filter(|&i| {
            let g = &rows[i];
            if bound_value(g.glb).is_none() || bound_value(g.lub).is_none() {
                return false;
            }
            let preceders = rows
                .iter()
                .enumerate()
                .filter(|&(j, h)| j != i && possibly_precedes(h, g, descending))
                .count();
            preceders < k
        })
        .collect()
}

/// Whether a patch from `old` to `new` (same keys, pointwise; some intervals
/// changed) provably preserves certain-top-k **membership for every k**.
///
/// [`certain_topk`] membership is a function of the pairwise
/// [`possibly_precedes`] relation: a row qualifies at `k` iff fewer than `k`
/// rows possibly precede it. If for every changed row the relation to every
/// other row is unchanged in both directions, each row's preceder count — and
/// hence membership at every `k` — is identical, so a cached selection can be
/// re-used (with the changed rows' fresh intervals) instead of recomputed.
/// Conservative: returns `false` whenever the row sets are not key-aligned,
/// which the caller must treat as "membership could change".
pub fn topk_selection_preserved(old: &[GroupRange], new: &[GroupRange], descending: bool) -> bool {
    if old.len() != new.len() {
        return false;
    }
    if old.iter().zip(new).any(|(o, n)| o.key != n.key) {
        return false;
    }
    let changed: Vec<usize> = (0..old.len()).filter(|&i| old[i] != new[i]).collect();
    changed.iter().all(|&i| {
        (0..old.len()).filter(|&j| j != i).all(|j| {
            possibly_precedes(&old[i], &old[j], descending)
                == possibly_precedes(&new[i], &new[j], descending)
                && possibly_precedes(&old[j], &old[i], descending)
                    == possibly_precedes(&new[j], &new[i], descending)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BoundAnswer, Method};
    use rcqa_data::{rat, Value};

    fn row(key: &str, glb: Option<i64>, lub: Option<i64>) -> GroupRange {
        let bound = |v: Option<i64>| {
            Some(BoundAnswer {
                value: v.map(rat),
                method: Method::Rewriting,
            })
        };
        GroupRange {
            key: vec![Value::text(key)],
            glb: bound(glb),
            lub: bound(lub),
        }
    }

    #[test]
    fn having_trichotomy_per_operator() {
        use HavingStatus::*;
        let s = |g: i64, l: i64, op, c: i64| having_status(Some(rat(g)), Some(rat(l)), op, rat(c));
        // [5, 10] vs thresholds around and inside the interval.
        assert_eq!(s(5, 10, CmpOp::Lt, 11), Certain);
        assert_eq!(s(5, 10, CmpOp::Lt, 10), Possible);
        assert_eq!(s(5, 10, CmpOp::Lt, 5), Violated);
        assert_eq!(s(5, 10, CmpOp::Le, 10), Certain);
        assert_eq!(s(5, 10, CmpOp::Le, 4), Violated);
        assert_eq!(s(5, 10, CmpOp::Gt, 4), Certain);
        assert_eq!(s(5, 10, CmpOp::Gt, 5), Possible);
        assert_eq!(s(5, 10, CmpOp::Gt, 10), Violated);
        assert_eq!(s(5, 10, CmpOp::Ge, 5), Certain);
        assert_eq!(s(5, 10, CmpOp::Ge, 11), Violated);
        assert_eq!(s(7, 7, CmpOp::Eq, 7), Certain);
        assert_eq!(s(5, 10, CmpOp::Eq, 7), Possible);
        assert_eq!(s(5, 10, CmpOp::Eq, 11), Violated);
        assert_eq!(s(5, 10, CmpOp::Ne, 11), Certain);
        assert_eq!(s(5, 10, CmpOp::Ne, 7), Possible);
        assert_eq!(s(7, 7, CmpOp::Ne, 7), Violated);
        // ⊥ bounds are never decidable.
        assert_eq!(having_status(None, None, CmpOp::Lt, rat(1)), Possible);
    }

    #[test]
    fn conjunction_combiner() {
        use HavingStatus::*;
        assert_eq!(having_status_all([]), Certain);
        assert_eq!(having_status_all([Certain, Certain]), Certain);
        assert_eq!(having_status_all([Certain, Possible]), Possible);
        assert_eq!(having_status_all([Possible, Violated, Certain]), Violated);
    }

    #[test]
    fn order_rows_is_deterministic_with_bottom_last() {
        let rows = vec![
            row("a", Some(5), Some(7)),
            row("b", None, None),
            row("c", Some(10), Some(10)),
            row("d", Some(5), Some(6)),
        ];
        assert_eq!(order_rows(&rows, false), vec![3, 0, 2, 1]);
        assert_eq!(order_rows(&rows, true), vec![2, 0, 3, 1]);
    }

    #[test]
    fn certain_topk_disjoint_and_overlapping() {
        // Disjoint intervals: the full prefix is certain.
        let rows = vec![
            row("a", Some(10), Some(10)),
            row("b", Some(8), Some(9)),
            row("c", Some(1), Some(2)),
        ];
        assert_eq!(certain_topk(&rows, 1, true), vec![0]);
        assert_eq!(certain_topk(&rows, 2, true), vec![0, 1]);
        assert_eq!(certain_topk(&rows, 3, true), vec![0, 1, 2]);
        // Ascending direction flips the ranking.
        assert_eq!(certain_topk(&rows, 1, false), vec![2]);

        // Overlap between b and c: only the clear winner is certain, and
        // the second slot is honestly unclaimed at k = 2.
        let rows = vec![
            row("a", Some(10), Some(10)),
            row("b", Some(5), Some(7)),
            row("c", Some(6), Some(8)),
        ];
        assert_eq!(certain_topk(&rows, 1, true), vec![0]);
        assert_eq!(certain_topk(&rows, 2, true), vec![0]);
        assert_eq!(certain_topk(&rows, 3, true), vec![0, 2, 1]);
    }

    #[test]
    fn topk_preservation_tracks_pairwise_precedence() {
        let old = vec![
            row("a", Some(10), Some(10)),
            row("b", Some(5), Some(7)),
            row("c", Some(1), Some(2)),
        ];
        // b moves within its gap to a's and c's intervals: no pair flips.
        let mut new = old.clone();
        new[1] = row("b", Some(4), Some(8));
        assert!(topk_selection_preserved(&old, &new, true));
        assert!(topk_selection_preserved(&old, &new, false));
        // b now reaches past a: it can precede a in some repair where it
        // could not before, so membership could change. (An endpoint tie at
        // exactly 10 would still lose to a's key tiebreak — no flip.)
        new[1] = row("b", Some(5), Some(10));
        assert!(topk_selection_preserved(&old, &new, true));
        new[1] = row("b", Some(5), Some(11));
        assert!(!topk_selection_preserved(&old, &new, true));
        // A changed unrelated pair stays preserved even when another row
        // changed too (only changed rows are re-checked against the rest).
        new[1] = row("b", Some(6), Some(7));
        assert!(topk_selection_preserved(&old, &new, true));
        // Key misalignment (births/retractions) is never preserved.
        assert!(!topk_selection_preserved(&old, &new[..2], true));
        let mut renamed = old.clone();
        renamed[2] = row("z", Some(1), Some(2));
        assert!(!topk_selection_preserved(&old, &renamed, true));
        // A row changing to ⊥ starts preceding everything: not preserved.
        new[1] = row("b", None, None);
        assert!(!topk_selection_preserved(&old, &new, true));
    }

    #[test]
    fn bottom_rows_are_never_certain_but_block_nobody_below_them() {
        let rows = vec![row("a", Some(10), Some(10)), row("b", None, None)];
        // The ⊥ row conservatively precedes everything, so it consumes a
        // possible slot; a is only certain once k covers that possibility.
        assert_eq!(certain_topk(&rows, 1, true), Vec::<usize>::new());
        assert_eq!(certain_topk(&rows, 2, true), vec![0]);
    }
}
