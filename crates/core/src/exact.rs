//! Exact range-consistent answers by exhaustive repair enumeration.
//!
//! This is the ground-truth baseline: it literally implements the definition
//! of `GLB-CQA` / `LUB-CQA` from Section 1 of the paper by enumerating every
//! repair, evaluating the aggregation query on each, and taking the minimum
//! and maximum. Its cost is exponential in the number of inconsistent blocks,
//! so it is only usable on small instances (tests, counterexamples, and the
//! baseline arm of the benchmarks).

use crate::error::CoreError;
use crate::forall::{embeddings, Binding};
use crate::glb::term_value;
use crate::index::DbIndex;
use crate::prepared::PreparedAggQuery;
use rcqa_data::{DatabaseInstance, Rational};

/// The exact lower and upper range-consistent bounds of a closed aggregation
/// query. `None` encodes the distinguished answer `⊥` (some repair yields the
/// empty multiset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactBounds {
    /// The greatest lower bound across repairs, or `None` for `⊥`.
    pub glb: Option<Rational>,
    /// The least upper bound across repairs, or `None` for `⊥`.
    pub lub: Option<Rational>,
    /// Number of repairs enumerated.
    pub repairs: u128,
    /// Whether **some** repair had at least one (predicate-satisfying)
    /// embedding — equivalently, whether the full instance has one, since an
    /// embedding picks at most one fact per block and therefore survives
    /// into some repair. `false` means the group/query is not even a
    /// possible answer under the predicates: callers drop such groups rather
    /// than report a vacuous `⊥` row.
    pub satisfiable: bool,
}

/// Computes the exact bounds of a closed aggregation query by enumerating all
/// repairs of `db`.
///
/// Fails with [`CoreError::FallbackUnavailable`] if the number of repairs
/// exceeds `max_repairs`.
pub fn exact_bounds(
    query: &PreparedAggQuery,
    db: &DatabaseInstance,
    max_repairs: u128,
) -> Result<ExactBounds, CoreError> {
    exact_bounds_filtered(query, db, max_repairs, &[])
}

/// [`exact_bounds`] with comparison predicates applied as **embedding
/// filters**: in each repair, only embeddings whose binding of each
/// predicate's variable satisfies it contribute to the aggregate. A repair
/// whose satisfying embeddings are empty yields `⊥`, exactly as an empty
/// join would.
///
/// This is the ground truth the restricted-index path is checked against,
/// and the only sound route for **residual** predicates (variables at no key
/// position). Predicate variables must be non-free variables of the body —
/// free variables are constants after group substitution and must be
/// filtered at the group level instead.
pub fn exact_bounds_filtered(
    query: &PreparedAggQuery,
    db: &DatabaseInstance,
    max_repairs: u128,
    predicates: &[rcqa_query::VarPredicate],
) -> Result<ExactBounds, CoreError> {
    debug_assert!(
        query.normalised.body.free_vars().is_empty(),
        "exact_bounds expects a closed query; substitute group constants first"
    );
    let count = db.repair_count().unwrap_or(u128::MAX);
    if count > max_repairs {
        return Err(CoreError::FallbackUnavailable(format!(
            "instance has {count} repairs, more than the configured maximum {max_repairs}"
        )));
    }
    let agg = query.original.normalise_count().agg;
    let term = &query.normalised.term;
    let atoms = query.body.atoms_in_order();
    // Reuse the level machinery for enumeration inside each repair by building
    // a tiny index per repair (repairs are consistent, blocks are singletons).
    let levels: Vec<crate::prepared::Level> = query.body.levels().to_vec();
    let mut glb: Option<Rational> = None;
    let mut lub: Option<Rational> = None;
    let mut bottom = false;
    let mut satisfiable = false;
    let mut repairs = 0u128;
    for repair in db.repairs() {
        repairs += 1;
        let index = DbIndex::new(&repair);
        let mut embs: Vec<Binding> = if levels.is_empty() && !atoms.is_empty() {
            // Cyclic attack graph: fall back to a naive join over atoms in
            // query order (levels are empty in that case).
            let pseudo_levels = pseudo_levels(query, &repair);
            embeddings(&pseudo_levels, &index, &Binding::new())
        } else {
            embeddings(&levels, &index, &Binding::new())
        };
        if !predicates.is_empty() {
            embs.retain(|b| {
                predicates.iter().all(|p| {
                    b.get(&p.var)
                        .map(|v| p.holds_value(v))
                        .expect("predicate variables occur in the body")
                })
            });
        }
        if embs.is_empty() {
            // ⊥ decides both bounds, but satisfiability (does *any* repair
            // have a satisfying embedding?) may still be open — keep
            // scanning until it is settled.
            bottom = true;
            if satisfiable {
                break;
            }
            continue;
        }
        satisfiable = true;
        if bottom {
            break;
        }
        let values: Vec<Rational> = embs.iter().map(|b| term_value(term, b)).collect();
        let value = agg
            .apply(&values)
            .expect("non-empty multiset aggregates to a value");
        glb = Some(match glb {
            None => value,
            Some(g) => g.min(value),
        });
        lub = Some(match lub {
            None => value,
            Some(l) => l.max(value),
        });
    }
    if bottom {
        Ok(ExactBounds {
            glb: None,
            lub: None,
            repairs,
            satisfiable,
        })
    } else {
        Ok(ExactBounds {
            glb,
            lub,
            repairs,
            satisfiable,
        })
    }
}

/// Builds a level structure in plain query order (used when the attack graph
/// is cyclic and no topological sort exists); only the fields used by the
/// embedding enumerator are meaningful.
fn pseudo_levels(query: &PreparedAggQuery, db: &DatabaseInstance) -> Vec<crate::prepared::Level> {
    query
        .normalised
        .body
        .atoms()
        .iter()
        .map(|atom| crate::prepared::Level {
            atom: atom.clone(),
            key_len: db
                .schema()
                .signature(atom.relation())
                .map(|s| s.key_len())
                .unwrap_or(atom.arity()),
            new_key_vars: Vec::new(),
            new_other_vars: Vec::new(),
            prefix_vars: Vec::new(),
        })
        .collect()
}

/// Exact bounds per group for a query with free variables: every group key
/// appearing in some embedding of the body is reported.
pub fn exact_bounds_by_group(
    query: &PreparedAggQuery,
    db: &DatabaseInstance,
    max_repairs: u128,
) -> Result<Vec<(Vec<rcqa_data::Value>, ExactBounds)>, CoreError> {
    exact_bounds_by_group_filtered(query, db, max_repairs, &[])
}

/// [`exact_bounds_by_group`] with comparison predicates: predicates on free
/// (GROUP BY) variables filter the candidate group keys — a group's key is
/// definite, so this is plain evaluation — and the rest apply as embedding
/// filters inside each group's exhaustive enumeration
/// ([`exact_bounds_filtered`]). The brute-force oracle the engine's
/// predicate paths are tested against.
pub fn exact_bounds_by_group_filtered(
    query: &PreparedAggQuery,
    db: &DatabaseInstance,
    max_repairs: u128,
    predicates: &[rcqa_query::VarPredicate],
) -> Result<Vec<(Vec<rcqa_data::Value>, ExactBounds)>, CoreError> {
    let free = query.normalised.body.free_vars().to_vec();
    let (on_free, on_bound): (Vec<_>, Vec<_>) = predicates
        .iter()
        .cloned()
        .partition(|p| free.contains(&p.var));
    let groups = crate::engine::candidate_groups(query, db);
    let mut out = Vec::new();
    for key in groups {
        let keep = on_free.iter().all(|p| {
            let pos = free
                .iter()
                .position(|v| *v == p.var)
                .expect("free predicate variable is a free variable");
            p.holds_value(&key[pos])
        });
        if !keep {
            continue;
        }
        let closed = crate::engine::substitute_group(query, &key)?;
        let bounds = exact_bounds_filtered(&closed, db, max_repairs, &on_bound)?;
        // An open-query group with no satisfying embedding anywhere is not
        // even a possible answer under the predicates — it has no row. A
        // closed query always answers with its single row (`[⊥, ⊥]` then).
        if bounds.satisfiable || key.is_empty() {
            out.push((key, bounds));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    #[test]
    fn introduction_example_bounds() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let bounds = exact_bounds(&q, &db, 1 << 20).unwrap();
        assert_eq!(bounds.repairs, 8);
        assert_eq!(bounds.glb, Some(rat(70)));
        // Largest total: Smith in New York with Tesla Y at 96 -> 96; or Boston
        // with 40 + 35 = 75; the maximum over repairs is 96.
        assert_eq!(bounds.lub, Some(rat(96)));
    }

    #[test]
    fn bottom_when_some_repair_falsifies_query() {
        let db = db_stock();
        // James only deals in Boston; ask about New York stock of Tesla X:
        // there is none, so every repair falsifies the query -> ⊥.
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(y) <- Dealers('James', t), Stock('Tesla Z', t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let bounds = exact_bounds(&q, &db, 1 << 20).unwrap();
        assert_eq!(bounds.glb, None);
        assert_eq!(bounds.lub, None);
    }

    #[test]
    fn repair_limit_enforced() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        assert!(matches!(
            exact_bounds(&q, &db, 4),
            Err(CoreError::FallbackUnavailable(_))
        ));
    }

    #[test]
    fn count_and_min_max() {
        let db = db_stock();
        let q = PreparedAggQuery::new(
            &parse_agg_query("COUNT(*) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let bounds = exact_bounds(&q, &db, 1 << 20).unwrap();
        // Smith in Boston joins 2 products, in New York 1 product.
        assert_eq!(bounds.glb, Some(rat(1)));
        assert_eq!(bounds.lub, Some(rat(2)));

        let q = PreparedAggQuery::new(
            &parse_agg_query("MIN(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let bounds = exact_bounds(&q, &db, 1 << 20).unwrap();
        assert_eq!(bounds.glb, Some(rat(35)));
        assert_eq!(bounds.lub, Some(rat(96)));
    }
}
