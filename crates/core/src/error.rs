//! Error types for the range-CQA engine.

use rcqa_data::DataError;
use rcqa_query::QueryError;
use std::fmt;

/// Errors raised by the range-CQA engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The query failed validation against the schema.
    Query(QueryError),
    /// A data-layer error.
    Data(DataError),
    /// The attack graph of the query body is cyclic, so the requested bound is
    /// not expressible in AGGR\[FOL\] (Theorem 5.5) and no rewriting exists.
    CyclicAttackGraph,
    /// The aggregate operator lacks the properties required by Theorem 6.1 /
    /// Theorem 7.11, so no rewriting is known for the requested bound.
    UnsupportedAggregate {
        /// Human-readable explanation.
        reason: String,
    },
    /// The exact (repair-enumeration) fallback was required but disabled, or
    /// the instance has too many repairs to enumerate.
    FallbackUnavailable(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::CyclicAttackGraph => {
                write!(
                    f,
                    "the attack graph is cyclic: not expressible in AGGR[FOL]"
                )
            }
            CoreError::UnsupportedAggregate { reason } => {
                write!(f, "unsupported aggregate for rewriting: {reason}")
            }
            CoreError::FallbackUnavailable(msg) => write!(f, "exact fallback unavailable: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}
