//! Embeddings, certainty checking, and ∀embeddings (Section 4 of the paper).
//!
//! An *embedding* of a self-join-free conjunction `q(ū)` in a database
//! instance is a valuation of `ū` mapping every atom to a fact. For an
//! acyclic attack graph with topological sort `(F_1, ..., F_n)`, a
//! *ℓ-∀embedding* additionally requires, level by level, that
//! `F_ℓ ∧ ... ∧ F_n` is certain (true in every repair) once the variables of
//! `F_1, ..., F_{ℓ-1}` and `Key(F_ℓ)` are fixed. The set of ∀embeddings is the
//! basis of the GLB computation (Lemma 6.3 and Corollary 6.4).

use crate::index::DbIndex;
use crate::prepared::{Level, PreparedBody};
use rcqa_data::{DatabaseInstance, Fact, Value};
use rcqa_query::{Atom, Term, Var};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A (partial) valuation of query variables.
pub type Binding = BTreeMap<Var, Value>;

/// Tries to match `fact` against `atom` under `binding`; on success returns
/// the binding extended with the newly bound variables.
pub fn match_fact(atom: &Atom, fact: &Fact, binding: &Binding) -> Option<Binding> {
    let mut extended = binding.clone();
    for (p, term) in atom.terms().iter().enumerate() {
        let actual = fact.arg(p);
        match term {
            Term::Const(c) => {
                if c != actual {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(bound) => {
                    if bound != actual {
                        return None;
                    }
                }
                None => {
                    extended.insert(v.clone(), actual.clone());
                }
            },
        }
    }
    Some(extended)
}

/// The key pattern of an atom under a binding: one entry per key position,
/// `Some(v)` when the position is a constant or a bound variable.
fn key_pattern(atom: &Atom, key_len: usize, binding: &Binding) -> Vec<Option<Value>> {
    (0..key_len)
        .map(|p| match atom.term(p) {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => binding.get(v).cloned(),
        })
        .collect()
}

/// Certainty checker for the suffixes `F_ℓ ∧ ... ∧ F_n` of a topologically
/// sorted acyclic query, with memoisation on the relevant part of the binding.
pub struct CertaintyChecker<'a> {
    levels: &'a [Level],
    index: &'a DbIndex,
    /// For each level, the variables of `F_ℓ, ..., F_n` (only these influence
    /// the answer, so they form the memo key).
    relevant_vars: Vec<Vec<Var>>,
    memo: RefCell<HashMap<(usize, Vec<Option<Value>>), bool>>,
}

impl<'a> CertaintyChecker<'a> {
    /// Creates a checker for the given levels (topological order) and index.
    pub fn new(levels: &'a [Level], index: &'a DbIndex) -> CertaintyChecker<'a> {
        let n = levels.len();
        let mut relevant_vars: Vec<Vec<Var>> = vec![Vec::new(); n + 1];
        let mut acc: BTreeSet<Var> = BTreeSet::new();
        for l in (0..n).rev() {
            acc.extend(levels[l].atom.vars());
            relevant_vars[l] = acc.iter().cloned().collect();
        }
        CertaintyChecker {
            levels,
            index,
            relevant_vars,
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// Returns `true` if `F_{level+1} ∧ ... ∧ F_n` (0-based `level`) holds in
    /// every repair of the indexed database, for the given partial binding.
    ///
    /// `certain_from(0, ∅)` decides `CERTAINTY(q)` for the whole query.
    pub fn certain_from(&self, level: usize, binding: &Binding) -> bool {
        if level >= self.levels.len() {
            return true;
        }
        let key: Vec<Option<Value>> = self.relevant_vars[level]
            .iter()
            .map(|v| binding.get(v).cloned())
            .collect();
        if let Some(&cached) = self.memo.borrow().get(&(level, key.clone())) {
            return cached;
        }
        let result = self.certain_uncached(level, binding);
        self.memo.borrow_mut().insert((level, key), result);
        result
    }

    fn certain_uncached(&self, level: usize, binding: &Binding) -> bool {
        let lvl = &self.levels[level];
        let Some(rel) = self.index.relation(lvl.atom.relation()) else {
            return false;
        };
        let pattern = key_pattern(&lvl.atom, lvl.key_len, binding);
        for block in rel.blocks_matching(&pattern) {
            let mut all_ok = true;
            for fact in &block.facts {
                match match_fact(&lvl.atom, fact, binding) {
                    Some(extended) => {
                        if !self.certain_from(level + 1, &extended) {
                            all_ok = false;
                            break;
                        }
                    }
                    None => {
                        all_ok = false;
                        break;
                    }
                }
            }
            if all_ok {
                return true;
            }
        }
        false
    }
}

/// Enumerates all embeddings of the body (atoms in topological order) in the
/// indexed database, starting from an initial binding.
pub fn embeddings(levels: &[Level], index: &DbIndex, initial: &Binding) -> Vec<Binding> {
    let mut out = Vec::new();
    embed_rec(levels, index, 0, initial.clone(), &mut out);
    out
}

fn embed_rec(levels: &[Level], index: &DbIndex, level: usize, binding: Binding, out: &mut Vec<Binding>) {
    if level >= levels.len() {
        out.push(binding);
        return;
    }
    let lvl = &levels[level];
    let Some(rel) = index.relation(lvl.atom.relation()) else {
        return;
    };
    let pattern = key_pattern(&lvl.atom, lvl.key_len, &binding);
    for block in rel.blocks_matching(&pattern) {
        for fact in &block.facts {
            if let Some(extended) = match_fact(&lvl.atom, fact, &binding) {
                embed_rec(levels, index, level + 1, extended, out);
            }
        }
    }
}

/// The result of analysing a (closed) prepared body against a database
/// instance.
#[derive(Clone, Debug)]
pub struct ForallAnalysis {
    /// Whether `∃ū q(ū)` is true in every repair (the `0-∀embedding` exists).
    pub certain: bool,
    /// All embeddings of the body.
    pub embeddings: Vec<Binding>,
    /// All ∀embeddings of the body (a subset of `embeddings`; empty when
    /// `certain` is false).
    pub forall_embeddings: Vec<Binding>,
}

/// Computes embeddings and ∀embeddings of an acyclic prepared body (with no
/// free variables) in `db`.
///
/// # Panics
/// Panics if the body's attack graph is cyclic (the notion of ∀embedding is
/// defined relative to a topological sort).
pub fn analyse(body: &PreparedBody, db: &DatabaseInstance) -> ForallAnalysis {
    let index = DbIndex::new(db);
    analyse_with_index(body, &index)
}

/// Like [`analyse`], but reuses a prebuilt [`DbIndex`].
pub fn analyse_with_index(body: &PreparedBody, index: &DbIndex) -> ForallAnalysis {
    assert!(
        body.is_acyclic(),
        "∀embeddings are only defined for acyclic attack graphs"
    );
    debug_assert!(
        body.body().free_vars().is_empty(),
        "free variables must be substituted before analysis"
    );
    let levels = body.levels();
    let checker = CertaintyChecker::new(levels, index);
    let certain = checker.certain_from(0, &Binding::new());
    let embeddings = embeddings(levels, index, &Binding::new());
    let forall_embeddings = if certain {
        embeddings
            .iter()
            .filter(|theta| is_forall_embedding(levels, &checker, theta))
            .cloned()
            .collect()
    } else {
        Vec::new()
    };
    ForallAnalysis {
        certain,
        embeddings,
        forall_embeddings,
    }
}

/// Checks the level-by-level certainty conditions of the ∀embedding
/// definition for a full embedding `theta`.
fn is_forall_embedding(levels: &[Level], checker: &CertaintyChecker<'_>, theta: &Binding) -> bool {
    for (l, lvl) in levels.iter().enumerate() {
        // Restriction of theta to ū_{ℓ-1} ∪ x̄_ℓ.
        let mut restricted = Binding::new();
        if l > 0 {
            for v in &levels[l - 1].prefix_vars {
                if let Some(val) = theta.get(v) {
                    restricted.insert(v.clone(), val.clone());
                }
            }
        }
        for v in &lvl.new_key_vars {
            if let Some(val) = theta.get(v) {
                restricted.insert(v.clone(), val.clone());
            }
        }
        if !checker.certain_from(l, &restricted) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedAggQuery;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;

    /// The database instance of Fig. 1.
    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    /// The database instance db0 of Fig. 3.
    fn db0() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("R", "a1", "b1"),
            fact!("R", "a1", "b2"),
            fact!("R", "a2", "b2"),
            fact!("R", "a2", "b3"),
            fact!("R", "a3", "b4"),
            fact!("S", "b1", "c1", "d", 1),
            fact!("S", "b1", "c1", "d", 2),
            fact!("S", "b1", "c2", "d", 3),
            fact!("S", "b2", "c3", "d", 5),
            fact!("S", "b2", "c3", "d", 6),
            fact!("S", "b3", "c4", "d", 5),
            fact!("S", "b4", "c5", "d", 7),
            fact!("S", "b4", "c5", "e", 8),
        ])
        .unwrap();
        db
    }

    fn prepared(datalog: &str, schema: &Schema) -> PreparedAggQuery {
        PreparedAggQuery::new(&parse_agg_query(datalog).unwrap(), schema).unwrap()
    }

    #[test]
    fn example_4_1_forall_embeddings() {
        // q0 = Dealers('James', t), Stock(p, t, 35): true in every repair.
        let db = db_stock();
        let q = prepared("COUNT(*) <- Dealers('James', t), Stock(p, t, 35)", db.schema());
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        // Embeddings: (Boston, Tesla X) and (Boston, Tesla Y).
        assert_eq!(analysis.embeddings.len(), 2);
        // Only (Boston, Tesla Y) is a ∀embedding (Example 4.1): the Tesla X
        // block also contains quantity 40.
        assert_eq!(analysis.forall_embeddings.len(), 1);
        let theta = &analysis.forall_embeddings[0];
        assert_eq!(theta.get(&Var::new("t")), Some(&Value::text("Boston")));
        assert_eq!(theta.get(&Var::new("p")), Some(&Value::text("Tesla Y")));
    }

    #[test]
    fn fig_3_forall_embeddings_m0() {
        // g0() = SUM(r) <- R(x, y), S(y, z, 'd', r) over db0: the set M0 of
        // ∀embeddings has exactly the 8 rows of Fig. 3.
        let db = db0();
        let q = prepared("SUM(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        // There are 9 embeddings in total; (a3, b4, c5, 7) is not a
        // ∀embedding because of the 'e' value in the last S-row.
        assert_eq!(analysis.embeddings.len(), 9);
        assert_eq!(analysis.forall_embeddings.len(), 8);
        let m0: BTreeSet<(String, String, String, i64)> = analysis
            .forall_embeddings
            .iter()
            .map(|b| {
                (
                    b[&Var::new("x")].to_string(),
                    b[&Var::new("y")].to_string(),
                    b[&Var::new("z")].to_string(),
                    b[&Var::new("r")].as_num().unwrap().numerator() as i64,
                )
            })
            .collect();
        let expected: BTreeSet<(String, String, String, i64)> = [
            ("a1", "b1", "c1", 1),
            ("a1", "b1", "c1", 2),
            ("a1", "b1", "c2", 3),
            ("a1", "b2", "c3", 5),
            ("a1", "b2", "c3", 6),
            ("a2", "b2", "c3", 5),
            ("a2", "b2", "c3", 6),
            ("a2", "b3", "c4", 5),
        ]
        .iter()
        .map(|(a, b, c, d)| (a.to_string(), b.to_string(), c.to_string(), *d))
        .collect();
        assert_eq!(m0, expected);
        // No ∀embedding maps x to a3.
        assert!(!analysis
            .forall_embeddings
            .iter()
            .any(|b| b[&Var::new("x")] == Value::text("a3")));
    }

    #[test]
    fn certainty_detects_falsifying_repair() {
        // Dealers('Smith', t), Stock('Tesla Z', t, q): Tesla Z is never in
        // stock, so no repair satisfies the query.
        let db = db_stock();
        let q = prepared(
            "COUNT(*) <- Dealers('Smith', t), Stock('Tesla Z', t, q)",
            db.schema(),
        );
        let analysis = analyse(&q.body, &db);
        assert!(!analysis.certain);
        assert!(analysis.embeddings.is_empty());
        assert!(analysis.forall_embeddings.is_empty());

        // Dealers('Smith', t), Stock(p, t, y): Smith's town is uncertain, but
        // both Boston and New York stock something, so the query is certain.
        let q = prepared("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)", db.schema());
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        // No embedding through Smith/Boston or Smith/New York is a
        // ∀embedding at level 1 (Smith's town is uncertain), except... none.
        // Level-1 check fixes only x̄_1 = ∅ (the key 'Smith' is a constant),
        // so certainty of the whole query from level 0 is what matters; each
        // embedding also needs level-wise checks.
        assert_eq!(analysis.embeddings.len(), 5);
    }

    #[test]
    fn match_fact_handles_repeats_and_constants() {
        let atom = Atom::new(
            "T",
            vec![Term::var("x"), Term::var("x"), Term::constant(3)],
        );
        let f_ok = fact!("T", "a", "a", 3);
        let f_bad_repeat = fact!("T", "a", "b", 3);
        let f_bad_const = fact!("T", "a", "a", 4);
        assert!(match_fact(&atom, &f_ok, &Binding::new()).is_some());
        assert!(match_fact(&atom, &f_bad_repeat, &Binding::new()).is_none());
        assert!(match_fact(&atom, &f_bad_const, &Binding::new()).is_none());
        // Pre-bound variable must agree.
        let mut b = Binding::new();
        b.insert(Var::new("x"), Value::text("z"));
        assert!(match_fact(&atom, &f_ok, &b).is_none());
        // Numeric values round-trip.
        let atom = Atom::new("U", vec![Term::var("r")]);
        let f = fact!("U", 7);
        let m = match_fact(&atom, &f, &Binding::new()).unwrap();
        assert_eq!(m[&Var::new("r")].as_num(), Some(rat(7)));
    }

    #[test]
    fn empty_relation_makes_query_uncertain() {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(2, 1, [1]).unwrap());
        let db = DatabaseInstance::new(schema.clone());
        let q = prepared("SUM(r) <- R(x, y), S(y, r)", &schema);
        let analysis = analyse(&q.body, &db);
        assert!(!analysis.certain);
        assert!(analysis.embeddings.is_empty());
    }
}
