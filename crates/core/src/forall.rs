//! Embeddings, certainty checking, and ∀embeddings (Section 4 of the paper).
//!
//! An *embedding* of a self-join-free conjunction `q(ū)` in a database
//! instance is a valuation of `ū` mapping every atom to a fact. For an
//! acyclic attack graph with topological sort `(F_1, ..., F_n)`, a
//! *ℓ-∀embedding* additionally requires, level by level, that
//! `F_ℓ ∧ ... ∧ F_n` is certain (true in every repair) once the variables of
//! `F_1, ..., F_{ℓ-1}` and `Key(F_ℓ)` are fixed. The set of ∀embeddings is the
//! basis of the GLB computation (Lemma 6.3 and Corollary 6.4).
//!
//! ## Representation
//!
//! Query variables are interned into dense *slots* ([`VarTable`]), and —
//! matching the columnar index — **values are interned into dense `u32` ids**
//! (see [`rcqa_data::interner`]). The join core works entirely on ids: a
//! partial valuation is a flat `Vec<u32>` (with [`UNBOUND_ID`] for unbound
//! slots), atoms are pre-resolved to [`CompiledLevels`] and then to id-level
//! terms against a concrete index's interner, and matching a fact is a few
//! `u32` column reads and slot writes with trail-based backtracking — no
//! `Value` is cloned, hashed, or compared on the hot path. Certainty
//! memoisation keys are id vectors for the same reason.
//!
//! Values materialise only at the boundary: the public [`Binding`] type
//! (a `Vec<Option<Value>>` slot vector plus its shared variable table, with
//! map-like by-variable access) is what analysis results carry, and the id
//! core's outputs are converted into it once per group — after the join and
//! the ∀embedding filter have already run on ids.

use crate::index::{DbIndex, FactColumns, IndexedBlock};
use crate::prepared::{Level, PreparedBody};
use rcqa_data::{DatabaseInstance, Fact, Value, ValueInterner, UNBOUND_ID};
use rcqa_query::{Atom, Term, Var};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An interning table mapping the variables of a query body to dense slot
/// indices. Built once per prepared body and shared (via `Arc`) by every
/// [`Binding`] produced from it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarTable {
    vars: Vec<Var>,
    slots: HashMap<Var, usize>,
}

impl VarTable {
    /// An empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Collects every variable occurring in the atoms of `levels`, in
    /// first-occurrence order (deterministic for a fixed level list).
    pub fn from_levels(levels: &[Level]) -> VarTable {
        let mut table = VarTable::new();
        for level in levels {
            for term in level.atom.terms() {
                if let Some(v) = term.as_var() {
                    table.intern(v);
                }
            }
        }
        table
    }

    /// Interns a variable, returning its slot.
    fn intern(&mut self, v: &Var) -> usize {
        if let Some(&s) = self.slots.get(v) {
            return s;
        }
        let s = self.vars.len();
        self.vars.push(v.clone());
        self.slots.insert(v.clone(), s);
        s
    }

    /// The slot of a variable, if interned.
    pub fn slot(&self, v: &Var) -> Option<usize> {
        self.slots.get(v).copied()
    }

    /// The interned variables, in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no variable is interned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// A (partial) valuation of query variables: a flat slot vector plus the
/// shared [`VarTable`] that names the slots.
///
/// This is the **boundary** representation: analysis results and the
/// baselines use it, while the join core itself runs on interned-id slot
/// vectors and converts to `Binding` only when handing results out. Cloning
/// a binding copies the slot vector (values are `Arc`-backed and cheap) and
/// bumps the table's reference count; no tree rebalancing or per-entry node
/// allocation happens.
#[derive(Clone, Default)]
pub struct Binding {
    table: Arc<VarTable>,
    slots: Vec<Option<Value>>,
}

impl Binding {
    /// An empty binding over an empty variable table. Variables inserted
    /// later grow the table on demand, so this behaves like the map it
    /// replaced.
    pub fn new() -> Binding {
        Binding::default()
    }

    /// An unbound valuation over the given table.
    pub fn for_table(table: Arc<VarTable>) -> Binding {
        let slots = vec![None; table.len()];
        Binding { table, slots }
    }

    /// The table naming this binding's slots.
    pub fn table(&self) -> &Arc<VarTable> {
        &self.table
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: &Var) -> Option<&Value> {
        self.table
            .slot(v)
            .and_then(|s| self.slots.get(s))
            .and_then(Option::as_ref)
    }

    /// Binds `v` to `value`, growing the variable table if `v` is new.
    /// Returns the previously bound value, if any.
    pub fn insert(&mut self, v: Var, value: Value) -> Option<Value> {
        let slot = match self.table.slot(&v) {
            Some(s) => s,
            None => Arc::make_mut(&mut self.table).intern(&v),
        };
        if slot >= self.slots.len() {
            self.slots.resize(self.table.len(), None);
        }
        self.slots[slot].replace(value)
    }

    /// Iterates over the bound `(variable, value)` pairs, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.table
            .vars()
            .iter()
            .zip(self.slots.iter())
            .filter_map(|(v, val)| val.as_ref().map(|val| (v, val)))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Returns `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Converts to the ordered-map representation used by the symbolic
    /// evaluator ([`rcqa_logic::Valuation`]).
    pub fn to_valuation(&self) -> BTreeMap<Var, Value> {
        self.iter()
            .map(|(v, val)| (v.clone(), val.clone()))
            .collect()
    }

    /// Direct slot access for boundary conversions.
    #[inline]
    pub(crate) fn slots(&self) -> &[Option<Value>] {
        &self.slots
    }

    /// Wraps raw slots produced by a boundary conversion.
    pub(crate) fn from_slots(table: Arc<VarTable>, slots: Vec<Option<Value>>) -> Binding {
        Binding { table, slots }
    }

    /// Re-expresses this binding over `table`, dropping variables the target
    /// table does not know. Cheap when the binding already uses `table`.
    pub(crate) fn adapt_to(&self, table: &Arc<VarTable>) -> Binding {
        if Arc::ptr_eq(&self.table, table) || self.table == *table {
            return Binding {
                table: table.clone(),
                slots: {
                    let mut slots = self.slots.clone();
                    slots.resize(table.len(), None);
                    slots
                },
            };
        }
        let mut out = Binding::for_table(table.clone());
        for (v, val) in self.iter() {
            if let Some(s) = table.slot(v) {
                out.slots[s] = Some(val.clone());
            }
        }
        out
    }
}

impl Index<&Var> for Binding {
    type Output = Value;

    fn index(&self, v: &Var) -> &Value {
        self.get(v)
            .unwrap_or_else(|| panic!("variable {v} is unbound"))
    }
}

impl FromIterator<(Var, Value)> for Binding {
    fn from_iter<I: IntoIterator<Item = (Var, Value)>>(iter: I) -> Binding {
        let mut binding = Binding::new();
        for (v, val) in iter {
            binding.insert(v, val);
        }
        binding
    }
}

impl PartialEq for Binding {
    fn eq(&self, other: &Binding) -> bool {
        if Arc::ptr_eq(&self.table, &other.table) {
            return self.slots == other.slots;
        }
        // Structural equality across tables: same bound pairs.
        self.to_valuation() == other.to_valuation()
    }
}

impl Eq for Binding {}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// One position of a compiled atom: a constant to compare or a slot to
/// bind/check. Index-independent (constants are still [`Value`]s); resolved
/// against a concrete index's interner into [`RTerm`]s before joining.
#[derive(Clone, Debug)]
enum SlotTerm {
    Const(Value),
    Slot(usize),
}

/// One level of a topologically-sorted body with its atom pre-resolved to
/// slot indices.
#[derive(Clone, Debug)]
pub struct CompiledLevel {
    relation: String,
    key_len: usize,
    terms: Vec<SlotTerm>,
    /// `x̄_ℓ` as slots.
    new_key_slots: Vec<usize>,
    /// `ū_ℓ` as slots.
    prefix_slots: Vec<usize>,
}

/// A body compiled for the slot-based join core: per-level slot-resolved
/// atoms plus the shared [`VarTable`].
#[derive(Clone, Debug)]
pub struct CompiledLevels {
    levels: Vec<CompiledLevel>,
    table: Arc<VarTable>,
}

impl CompiledLevels {
    /// Compiles a level list, interning its variables.
    pub fn new(levels: &[Level]) -> CompiledLevels {
        let table = Arc::new(VarTable::from_levels(levels));
        let compiled = levels
            .iter()
            .map(|level| {
                let slot = |v: &Var| table.slot(v).expect("level variable interned");
                CompiledLevel {
                    relation: level.atom.relation().to_string(),
                    key_len: level.key_len,
                    terms: level
                        .atom
                        .terms()
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => SlotTerm::Const(c.clone()),
                            Term::Var(v) => SlotTerm::Slot(slot(v)),
                        })
                        .collect(),
                    new_key_slots: level.new_key_vars.iter().map(&slot).collect(),
                    prefix_slots: level.prefix_vars.iter().map(slot).collect(),
                }
            })
            .collect();
        CompiledLevels {
            levels: compiled,
            table,
        }
    }

    /// The shared variable table.
    pub fn table(&self) -> &Arc<VarTable> {
        &self.table
    }

    /// An unbound valuation over this body's variables.
    pub fn binding(&self) -> Binding {
        Binding::for_table(self.table.clone())
    }

    /// An unbound id slot vector over this body's variables (the join core's
    /// working representation).
    pub(crate) fn unbound_ids(&self) -> Vec<u32> {
        vec![UNBOUND_ID; self.table.len()]
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns `true` if there are no levels.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// One position of a compiled atom resolved against a concrete index's id
/// space: constants become interned ids (or [`rcqa_data::MISSING_ID`] when
/// the constant occurs in no fact — a constraint that matches nothing).
#[derive(Clone, Copy, Debug)]
enum RTerm {
    Const(u32),
    Slot(usize),
}

/// Resolves one level's terms against an interner.
fn resolve_level(level: &CompiledLevel, interner: &ValueInterner) -> Vec<RTerm> {
    level
        .terms
        .iter()
        .map(|t| match t {
            SlotTerm::Const(c) => RTerm::Const(interner.id_or_missing(c)),
            SlotTerm::Slot(s) => RTerm::Slot(*s),
        })
        .collect()
}

/// Resolves every level of a compiled body against an interner. Done once
/// per (body, index) pair — by [`CertaintyChecker::with_compiled`] and the
/// enumeration entry points — so the join core never touches a [`Value`].
fn resolve_terms(compiled: &CompiledLevels, interner: &ValueInterner) -> Vec<Vec<RTerm>> {
    compiled
        .levels
        .iter()
        .map(|lvl| resolve_level(lvl, interner))
        .collect()
}

/// Converts a boundary slot vector into the join core's id representation:
/// unbound slots become [`UNBOUND_ID`], values absent from the interner
/// become [`rcqa_data::MISSING_ID`] (they can match no fact, which is exactly
/// what an absent value must do).
pub(crate) fn slots_to_ids(slots: &[Option<Value>], interner: &ValueInterner) -> Vec<u32> {
    slots
        .iter()
        .map(|s| s.as_ref().map_or(UNBOUND_ID, |v| interner.id_or_missing(v)))
        .collect()
}

/// Materialises an id slot vector back into a [`Binding`] — the result
/// boundary. Every bound id names an interned value here: join outputs only
/// ever bind slots to fact ids.
pub(crate) fn ids_to_binding(
    table: &Arc<VarTable>,
    ids: &[u32],
    interner: &ValueInterner,
) -> Binding {
    let slots = ids
        .iter()
        .map(|&id| {
            if id == UNBOUND_ID {
                None
            } else {
                Some(interner.value(id).clone())
            }
        })
        .collect();
    Binding::from_slots(table.clone(), slots)
}

/// Tries to match row `row` of a block's columns against the resolved
/// `terms` by mutating the id slot vector in place; newly bound slots are
/// recorded on `trail` (even on failure, so the caller can undo a partial
/// match). Pure integer work: id equality is value equality, and the
/// sentinels ([`UNBOUND_ID`], [`rcqa_data::MISSING_ID`]) never equal a fact
/// id, so an unresolved constant or stale bound value simply never matches.
#[inline]
fn match_level_ids(
    terms: &[RTerm],
    cols: &FactColumns,
    row: usize,
    slots: &mut [u32],
    trail: &mut Vec<usize>,
) -> bool {
    for (p, term) in terms.iter().enumerate() {
        let actual = cols.id_at(row, p);
        match *term {
            RTerm::Const(c) => {
                if c != actual {
                    return false;
                }
            }
            RTerm::Slot(s) => {
                let bound = slots[s];
                if bound == UNBOUND_ID {
                    slots[s] = actual;
                    trail.push(s);
                } else if bound != actual {
                    return false;
                }
            }
        }
    }
    true
}

/// Undoes the slot writes recorded after `mark` and truncates the trail.
#[inline]
fn unwind(slots: &mut [u32], trail: &mut Vec<usize>, mark: usize) {
    for &s in &trail[mark..] {
        slots[s] = UNBOUND_ID;
    }
    trail.truncate(mark);
}

/// The key id pattern of a resolved atom under the current slots: one entry
/// per key position, `Some(id)` when the position is a constant or a bound
/// slot. A `Some(MISSING_ID)` entry is deliberate — `blocks_matching` treats
/// it as a constraint that matches nothing.
fn key_pattern_ids(terms: &[RTerm], key_len: usize, slots: &[u32]) -> Vec<Option<u32>> {
    terms[..key_len]
        .iter()
        .map(|t| match *t {
            RTerm::Const(c) => Some(c),
            RTerm::Slot(s) => (slots[s] != UNBOUND_ID).then_some(slots[s]),
        })
        .collect()
}

/// Tries to match `fact` against `atom` under `binding`; on success returns
/// the binding extended with the newly bound variables.
///
/// This is the by-name, [`Value`]-level convenience entry point (used by the
/// baselines); the join core uses the interned [`CompiledLevels`] machinery
/// instead.
pub fn match_fact(atom: &Atom, fact: &Fact, binding: &Binding) -> Option<Binding> {
    let mut extended = binding.clone();
    for (p, term) in atom.terms().iter().enumerate() {
        let actual = fact.arg(p);
        match term {
            Term::Const(c) => {
                if c != actual {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(bound) => {
                    if bound != actual {
                        return None;
                    }
                }
                None => {
                    extended.insert(v.clone(), actual.clone());
                }
            },
        }
    }
    Some(extended)
}

/// Memo of decided certainty sub-problems: (level, relevant slot ids).
///
/// Keys are raw ids, so probing costs a small integer hash instead of
/// hashing values. Two distinct *absent* values both project to `MISSING_ID`
/// and therefore share memo entries — which is sound: `match_level_ids` only
/// ever compares a slot against fact ids (never slot against slot), and no
/// fact id equals `MISSING_ID`, so every absent value induces the same
/// (all-matches-fail) sub-problem.
type CertaintyMemo = HashMap<(usize, Vec<u32>), bool>;

/// Certainty checker for the suffixes `F_ℓ ∧ ... ∧ F_n` of a topologically
/// sorted acyclic query, with memoisation on the relevant part of the binding.
///
/// The memo key is slot-projected, and free (frozen) variables of the query
/// occur in the atoms and hence in the relevant slots — so a single checker
/// can be shared across **all groups** of a grouped query: certainty work
/// done for one group key is reused for every other group that leads to the
/// same sub-problem.
pub struct CertaintyChecker<'a> {
    compiled: CompiledLevels,
    /// The compiled terms resolved against `index`'s id space, once.
    resolved: Vec<Vec<RTerm>>,
    index: &'a DbIndex,
    /// For each level, the slots of the variables of `F_ℓ, ..., F_n` (only
    /// these influence the answer, so they form the memo key).
    relevant_slots: Vec<Vec<usize>>,
    memo: RefCell<CertaintyMemo>,
}

impl<'a> CertaintyChecker<'a> {
    /// Creates a checker for the given levels (topological order) and index.
    pub fn new(levels: &[Level], index: &'a DbIndex) -> CertaintyChecker<'a> {
        CertaintyChecker::with_compiled(CompiledLevels::new(levels), index)
    }

    /// Creates a checker over an already-compiled body, sharing its variable
    /// table (and therefore its slot layout) with bindings produced from the
    /// same [`CompiledLevels`].
    pub fn with_compiled(compiled: CompiledLevels, index: &'a DbIndex) -> CertaintyChecker<'a> {
        let n = compiled.levels.len();
        let resolved = resolve_terms(&compiled, index.interner());
        let mut relevant_slots: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut acc: Vec<usize> = Vec::new();
        for l in (0..n).rev() {
            for term in &compiled.levels[l].terms {
                if let SlotTerm::Slot(s) = term {
                    if !acc.contains(s) {
                        acc.push(*s);
                    }
                }
            }
            let mut sorted = acc.clone();
            sorted.sort_unstable();
            relevant_slots[l] = sorted;
        }
        CertaintyChecker {
            compiled,
            resolved,
            index,
            relevant_slots,
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// The compiled body this checker runs over.
    pub fn compiled(&self) -> &CompiledLevels {
        &self.compiled
    }

    /// Returns `true` if `F_{level+1} ∧ ... ∧ F_n` (0-based `level`) holds in
    /// every repair of the indexed database, for the given partial binding.
    ///
    /// `certain_from(0, ∅)` decides `CERTAINTY(q)` for the whole query.
    pub fn certain_from(&self, level: usize, binding: &Binding) -> bool {
        let adapted = binding.adapt_to(&self.compiled.table);
        let mut slots = slots_to_ids(adapted.slots(), self.index.interner());
        self.certain_from_slots(level, &mut slots)
    }

    /// Id-based entry point for callers that already share this checker's
    /// table and id space (no adaptation, no allocation beyond the memo key).
    pub(crate) fn certain_from_slots(&self, level: usize, slots: &mut Vec<u32>) -> bool {
        if level >= self.compiled.levels.len() {
            return true;
        }
        let key: Vec<u32> = self.relevant_slots[level]
            .iter()
            .map(|&s| slots[s])
            .collect();
        if let Some(&cached) = self.memo.borrow().get(&(level, key.clone())) {
            return cached;
        }
        let result = self.certain_uncached(level, slots);
        self.memo.borrow_mut().insert((level, key), result);
        result
    }

    fn certain_uncached(&self, level: usize, slots: &mut Vec<u32>) -> bool {
        let lvl = &self.compiled.levels[level];
        let terms = &self.resolved[level];
        let interner = self.index.interner();
        let rel = self.index.relation(&lvl.relation);
        let pattern = key_pattern_ids(terms, lvl.key_len, slots);
        let mut trail: Vec<usize> = Vec::new();
        for block in rel.blocks_matching(&pattern, interner) {
            let mut all_ok = true;
            for row in 0..block.cols.rows() {
                let mark = trail.len();
                let matched = match_level_ids(terms, &block.cols, row, slots, &mut trail);
                let ok = matched && self.certain_from_slots(level + 1, slots);
                unwind(slots, &mut trail, mark);
                if !ok {
                    all_ok = false;
                    break;
                }
            }
            if all_ok {
                return true;
            }
        }
        false
    }
}

/// Enumerates all embeddings of the body (atoms in topological order) in the
/// indexed database, starting from an initial binding.
pub fn embeddings(levels: &[Level], index: &DbIndex, initial: &Binding) -> Vec<Binding> {
    embeddings_compiled(&CompiledLevels::new(levels), index, initial)
}

/// Like [`embeddings`], but over an already-compiled body (the engine
/// compiles once per call and reuses the compilation across groups).
pub fn embeddings_compiled(
    compiled: &CompiledLevels,
    index: &DbIndex,
    initial: &Binding,
) -> Vec<Binding> {
    let interner = index.interner();
    let initial_ids = slots_to_ids(initial.adapt_to(&compiled.table).slots(), interner);
    embeddings_compiled_ids(compiled, index, &initial_ids)
        .iter()
        .map(|ids| ids_to_binding(&compiled.table, ids, interner))
        .collect()
}

/// Id core of [`embeddings_compiled`]: enumerates all embeddings as id slot
/// vectors, without materialising a single [`Value`].
pub(crate) fn embeddings_compiled_ids(
    compiled: &CompiledLevels,
    index: &DbIndex,
    initial: &[u32],
) -> Vec<Vec<u32>> {
    let resolved = resolve_terms(compiled, index.interner());
    let mut slots = initial.to_vec();
    let mut trail = Vec::new();
    let mut out = Vec::new();
    embed_rec(
        compiled, &resolved, index, 0, None, &mut slots, &mut trail, &mut out,
    );
    out
}

/// Enumerates the embeddings whose fact at level `pin_level` is drawn from
/// one of the `pinned` blocks (block keys as interned id tuples), in the same
/// relative order as the full enumeration. This is the dirty-block →
/// candidate-group reverse lookup of the serving layer: after a commit, an
/// embedding can newly exist through level ℓ only if its level-ℓ fact lives
/// in a block the commit changed, so pinning each level in turn to the dirty
/// blocks of its relation enumerates every embedding the delta may have
/// created — and hence every group key that may have been born.
pub(crate) fn embeddings_dirty_pinned_ids(
    compiled: &CompiledLevels,
    index: &DbIndex,
    initial: &[u32],
    pin_level: usize,
    pinned: &HashSet<Vec<u32>>,
) -> Vec<Vec<u32>> {
    let resolved = resolve_terms(compiled, index.interner());
    let mut slots = initial.to_vec();
    let mut trail = Vec::new();
    let mut out = Vec::new();
    embed_rec(
        compiled,
        &resolved,
        index,
        0,
        Some((pin_level, pinned)),
        &mut slots,
        &mut trail,
        &mut out,
    );
    out
}

/// The blocks the first level of `compiled` can draw facts from under
/// `initial`, **in enumeration order**: this is the block-key shard axis of
/// the parallel executor. Slicing the returned list into contiguous ranges
/// and concatenating the per-range [`embeddings_from_blocks`] results
/// reproduces [`embeddings_compiled`] exactly.
///
/// Returns `None` when the body has no levels (the empty body has one trivial
/// embedding and nothing to shard).
pub fn level0_blocks<'a>(
    compiled: &CompiledLevels,
    index: &'a DbIndex,
    initial: &Binding,
) -> Option<Vec<&'a IndexedBlock>> {
    let lvl = compiled.levels.first()?;
    let interner = index.interner();
    let slots = slots_to_ids(initial.adapt_to(&compiled.table).slots(), interner);
    let terms = resolve_level(lvl, interner);
    let pattern = key_pattern_ids(&terms, lvl.key_len, &slots);
    Some(
        index
            .relation(&lvl.relation)
            .blocks_matching(&pattern, interner)
            .collect(),
    )
}

/// Enumerates the embeddings whose first-level fact comes from one of
/// `blocks` (a contiguous shard of [`level0_blocks`]), in the same order as
/// the unsharded enumeration restricted to those blocks.
pub fn embeddings_from_blocks(
    compiled: &CompiledLevels,
    index: &DbIndex,
    initial: &Binding,
    blocks: &[&IndexedBlock],
) -> Vec<Binding> {
    let interner = index.interner();
    let initial_ids = slots_to_ids(initial.adapt_to(&compiled.table).slots(), interner);
    embeddings_from_blocks_ids(compiled, index, &initial_ids, blocks)
        .iter()
        .map(|ids| ids_to_binding(&compiled.table, ids, interner))
        .collect()
}

/// Id core of [`embeddings_from_blocks`].
pub(crate) fn embeddings_from_blocks_ids(
    compiled: &CompiledLevels,
    index: &DbIndex,
    initial: &[u32],
    blocks: &[&IndexedBlock],
) -> Vec<Vec<u32>> {
    let mut slots = initial.to_vec();
    let mut trail = Vec::new();
    let mut out = Vec::new();
    if compiled.levels.is_empty() {
        out.push(slots);
        return out;
    }
    let resolved = resolve_terms(compiled, index.interner());
    for block in blocks {
        for row in 0..block.cols.rows() {
            let mark = trail.len();
            if match_level_ids(&resolved[0], &block.cols, row, &mut slots, &mut trail) {
                embed_rec(
                    compiled, &resolved, index, 1, None, &mut slots, &mut trail, &mut out,
                );
            }
            unwind(&mut slots, &mut trail, mark);
        }
    }
    out
}

/// The recursive join core. `pin` optionally restricts one level to a set of
/// block keys: blocks of that level outside the set are skipped, everything
/// else — enumeration order included — is identical to the unpinned run, so
/// the output is the order-preserving subsequence of the full enumeration
/// whose pinned-level fact comes from a pinned block.
#[allow(clippy::too_many_arguments)]
fn embed_rec(
    compiled: &CompiledLevels,
    resolved: &[Vec<RTerm>],
    index: &DbIndex,
    level: usize,
    pin: Option<(usize, &HashSet<Vec<u32>>)>,
    slots: &mut Vec<u32>,
    trail: &mut Vec<usize>,
    out: &mut Vec<Vec<u32>>,
) {
    if level >= compiled.levels.len() {
        out.push(slots.clone());
        return;
    }
    let lvl = &compiled.levels[level];
    let terms = &resolved[level];
    let rel = index.relation(&lvl.relation);
    let pattern = key_pattern_ids(terms, lvl.key_len, slots);
    for block in rel.blocks_matching(&pattern, index.interner()) {
        if let Some((pin_level, pinned)) = pin {
            if level == pin_level && !pinned.contains(&block.key[..]) {
                continue;
            }
        }
        for row in 0..block.cols.rows() {
            let mark = trail.len();
            if match_level_ids(terms, &block.cols, row, slots, trail) {
                embed_rec(compiled, resolved, index, level + 1, pin, slots, trail, out);
            }
            unwind(slots, trail, mark);
        }
    }
}

/// The result of analysing a (closed) prepared body against a database
/// instance.
#[derive(Clone, Debug)]
pub struct ForallAnalysis {
    /// Whether `∃ū q(ū)` is true in every repair (the `0-∀embedding` exists).
    pub certain: bool,
    /// All embeddings of the body.
    pub embeddings: Vec<Binding>,
    /// All ∀embeddings of the body (a subset of `embeddings`; empty when
    /// `certain` is false).
    pub forall_embeddings: Vec<Binding>,
}

/// Computes embeddings and ∀embeddings of an acyclic prepared body (with no
/// free variables) in `db`.
///
/// # Panics
/// Panics if the body's attack graph is cyclic (the notion of ∀embedding is
/// defined relative to a topological sort).
pub fn analyse(body: &PreparedBody, db: &DatabaseInstance) -> ForallAnalysis {
    let index = DbIndex::new(db);
    analyse_with_index(body, &index)
}

/// Like [`analyse`], but reuses a prebuilt [`DbIndex`].
pub fn analyse_with_index(body: &PreparedBody, index: &DbIndex) -> ForallAnalysis {
    assert!(
        body.is_acyclic(),
        "∀embeddings are only defined for acyclic attack graphs"
    );
    debug_assert!(
        body.body().free_vars().is_empty(),
        "free variables must be substituted before analysis"
    );
    let checker = CertaintyChecker::new(body.levels(), index);
    let base = checker.compiled().binding();
    analyse_group(&checker, index, &base)
}

/// Computes the per-group analysis — certainty, embeddings, ∀embeddings —
/// for the group fixed by `base` (free variables bound to the group key;
/// empty for closed queries), sharing the checker's memo across groups.
pub fn analyse_group(
    checker: &CertaintyChecker<'_>,
    index: &DbIndex,
    base: &Binding,
) -> ForallAnalysis {
    let compiled = checker.compiled();
    let base_ids = slots_to_ids(base.adapt_to(&compiled.table).slots(), index.interner());
    let embeddings = embeddings_compiled_ids(compiled, index, &base_ids);
    analyse_group_with_embeddings_ids(checker, &base_ids, embeddings, true)
}

/// Like [`analyse_group`], but for a group whose embeddings have already
/// been enumerated (the engine enumerates all groups in one pass and
/// partitions the result). When `compute_forall` is `false` the ∀embedding
/// filter is skipped (the plain-extremum strategies of Theorem 7.10 only
/// need the embeddings and the certainty bit).
pub fn analyse_group_with_embeddings(
    checker: &CertaintyChecker<'_>,
    base: &Binding,
    embeddings: Vec<Binding>,
    compute_forall: bool,
) -> ForallAnalysis {
    let interner = checker.index.interner();
    let compiled = checker.compiled();
    let mut base_ids = slots_to_ids(base.adapt_to(&compiled.table).slots(), interner);
    let certain = checker.certain_from_slots(0, &mut base_ids);
    let forall_embeddings = if certain && compute_forall {
        embeddings
            .iter()
            .filter(|theta| {
                let theta_ids = slots_to_ids(theta.adapt_to(&compiled.table).slots(), interner);
                is_forall_embedding(checker, &base_ids, &theta_ids)
            })
            .cloned()
            .collect()
    } else {
        Vec::new()
    };
    ForallAnalysis {
        certain,
        embeddings,
        forall_embeddings,
    }
}

/// Id core of [`analyse_group_with_embeddings`]: certainty and the
/// ∀embedding filter run entirely on id slot vectors, and the surviving
/// embeddings are materialised into [`Binding`]s exactly once, at the end —
/// this is the executor's per-group result boundary.
pub(crate) fn analyse_group_with_embeddings_ids(
    checker: &CertaintyChecker<'_>,
    base_ids: &[u32],
    embeddings: Vec<Vec<u32>>,
    compute_forall: bool,
) -> ForallAnalysis {
    let interner = checker.index.interner();
    let table = &checker.compiled().table;
    let mut base = base_ids.to_vec();
    let certain = checker.certain_from_slots(0, &mut base);
    let forall_embeddings = if certain && compute_forall {
        embeddings
            .iter()
            .filter(|theta| is_forall_embedding(checker, base_ids, theta))
            .map(|ids| ids_to_binding(table, ids, interner))
            .collect()
    } else {
        Vec::new()
    };
    ForallAnalysis {
        certain,
        embeddings: embeddings
            .iter()
            .map(|ids| ids_to_binding(table, ids, interner))
            .collect(),
        forall_embeddings,
    }
}

/// Checks the level-by-level certainty conditions of the ∀embedding
/// definition for a full embedding `theta` (as ids), relative to the frozen
/// base binding (group key) in `base_ids`.
fn is_forall_embedding(checker: &CertaintyChecker<'_>, base_ids: &[u32], theta: &[u32]) -> bool {
    let compiled = checker.compiled();
    let mut restricted = base_ids.to_vec();
    for (l, lvl) in compiled.levels.iter().enumerate() {
        // Restriction of theta to ū_{ℓ-1} ∪ x̄_ℓ (plus the frozen base).
        restricted.copy_from_slice(base_ids);
        if l > 0 {
            for &s in &compiled.levels[l - 1].prefix_slots {
                restricted[s] = theta[s];
            }
        }
        for &s in &lvl.new_key_slots {
            restricted[s] = theta[s];
        }
        if !checker.certain_from_slots(l, &mut restricted) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedAggQuery;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;
    use std::collections::BTreeSet;

    /// The database instance of Fig. 1.
    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    /// The database instance db0 of Fig. 3.
    fn db0() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("R", "a1", "b1"),
            fact!("R", "a1", "b2"),
            fact!("R", "a2", "b2"),
            fact!("R", "a2", "b3"),
            fact!("R", "a3", "b4"),
            fact!("S", "b1", "c1", "d", 1),
            fact!("S", "b1", "c1", "d", 2),
            fact!("S", "b1", "c2", "d", 3),
            fact!("S", "b2", "c3", "d", 5),
            fact!("S", "b2", "c3", "d", 6),
            fact!("S", "b3", "c4", "d", 5),
            fact!("S", "b4", "c5", "d", 7),
            fact!("S", "b4", "c5", "e", 8),
        ])
        .unwrap();
        db
    }

    fn prepared(datalog: &str, schema: &Schema) -> PreparedAggQuery {
        PreparedAggQuery::new(&parse_agg_query(datalog).unwrap(), schema).unwrap()
    }

    #[test]
    fn example_4_1_forall_embeddings() {
        // q0 = Dealers('James', t), Stock(p, t, 35): true in every repair.
        let db = db_stock();
        let q = prepared(
            "COUNT(*) <- Dealers('James', t), Stock(p, t, 35)",
            db.schema(),
        );
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        // Embeddings: (Boston, Tesla X) and (Boston, Tesla Y).
        assert_eq!(analysis.embeddings.len(), 2);
        // Only (Boston, Tesla Y) is a ∀embedding (Example 4.1): the Tesla X
        // block also contains quantity 40.
        assert_eq!(analysis.forall_embeddings.len(), 1);
        let theta = &analysis.forall_embeddings[0];
        assert_eq!(theta.get(&Var::new("t")), Some(&Value::text("Boston")));
        assert_eq!(theta.get(&Var::new("p")), Some(&Value::text("Tesla Y")));
    }

    #[test]
    fn fig_3_forall_embeddings_m0() {
        // g0() = SUM(r) <- R(x, y), S(y, z, 'd', r) over db0: the set M0 of
        // ∀embeddings has exactly the 8 rows of Fig. 3.
        let db = db0();
        let q = prepared("SUM(r) <- R(x, y), S(y, z, 'd', r)", db.schema());
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        // There are 9 embeddings in total; (a3, b4, c5, 7) is not a
        // ∀embedding because of the 'e' value in the last S-row.
        assert_eq!(analysis.embeddings.len(), 9);
        assert_eq!(analysis.forall_embeddings.len(), 8);
        let m0: BTreeSet<(String, String, String, i64)> = analysis
            .forall_embeddings
            .iter()
            .map(|b| {
                (
                    b[&Var::new("x")].to_string(),
                    b[&Var::new("y")].to_string(),
                    b[&Var::new("z")].to_string(),
                    b[&Var::new("r")].as_num().unwrap().numerator() as i64,
                )
            })
            .collect();
        let expected: BTreeSet<(String, String, String, i64)> = [
            ("a1", "b1", "c1", 1),
            ("a1", "b1", "c1", 2),
            ("a1", "b1", "c2", 3),
            ("a1", "b2", "c3", 5),
            ("a1", "b2", "c3", 6),
            ("a2", "b2", "c3", 5),
            ("a2", "b2", "c3", 6),
            ("a2", "b3", "c4", 5),
        ]
        .iter()
        .map(|(a, b, c, d)| (a.to_string(), b.to_string(), c.to_string(), *d))
        .collect();
        assert_eq!(m0, expected);
        // No ∀embedding maps x to a3.
        assert!(!analysis
            .forall_embeddings
            .iter()
            .any(|b| b[&Var::new("x")] == Value::text("a3")));
    }

    #[test]
    fn certainty_detects_falsifying_repair() {
        // Dealers('Smith', t), Stock('Tesla Z', t, q): Tesla Z is never in
        // stock, so no repair satisfies the query. ('Tesla Z' also resolves
        // to MISSING_ID — the id core must treat it as matching nothing, not
        // panic on it.)
        let db = db_stock();
        let q = prepared(
            "COUNT(*) <- Dealers('Smith', t), Stock('Tesla Z', t, q)",
            db.schema(),
        );
        let analysis = analyse(&q.body, &db);
        assert!(!analysis.certain);
        assert!(analysis.embeddings.is_empty());
        assert!(analysis.forall_embeddings.is_empty());

        // Dealers('Smith', t), Stock(p, t, y): Smith's town is uncertain, but
        // both Boston and New York stock something, so the query is certain.
        let q = prepared("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)", db.schema());
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        // No embedding through Smith/Boston or Smith/New York is a
        // ∀embedding at level 1 (Smith's town is uncertain), except... none.
        // Level-1 check fixes only x̄_1 = ∅ (the key 'Smith' is a constant),
        // so certainty of the whole query from level 0 is what matters; each
        // embedding also needs level-wise checks.
        assert_eq!(analysis.embeddings.len(), 5);
    }

    #[test]
    fn match_fact_handles_repeats_and_constants() {
        let atom = Atom::new("T", vec![Term::var("x"), Term::var("x"), Term::constant(3)]);
        let f_ok = fact!("T", "a", "a", 3);
        let f_bad_repeat = fact!("T", "a", "b", 3);
        let f_bad_const = fact!("T", "a", "a", 4);
        assert!(match_fact(&atom, &f_ok, &Binding::new()).is_some());
        assert!(match_fact(&atom, &f_bad_repeat, &Binding::new()).is_none());
        assert!(match_fact(&atom, &f_bad_const, &Binding::new()).is_none());
        // Pre-bound variable must agree.
        let mut b = Binding::new();
        b.insert(Var::new("x"), Value::text("z"));
        assert!(match_fact(&atom, &f_ok, &b).is_none());
        // Numeric values round-trip.
        let atom = Atom::new("U", vec![Term::var("r")]);
        let f = fact!("U", 7);
        let m = match_fact(&atom, &f, &Binding::new()).unwrap();
        assert_eq!(m[&Var::new("r")].as_num(), Some(rat(7)));
    }

    #[test]
    fn empty_relation_makes_query_uncertain() {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(2, 1, [1]).unwrap());
        let db = DatabaseInstance::new(schema.clone());
        let q = prepared("SUM(r) <- R(x, y), S(y, r)", &schema);
        let analysis = analyse(&q.body, &db);
        assert!(!analysis.certain);
        assert!(analysis.embeddings.is_empty());
    }

    #[test]
    fn binding_behaves_like_a_map() {
        let mut b = Binding::new();
        assert!(b.is_empty());
        assert_eq!(b.insert(Var::new("x"), Value::int(1)), None);
        assert_eq!(b.insert(Var::new("x"), Value::int(2)), Some(Value::int(1)));
        b.insert(Var::new("y"), Value::text("a"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(&Var::new("x")), Some(&Value::int(2)));
        assert_eq!(b.get(&Var::new("z")), None);
        let pairs: Vec<_> = b.iter().map(|(v, _)| v.name().to_string()).collect();
        assert_eq!(pairs, vec!["x", "y"]);
        // Structural equality across differently-built tables.
        let c: Binding = vec![
            (Var::new("y"), Value::text("a")),
            (Var::new("x"), Value::int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(b, c);
        assert_eq!(b.to_valuation(), c.to_valuation());
    }

    #[test]
    fn grouped_analysis_shares_one_checker() {
        // Group-by on the Fig. 1 instance: analysing Smith and James with one
        // shared checker gives the same per-group results as substituting.
        let db = db_stock();
        let index = DbIndex::new(&db);
        let q = prepared("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)", db.schema());
        let checker = CertaintyChecker::new(q.body.levels(), &index);
        for (dealer, n_embs) in [("Smith", 5), ("James", 3)] {
            let mut base = checker.compiled().binding();
            base.insert(Var::new("x"), Value::text(dealer));
            let analysis = analyse_group(&checker, &index, &base);
            assert!(analysis.certain, "{dealer} group must be certain");
            assert_eq!(analysis.embeddings.len(), n_embs, "{dealer} embeddings");
        }
    }
}
