//! The operational evaluation of range-consistent aggregate bounds over
//! ∀embeddings, following the proof of Theorem 6.1.
//!
//! For a monotone and associative aggregate operator `F⊕`, Corollary 6.4
//! expresses `GLB-CQA(g())` as the minimum, over all maximal consistent
//! subsets (MCS) of the set of ∀embeddings, of the aggregated `r`-values.
//! The proof of Theorem 6.1 computes this minimum by recursing over the
//! topological sort: alternatives within one block (same key values) are
//! mutually exclusive and resolved by `MIN`, while distinct key values are
//! independent branches combined with `F⊕` (Decomposition Lemma H.5 and
//! Consistent Extension Lemma H.9).
//!
//! The same recursion with the roles of `MIN`/`MAX` mirrored computes
//! `LUB-CQA` for `MIN`-queries (Theorem 7.11).

use crate::forall::Binding;
use crate::prepared::Level;
use rcqa_data::{AggFunc, Rational, Value};
use rcqa_query::{AggTerm, Var};
use std::collections::BTreeMap;

/// How alternatives within one block (same key, different non-key values) are
/// resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Pick the alternative minimising the aggregate (GLB semantics).
    Minimise,
    /// Pick the alternative maximising the aggregate (LUB semantics for
    /// MIN-queries, via the order-reversal argument of Theorem 7.11).
    Maximise,
}

/// The value of the aggregated term `r` under a binding.
pub fn term_value(term: &AggTerm, binding: &Binding) -> Rational {
    match term {
        AggTerm::Const(c) => *c,
        AggTerm::Var(v) => binding
            .get(v)
            .and_then(Value::as_num)
            .unwrap_or_else(|| panic!("aggregated variable {v} is unbound or non-numeric")),
    }
}

/// Computes the optimal (minimal or maximal, per `choice`) aggregated value of
/// `term` over all maximal consistent subsets of the given ∀embeddings,
/// combining independent branches with `combine`.
///
/// Returns `None` when the set of ∀embeddings is empty (which, for a certain
/// query, cannot happen).
pub fn optimal_aggregate(
    levels: &[Level],
    forall_embeddings: &[Binding],
    term: &AggTerm,
    combine: AggFunc,
    choice: Choice,
) -> Option<Rational> {
    if forall_embeddings.is_empty() {
        return None;
    }
    let refs: Vec<&Binding> = forall_embeddings.iter().collect();
    Some(recurse(levels, 0, &refs, term, combine, choice))
}

/// Projects a binding onto a list of variables (used to group extensions).
fn project(binding: &Binding, vars: &[Var]) -> Vec<Value> {
    vars.iter()
        .map(|v| {
            binding
                .get(v)
                .cloned()
                .expect("∀embedding binds all variables")
        })
        .collect()
}

fn recurse(
    levels: &[Level],
    level: usize,
    subset: &[&Binding],
    term: &AggTerm,
    combine: AggFunc,
    choice: Choice,
) -> Rational {
    if level == levels.len() {
        // Base case of the induction in Appendix H.4: Ext(θ) = {θ} and the
        // F⊕-minimal value is F⊕({{θ(r)}}).
        let value = term_value(term, subset[0]);
        return combine.apply(&[value]).expect("singleton aggregate");
    }
    let lvl = &levels[level];
    // Group by the new key variables x̄_{ℓ+1}: each group corresponds to one
    // (ℓ+1)-∀key-embedding γ_i extending the current prefix.
    let mut key_groups: BTreeMap<Vec<Value>, Vec<&Binding>> = BTreeMap::new();
    for b in subset {
        key_groups
            .entry(project(b, &lvl.new_key_vars))
            .or_default()
            .push(b);
    }
    let mut branch_values: Vec<Rational> = Vec::with_capacity(key_groups.len());
    for (_key, group) in key_groups {
        // Within one key group, alternatives (distinct values of ȳ_{ℓ+1}) are
        // mutually exclusive: a repair picks exactly one fact of the block.
        let mut alt_groups: BTreeMap<Vec<Value>, Vec<&Binding>> = BTreeMap::new();
        for b in group {
            alt_groups
                .entry(project(b, &lvl.new_other_vars))
                .or_default()
                .push(b);
        }
        let mut best: Option<Rational> = None;
        for (_alt, sub) in alt_groups {
            let v = recurse(levels, level + 1, &sub, term, combine, choice);
            best = Some(match (best, choice) {
                (None, _) => v,
                (Some(b), Choice::Minimise) => b.min(v),
                (Some(b), Choice::Maximise) => b.max(v),
            });
        }
        branch_values.push(best.expect("non-empty key group"));
    }
    combine
        .apply(&branch_values)
        .expect("non-empty branch values")
}

/// Computes the plain (non-repair-aware) extremum of the aggregated term over
/// all embeddings: the value of `MIN(r)`'s GLB and `MAX(r)`'s LUB when the
/// query is certain (Theorem 7.10 and its mirror in Theorem 7.11).
pub fn global_extremum(embeddings: &[Binding], term: &AggTerm, maximise: bool) -> Option<Rational> {
    let mut best: Option<Rational> = None;
    for b in embeddings {
        let v = term_value(term, b);
        best = Some(match best {
            None => v,
            Some(acc) => {
                if maximise {
                    acc.max(v)
                } else {
                    acc.min(v)
                }
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forall::analyse;
    use crate::prepared::PreparedAggQuery;
    use rcqa_data::{fact, rat, DatabaseInstance, Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn db0() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("R", "a1", "b1"),
            fact!("R", "a1", "b2"),
            fact!("R", "a2", "b2"),
            fact!("R", "a2", "b3"),
            fact!("R", "a3", "b4"),
            fact!("S", "b1", "c1", "d", 1),
            fact!("S", "b1", "c1", "d", 2),
            fact!("S", "b1", "c2", "d", 3),
            fact!("S", "b2", "c3", "d", 5),
            fact!("S", "b2", "c3", "d", 6),
            fact!("S", "b3", "c4", "d", 5),
            fact!("S", "b4", "c5", "d", 7),
            fact!("S", "b4", "c5", "e", 8),
        ])
        .unwrap();
        db
    }

    #[test]
    fn section_6_1_running_example_glb_is_9() {
        // GLB-CQA(g0()) for SUM(r) <- R(x, y), S(y, z, 'd', r) on db0 is 9:
        // 4 for the group x = a1 (1 + 3) and 5 for x = a2 (Fig. 4 / Fig. 5).
        let db = db0();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(r) <- R(x, y), S(y, z, 'd', r)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        let glb = optimal_aggregate(
            q.body.levels(),
            &analysis.forall_embeddings,
            &q.normalised.term,
            AggFunc::Sum,
            Choice::Minimise,
        );
        assert_eq!(glb, Some(rat(9)));
    }

    #[test]
    fn fig1_smith_stock_glb_is_70() {
        // The introduction example: the lowest total quantity of cars in
        // Smith's town of operation is 70.
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let analysis = analyse(&q.body, &db);
        assert!(analysis.certain);
        let glb = optimal_aggregate(
            q.body.levels(),
            &analysis.forall_embeddings,
            &q.normalised.term,
            AggFunc::Sum,
            Choice::Minimise,
        );
        assert_eq!(glb, Some(rat(70)));
    }

    #[test]
    fn global_extrema() {
        let db = db0();
        let q = PreparedAggQuery::new(
            &parse_agg_query("MIN(r) <- R(x, y), S(y, z, 'd', r)").unwrap(),
            db.schema(),
        )
        .unwrap();
        let analysis = analyse(&q.body, &db);
        let min = global_extremum(&analysis.embeddings, &q.normalised.term, false);
        let max = global_extremum(&analysis.embeddings, &q.normalised.term, true);
        assert_eq!(min, Some(rat(1)));
        assert_eq!(max, Some(rat(7)));
        assert_eq!(global_extremum(&[], &q.normalised.term, false), None);
    }

    #[test]
    fn empty_forall_embeddings_yield_none() {
        let db = db0();
        let q = PreparedAggQuery::new(
            &parse_agg_query("SUM(r) <- R(x, y), S(y, z, 'd', r)").unwrap(),
            db.schema(),
        )
        .unwrap();
        assert_eq!(
            optimal_aggregate(
                q.body.levels(),
                &[],
                &q.normalised.term,
                AggFunc::Sum,
                Choice::Minimise
            ),
            None
        );
    }
}
