//! The top-level range-CQA engine: classify a query, pick an evaluation
//! strategy per bound (rewriting-based, plain extremum, or exact fallback),
//! and compute per-group `[glb, lub]` answers on a database instance.
//!
//! ## Evaluation strategies
//!
//! Per `(aggregate, bound)` pair, the engine picks the cheapest sound path
//! (the query body must in addition have an acyclic attack graph for the
//! first two rows; otherwise every cell falls back to exact enumeration):
//!
//! | aggregate            | GLB path                          | LUB path                          |
//! |----------------------|-----------------------------------|-----------------------------------|
//! | `SUM` over `Q≥0`     | Theorem 6.1 rewriting             | exact enumeration                 |
//! | `SUM` with negatives | exact enumeration (Section 7.3)   | exact enumeration                 |
//! | `COUNT` (= `SUM(1)`) | Theorem 6.1 rewriting             | exact enumeration                 |
//! | `MAX`                | Theorem 7.11 rewriting (minimise) | Theorem 7.10 plain extremum       |
//! | `MIN`                | Theorem 7.10 plain extremum       | Theorem 7.11 rewriting (maximise) |
//! | `AVG`, others        | exact enumeration                 | exact enumeration                 |
//!
//! "Rewriting" evaluates the Theorem 6.1 / 7.11 semantics operationally over
//! ∀embeddings ([`crate::glb::optimal_aggregate`]); "plain extremum" takes
//! the extremum over all embeddings ([`crate::glb::global_extremum`]); exact
//! enumeration walks every repair ([`crate::exact::exact_bounds`]) and is
//! exponential in the number of inconsistent blocks.
//!
//! ## One-pass grouped evaluation
//!
//! Each public entry point ([`RangeCqa::glb`], [`RangeCqa::lub`],
//! [`RangeCqa::range`]) builds **one** [`DbIndex`] and performs **one** join
//! pass, regardless of the number of GROUP BY groups:
//!
//! 1. the open body (GROUP BY variables un-frozen, level order precomputed at
//!    preparation time) is enumerated once over the shared index;
//! 2. embeddings are partitioned by group key — no per-group re-preparation,
//!    no attack-graph recomputation, no per-group index rebuild;
//! 3. one [`CertaintyChecker`] is shared by all groups: its memo keys include
//!    the frozen group variables, so certainty sub-problems proved for one
//!    group are reused by every other group;
//! 4. `range` derives both bounds from the same per-group analysis instead
//!    of running the pipeline twice.
//!
//! The exact-enumeration fallback is the only path that constructs further
//! indexes (one per enumerated repair, by design).

use crate::classify::{classify_with_domain, Classification};
use crate::error::CoreError;
use crate::exact::{exact_bounds, ExactBounds};
use crate::forall::{
    analyse_group_with_embeddings, embeddings_compiled, Binding, CertaintyChecker, CompiledLevels,
    ForallAnalysis,
};
use crate::glb::{global_extremum, optimal_aggregate, Choice};
use crate::index::DbIndex;
use crate::prepared::PreparedAggQuery;
use crate::rewrite::{rewriting_for, BoundKind, Rewriting};
use rcqa_data::{AggFunc, DatabaseInstance, NumericDomain, Rational, Schema, Value};
use rcqa_query::{AggQuery, Term, Var};
use std::collections::BTreeMap;

/// How an answer was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Theorem 6.1 / 7.11 rewriting semantics, evaluated operationally over
    /// ∀embeddings.
    Rewriting,
    /// Theorem 7.10 semantics: plain extremum over all embeddings (MIN's glb,
    /// MAX's lub).
    PlainExtremum,
    /// Exhaustive repair enumeration (exact fallback).
    ExactEnumeration,
}

/// One bound of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundAnswer {
    /// The bound, or `None` for the distinguished answer `⊥`.
    pub value: Option<Rational>,
    /// How the bound was computed.
    pub method: Method,
}

/// The `[glb, lub]` interval for one group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupRange {
    /// The group key (empty for closed queries).
    pub key: Vec<Value>,
    /// Greatest lower bound, if requested.
    pub glb: Option<BoundAnswer>,
    /// Least upper bound, if requested.
    pub lub: Option<BoundAnswer>,
}

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Allow falling back to exhaustive repair enumeration when no rewriting
    /// is known for the requested bound.
    pub allow_exact_fallback: bool,
    /// Maximum number of repairs the exact fallback may enumerate.
    pub max_repairs: u128,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            allow_exact_fallback: true,
            max_repairs: 1 << 22,
        }
    }
}

/// How one bound of the query is evaluated: `combine` aggregates independent
/// branches, `choice` resolves alternatives within a block, and the flag
/// selects the Theorem 7.10 plain-extremum shortcut.
type Strategy = (AggFunc, Choice, bool);

/// The range-consistent query answering engine for one aggregation query.
#[derive(Clone, Debug)]
pub struct RangeCqa {
    prepared: PreparedAggQuery,
    schema: Schema,
    options: EngineOptions,
}

impl RangeCqa {
    /// Validates and prepares the query.
    pub fn new(query: &AggQuery, schema: &Schema) -> Result<RangeCqa, CoreError> {
        Ok(RangeCqa {
            prepared: PreparedAggQuery::new(query, schema)?,
            schema: schema.clone(),
            options: EngineOptions::default(),
        })
    }

    /// Overrides the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> RangeCqa {
        self.options = options;
        self
    }

    /// The prepared query.
    pub fn prepared(&self) -> &PreparedAggQuery {
        &self.prepared
    }

    /// Classifies the query for the given numeric domain.
    pub fn classification(&self, domain: NumericDomain) -> Result<Classification, CoreError> {
        classify_with_domain(&self.prepared.original, &self.schema, domain)
    }

    /// The symbolic AGGR\[FOL\] rewriting for the requested bound, if one is
    /// known (Theorems 6.1, 7.10, 7.11).
    pub fn rewriting(&self, bound: BoundKind) -> Option<Rewriting> {
        rewriting_for(&self.prepared, bound)
    }

    /// Computes the greatest lower bound for every group.
    ///
    /// Builds exactly one [`DbIndex`] regardless of the number of groups.
    pub fn glb(&self, db: &DatabaseInstance) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        let index = DbIndex::new(db);
        let groups = self.evaluate(db, &index, true, false)?;
        Ok(groups
            .into_iter()
            .map(|g| (g.key, g.glb.expect("glb was requested")))
            .collect())
    }

    /// Computes the least upper bound for every group.
    ///
    /// Builds exactly one [`DbIndex`] regardless of the number of groups.
    pub fn lub(&self, db: &DatabaseInstance) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        let index = DbIndex::new(db);
        let groups = self.evaluate(db, &index, false, true)?;
        Ok(groups
            .into_iter()
            .map(|g| (g.key, g.lub.expect("lub was requested")))
            .collect())
    }

    /// Computes both bounds for every group.
    ///
    /// Builds exactly one [`DbIndex`] and derives both bounds from one shared
    /// per-group analysis (a single join pass, a single certainty memo).
    pub fn range(&self, db: &DatabaseInstance) -> Result<Vec<GroupRange>, CoreError> {
        let index = DbIndex::new(db);
        self.evaluate(db, &index, true, true)
    }

    /// The per-bound strategy of the module-level table, or `None` when only
    /// exact enumeration is sound.
    fn strategy_for(&self, bound: BoundKind, domain: NumericDomain) -> Option<Strategy> {
        if !self.prepared.body.is_acyclic() {
            return None;
        }
        let agg = self.prepared.normalised.agg;
        // The Theorem 6.1 rewriting for SUM requires monotonicity, which in
        // turn requires numeric columns over Q≥0 (Section 7.3).
        let sum_ok = agg != AggFunc::Sum || domain == NumericDomain::NonNegative;
        match (bound, agg) {
            (BoundKind::Glb, AggFunc::Sum) if sum_ok => {
                Some((AggFunc::Sum, Choice::Minimise, false))
            }
            (BoundKind::Glb, AggFunc::Max) => Some((AggFunc::Max, Choice::Minimise, false)),
            (BoundKind::Glb, AggFunc::Min) => Some((AggFunc::Min, Choice::Minimise, true)),
            (BoundKind::Lub, AggFunc::Max) => Some((AggFunc::Max, Choice::Maximise, true)),
            (BoundKind::Lub, AggFunc::Min) => Some((AggFunc::Min, Choice::Maximise, false)),
            _ => None,
        }
    }

    /// The shared evaluation pipeline behind `glb`/`lub`/`range`.
    fn evaluate(
        &self,
        db: &DatabaseInstance,
        index: &DbIndex,
        want_glb: bool,
        want_lub: bool,
    ) -> Result<Vec<GroupRange>, CoreError> {
        let domain = db.numeric_domain();
        let glb_strategy = want_glb.then(|| self.strategy_for(BoundKind::Glb, domain));
        let lub_strategy = want_lub.then(|| self.strategy_for(BoundKind::Lub, domain));
        let needs_analysis = glb_strategy.flatten().is_some() || lub_strategy.flatten().is_some();
        let needs_forall = glb_strategy
            .flatten()
            .map(|(_, _, plain)| !plain)
            .unwrap_or(false)
            || lub_strategy
                .flatten()
                .map(|(_, _, plain)| !plain)
                .unwrap_or(false);

        // One compilation of the (closed) body; one certainty checker whose
        // memo is shared by every group.
        let compiled = CompiledLevels::new(self.prepared.body.levels());
        let checker = CertaintyChecker::with_compiled(compiled.clone(), index);

        let free = self.prepared.normalised.body.free_vars().to_vec();
        let groups: Vec<(Vec<Value>, Vec<Binding>)> = if free.is_empty() {
            let embs = if needs_analysis {
                embeddings_compiled(&compiled, index, &compiled.binding())
            } else {
                Vec::new()
            };
            vec![(Vec::new(), embs)]
        } else {
            partition_groups(&self.prepared, index, &compiled, &free, needs_analysis)
        };

        // Slots of the free variables in the closed body's table, for seeding
        // per-group base bindings. (With an acyclic body every free variable
        // occurs in some atom and therefore has a slot.)
        let free_slots: Vec<Option<usize>> =
            free.iter().map(|v| compiled.table().slot(v)).collect();

        let mut out = Vec::with_capacity(groups.len());
        for (key, embs) in groups {
            let analysis = if needs_analysis {
                let mut base = compiled.binding();
                for (slot, value) in free_slots.iter().zip(key.iter()) {
                    if let Some(s) = slot {
                        base.set_slot(*s, value.clone());
                    }
                }
                Some(analyse_group_with_embeddings(
                    &checker,
                    &base,
                    embs,
                    needs_forall,
                ))
            } else {
                None
            };
            let mut exact_cache: Option<ExactBounds> = None;
            let glb = match glb_strategy {
                Some(strategy) => Some(self.bound_answer(
                    BoundKind::Glb,
                    strategy,
                    analysis.as_ref(),
                    &key,
                    db,
                    &mut exact_cache,
                )?),
                None => None,
            };
            let lub = match lub_strategy {
                Some(strategy) => Some(self.bound_answer(
                    BoundKind::Lub,
                    strategy,
                    analysis.as_ref(),
                    &key,
                    db,
                    &mut exact_cache,
                )?),
                None => None,
            };
            out.push(GroupRange { key, glb, lub });
        }
        Ok(out)
    }

    /// Computes one bound of one group from the shared analysis (or the
    /// cached exact enumeration when no rewriting applies).
    fn bound_answer(
        &self,
        bound: BoundKind,
        strategy: Option<Strategy>,
        analysis: Option<&ForallAnalysis>,
        key: &[Value],
        db: &DatabaseInstance,
        exact_cache: &mut Option<ExactBounds>,
    ) -> Result<BoundAnswer, CoreError> {
        let term = &self.prepared.normalised.term;
        match strategy {
            Some((combine, choice, plain_extremum)) => {
                let analysis = analysis.expect("rewriting strategies require the analysis");
                let method = if plain_extremum {
                    Method::PlainExtremum
                } else {
                    Method::Rewriting
                };
                if !analysis.certain {
                    return Ok(BoundAnswer {
                        value: None,
                        method,
                    });
                }
                let value = if plain_extremum {
                    // Theorem 7.10 (GLB of MIN) and its mirror (LUB of MAX).
                    global_extremum(&analysis.embeddings, term, choice == Choice::Maximise)
                } else {
                    optimal_aggregate(
                        self.prepared.body.levels(),
                        &analysis.forall_embeddings,
                        term,
                        combine,
                        choice,
                    )
                };
                Ok(BoundAnswer { value, method })
            }
            None => {
                if !self.options.allow_exact_fallback {
                    return Err(CoreError::UnsupportedAggregate {
                        reason: format!(
                            "no AGGR[FOL] rewriting is known for {bound:?} of {} and the \
                             exact fallback is disabled",
                            self.prepared.normalised.agg
                        ),
                    });
                }
                let bounds = match exact_cache {
                    Some(bounds) => *bounds,
                    None => {
                        let computed = if key.is_empty() {
                            exact_bounds(&self.prepared, db, self.options.max_repairs)?
                        } else {
                            let closed = substitute_group(&self.prepared, key)?;
                            exact_bounds(&closed, db, self.options.max_repairs)?
                        };
                        *exact_cache = Some(computed);
                        computed
                    }
                };
                let value = match bound {
                    BoundKind::Glb => bounds.glb,
                    BoundKind::Lub => bounds.lub,
                };
                Ok(BoundAnswer {
                    value,
                    method: Method::ExactEnumeration,
                })
            }
        }
    }
}

/// Enumerates the open body once over the shared index and partitions the
/// embeddings by group key, re-expressed over the closed body's slot table
/// (so downstream certainty checks need no per-group re-preparation).
fn partition_groups(
    prepared: &PreparedAggQuery,
    index: &DbIndex,
    closed: &CompiledLevels,
    free: &[Var],
    keep_embeddings: bool,
) -> Vec<(Vec<Value>, Vec<Binding>)> {
    let open = CompiledLevels::new(prepared.open_levels());
    let open_embeddings = embeddings_compiled(&open, index, &open.binding());
    let free_slots: Vec<usize> = free
        .iter()
        .map(|v| {
            open.table()
                .slot(v)
                .expect("free variable occurs in the open body")
        })
        .collect();
    // Slot remapping open → closed (same variable set, possibly different
    // topological order). Unknown slots only arise for cyclic closed bodies,
    // whose evaluation never consumes the embeddings.
    let remap: Vec<Option<usize>> = open
        .table()
        .vars()
        .iter()
        .map(|v| closed.table().slot(v))
        .collect();
    let mut groups: BTreeMap<Vec<Value>, Vec<Binding>> = BTreeMap::new();
    for theta in open_embeddings {
        let slots = theta.slots();
        let key: Vec<Value> = free_slots
            .iter()
            .map(|&s| slots[s].clone().expect("free variable bound by embedding"))
            .collect();
        let bucket = groups.entry(key).or_default();
        if keep_embeddings {
            let mut closed_slots: Vec<Option<Value>> = vec![None; closed.table().len()];
            for (o, c) in remap.iter().enumerate() {
                if let Some(c) = c {
                    closed_slots[*c] = slots[o].clone();
                }
            }
            bucket.push(Binding::from_slots(closed.table().clone(), closed_slots));
        }
    }
    groups.into_iter().collect()
}

/// Enumerates the candidate group keys of a query with free variables: the
/// distinct projections, onto the GROUP BY variables, of the embeddings of
/// the body in `db` (Section 6.2: range semantics instantiate the free
/// variables with every possible tuple of constants; tuples with no embedding
/// at all have answer `⊥` in every repair and are not reported).
pub fn candidate_groups(prepared: &PreparedAggQuery, db: &DatabaseInstance) -> Vec<Vec<Value>> {
    let index = DbIndex::new(db);
    candidate_groups_with_index(prepared, &index)
}

/// Like [`candidate_groups`], but reuses a prebuilt [`DbIndex`].
pub fn candidate_groups_with_index(
    prepared: &PreparedAggQuery,
    index: &DbIndex,
) -> Vec<Vec<Value>> {
    let free = prepared.normalised.body.free_vars().to_vec();
    if free.is_empty() {
        return vec![Vec::new()];
    }
    let compiled = CompiledLevels::new(prepared.open_levels());
    partition_groups(prepared, index, &compiled, &free, false)
        .into_iter()
        .map(|(key, _)| key)
        .collect()
}

/// Substitutes a group key for the free variables of a query, producing a
/// closed prepared query (Section 6.2: free variables are treated as
/// constants).
///
/// The one-pass pipeline no longer calls this per group for rewriting-backed
/// strategies; it remains the entry into the exact-enumeration fallback and
/// the repair-enumeration baselines.
pub fn substitute_group(
    prepared: &PreparedAggQuery,
    key: &[Value],
) -> Result<PreparedAggQuery, CoreError> {
    let free = prepared.original.body.free_vars().to_vec();
    assert_eq!(free.len(), key.len(), "group key arity mismatch");
    let subst: BTreeMap<Var, Term> = free
        .iter()
        .cloned()
        .zip(key.iter().cloned().map(Term::Const))
        .collect();
    let new_body = rcqa_query::ConjunctiveQuery::boolean(
        prepared
            .original
            .body
            .atoms()
            .iter()
            .map(|a| a.substitute(&subst)),
    );
    let closed = AggQuery::new(
        prepared.original.agg,
        prepared.original.term.clone(),
        new_body,
    );
    PreparedAggQuery::new(&closed, &prepared.body.schema().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    #[test]
    fn closed_sum_query_end_to_end() {
        let db = db_stock();
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb.len(), 1);
        assert_eq!(glb[0].1.value, Some(rat(70)));
        assert_eq!(glb[0].1.method, Method::Rewriting);
        // LUB of SUM has no known rewriting: exact fallback.
        let lub = engine.lub(&db).unwrap();
        assert_eq!(lub[0].1.value, Some(rat(96)));
        assert_eq!(lub[0].1.method, Method::ExactEnumeration);
        // Both bounds agree with exhaustive enumeration.
        let bounds = exact_bounds(engine.prepared(), &db, 1 << 20).unwrap();
        assert_eq!(bounds.glb, glb[0].1.value);
        assert_eq!(bounds.lub, lub[0].1.value);
    }

    #[test]
    fn group_by_query_reports_each_dealer() {
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let ranges = engine.range(&db).unwrap();
        assert_eq!(ranges.len(), 2);
        let by_name: BTreeMap<String, &GroupRange> =
            ranges.iter().map(|r| (r.key[0].to_string(), r)).collect();
        // James is certainly in Boston: glb = 35 + 35 = 70, lub = 40 + 35 = 75.
        let james = by_name["James"];
        assert_eq!(james.glb.unwrap().value, Some(rat(70)));
        assert_eq!(james.lub.unwrap().value, Some(rat(75)));
        // Smith: glb = 70 (Boston with minimum quantities), lub = 96 (New York).
        let smith = by_name["Smith"];
        assert_eq!(smith.glb.unwrap().value, Some(rat(70)));
        assert_eq!(smith.lub.unwrap().value, Some(rat(96)));
    }

    #[test]
    fn bottom_answer_for_uncertain_group() {
        let db = db_stock();
        // Tesla Z is never in stock: the closed query is falsified by every
        // repair, so both bounds are ⊥... in fact there is no candidate group,
        // so test the closed variant directly.
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla Y', t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        // Tesla Y is stocked in both Boston and New York, so the query is
        // certain.
        assert!(glb[0].1.value.is_some());

        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        // Tesla X is only in Boston; if Smith operates in New York the query
        // fails, hence ⊥.
        assert_eq!(glb[0].1.value, None);
    }

    #[test]
    fn min_max_strategies() {
        let db = db_stock();
        let q = parse_agg_query("MIN(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.value, Some(rat(35)));
        assert_eq!(glb[0].1.method, Method::PlainExtremum);
        let lub = engine.lub(&db).unwrap();
        // LUB of MIN: Smith in New York with the 96-quantity fact chosen.
        assert_eq!(lub[0].1.value, Some(rat(96)));
        assert_eq!(lub[0].1.method, Method::Rewriting);

        let q = parse_agg_query("MAX(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        let lub = engine.lub(&db).unwrap();
        assert_eq!(lub[0].1.method, Method::PlainExtremum);
        // Cross-check against exhaustive enumeration.
        let bounds = exact_bounds(engine.prepared(), &db, 1 << 20).unwrap();
        assert_eq!(glb[0].1.value, bounds.glb);
        assert_eq!(lub[0].1.value, bounds.lub);
    }

    #[test]
    fn avg_uses_exact_fallback_and_can_be_disabled() {
        let db = db_stock();
        let q = parse_agg_query("AVG(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.method, Method::ExactEnumeration);
        assert_eq!(glb[0].1.value, Some(rat(35)));

        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_options(EngineOptions {
                allow_exact_fallback: false,
                max_repairs: 1 << 20,
            });
        assert!(matches!(
            engine.glb(&db),
            Err(CoreError::UnsupportedAggregate { .. })
        ));
    }

    #[test]
    fn count_queries_use_rewriting() {
        let db = db_stock();
        let q = parse_agg_query("COUNT(*) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.value, Some(rat(1)));
        assert_eq!(glb[0].1.method, Method::Rewriting);
    }

    #[test]
    fn negative_numbers_disable_the_sum_rewriting() {
        // Section 7.3: with -1 allowed, the SUM rewriting is no longer sound;
        // the engine must fall back to exact enumeration.
        let schema = Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new_unconstrained(schema);
        db.insert_all([
            fact!("S1", "u", "c1"),
            fact!("S1", "u", "d"),
            fact!("S2", "v", "c2"),
            fact!("T", "u", "v", -1),
            fact!("T", "bot", "bot", 0),
            fact!("S1", "bot", "c1"),
            fact!("S2", "bot", "c2"),
        ])
        .unwrap();
        let q = parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.method, Method::ExactEnumeration);
    }

    #[test]
    fn one_index_build_per_call() {
        // The acceptance criterion of the one-pass pipeline: each of glb,
        // lub, and range constructs exactly one DbIndex, even with GROUP BY
        // (rewriting-backed strategies only; the exact fallback enumerates
        // repairs and indexes each repair by design). MAX is rewriting-backed
        // for both bounds.
        let db = db_stock();
        let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();

        let before = DbIndex::builds_on_this_thread();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(
            DbIndex::builds_on_this_thread() - before,
            1,
            "glb must build exactly one index"
        );
        assert_eq!(glb.len(), 2);

        let before = DbIndex::builds_on_this_thread();
        let lub = engine.lub(&db).unwrap();
        assert_eq!(
            DbIndex::builds_on_this_thread() - before,
            1,
            "lub must build exactly one index"
        );
        assert_eq!(lub.len(), 2);

        let before = DbIndex::builds_on_this_thread();
        let ranges = engine.range(&db).unwrap();
        assert_eq!(
            DbIndex::builds_on_this_thread() - before,
            1,
            "range must build exactly one index"
        );
        assert_eq!(ranges.len(), 2);

        // The closed variant holds the invariant too.
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let before = DbIndex::builds_on_this_thread();
        engine.glb(&db).unwrap();
        assert_eq!(DbIndex::builds_on_this_thread() - before, 1);
    }

    #[test]
    fn grouped_range_matches_per_bound_calls() {
        // range() shares one analysis between the bounds; it must agree with
        // independent glb()/lub() calls.
        let db = db_stock();
        for text in [
            "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, MIN(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, AVG(y)) <- Dealers(x, t), Stock(p, t, y)",
        ] {
            let q = parse_agg_query(text).unwrap();
            let engine = RangeCqa::new(&q, db.schema()).unwrap();
            let ranges = engine.range(&db).unwrap();
            let glb = engine.glb(&db).unwrap();
            let lub = engine.lub(&db).unwrap();
            assert_eq!(ranges.len(), glb.len(), "{text}");
            for (range, (gk, g)) in ranges.iter().zip(glb.iter()) {
                assert_eq!(&range.key, gk, "{text}");
                assert_eq!(range.glb.as_ref().unwrap(), g, "{text}");
            }
            for (range, (lk, l)) in ranges.iter().zip(lub.iter()) {
                assert_eq!(&range.key, lk, "{text}");
                assert_eq!(range.lub.as_ref().unwrap(), l, "{text}");
            }
        }
    }

    #[test]
    fn candidate_groups_are_sorted_and_complete() {
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let prepared = PreparedAggQuery::new(&q, db.schema()).unwrap();
        let groups = candidate_groups(&prepared, &db);
        assert_eq!(
            groups,
            vec![vec![Value::text("James")], vec![Value::text("Smith")]]
        );
    }
}
