//! The top-level range-CQA engine: classify a query, pick an evaluation
//! strategy per bound (rewriting-based, plain extremum, or exact fallback),
//! and compute per-group `[glb, lub]` answers on a database instance.

use crate::classify::{classify_with_domain, Classification};
use crate::error::CoreError;
use crate::exact::exact_bounds;
use crate::forall::{analyse_with_index, embeddings, Binding};
use crate::glb::{global_extremum, optimal_aggregate, Choice};
use crate::index::DbIndex;
use crate::prepared::PreparedAggQuery;
use crate::rewrite::{rewriting_for, BoundKind, Rewriting};
use rcqa_data::{AggFunc, DatabaseInstance, NumericDomain, Rational, Schema, Value};
use rcqa_query::{AggQuery, Term, Var};
use std::collections::{BTreeMap, BTreeSet};

/// How an answer was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Theorem 6.1 / 7.11 rewriting semantics, evaluated operationally over
    /// ∀embeddings.
    Rewriting,
    /// Theorem 7.10 semantics: plain extremum over all embeddings (MIN's glb,
    /// MAX's lub).
    PlainExtremum,
    /// Exhaustive repair enumeration (exact fallback).
    ExactEnumeration,
}

/// One bound of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundAnswer {
    /// The bound, or `None` for the distinguished answer `⊥`.
    pub value: Option<Rational>,
    /// How the bound was computed.
    pub method: Method,
}

/// The `[glb, lub]` interval for one group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupRange {
    /// The group key (empty for closed queries).
    pub key: Vec<Value>,
    /// Greatest lower bound, if requested.
    pub glb: Option<BoundAnswer>,
    /// Least upper bound, if requested.
    pub lub: Option<BoundAnswer>,
}

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Allow falling back to exhaustive repair enumeration when no rewriting
    /// is known for the requested bound.
    pub allow_exact_fallback: bool,
    /// Maximum number of repairs the exact fallback may enumerate.
    pub max_repairs: u128,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            allow_exact_fallback: true,
            max_repairs: 1 << 22,
        }
    }
}

/// The range-consistent query answering engine for one aggregation query.
#[derive(Clone, Debug)]
pub struct RangeCqa {
    prepared: PreparedAggQuery,
    schema: Schema,
    options: EngineOptions,
}

impl RangeCqa {
    /// Validates and prepares the query.
    pub fn new(query: &AggQuery, schema: &Schema) -> Result<RangeCqa, CoreError> {
        Ok(RangeCqa {
            prepared: PreparedAggQuery::new(query, schema)?,
            schema: schema.clone(),
            options: EngineOptions::default(),
        })
    }

    /// Overrides the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> RangeCqa {
        self.options = options;
        self
    }

    /// The prepared query.
    pub fn prepared(&self) -> &PreparedAggQuery {
        &self.prepared
    }

    /// Classifies the query for the given numeric domain.
    pub fn classification(&self, domain: NumericDomain) -> Result<Classification, CoreError> {
        classify_with_domain(&self.prepared.original, &self.schema, domain)
    }

    /// The symbolic AGGR\[FOL\] rewriting for the requested bound, if one is
    /// known (Theorems 6.1, 7.10, 7.11).
    pub fn rewriting(&self, bound: BoundKind) -> Option<Rewriting> {
        rewriting_for(&self.prepared, bound)
    }

    /// Computes the greatest lower bound for every group.
    pub fn glb(&self, db: &DatabaseInstance) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        self.bound(db, BoundKind::Glb)
    }

    /// Computes the least upper bound for every group.
    pub fn lub(&self, db: &DatabaseInstance) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        self.bound(db, BoundKind::Lub)
    }

    /// Computes both bounds for every group.
    pub fn range(&self, db: &DatabaseInstance) -> Result<Vec<GroupRange>, CoreError> {
        let glb = self.glb(db)?;
        let lub = self.lub(db)?;
        let mut by_key: BTreeMap<Vec<Value>, GroupRange> = BTreeMap::new();
        for (key, b) in glb {
            by_key
                .entry(key.clone())
                .or_insert(GroupRange {
                    key,
                    glb: None,
                    lub: None,
                })
                .glb = Some(b);
        }
        for (key, b) in lub {
            by_key
                .entry(key.clone())
                .or_insert(GroupRange {
                    key,
                    glb: None,
                    lub: None,
                })
                .lub = Some(b);
        }
        Ok(by_key.into_values().collect())
    }

    fn bound(
        &self,
        db: &DatabaseInstance,
        bound: BoundKind,
    ) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        if self.prepared.normalised.is_closed() {
            let answer = self.closed_bound(&self.prepared, db, bound)?;
            return Ok(vec![(Vec::new(), answer)]);
        }
        let groups = candidate_groups(&self.prepared, db);
        let mut out = Vec::with_capacity(groups.len());
        for key in groups {
            let closed = substitute_group(&self.prepared, &key)?;
            let answer = self.closed_bound(&closed, db, bound)?;
            out.push((key, answer));
        }
        Ok(out)
    }

    fn closed_bound(
        &self,
        prepared: &PreparedAggQuery,
        db: &DatabaseInstance,
        bound: BoundKind,
    ) -> Result<BoundAnswer, CoreError> {
        let agg = prepared.normalised.agg;
        let domain = db.numeric_domain();
        // The Theorem 6.1 rewriting for SUM requires monotonicity, which in
        // turn requires numeric columns over Q≥0 (Section 7.3).
        let sum_ok = agg != AggFunc::Sum || domain == NumericDomain::NonNegative;
        let strategy: Option<(AggFunc, Choice, bool)> = if !prepared.body.is_acyclic() {
            None
        } else {
            match (bound, agg) {
                (BoundKind::Glb, AggFunc::Sum) if sum_ok => {
                    Some((AggFunc::Sum, Choice::Minimise, false))
                }
                (BoundKind::Glb, AggFunc::Max) => Some((AggFunc::Max, Choice::Minimise, false)),
                (BoundKind::Glb, AggFunc::Min) => Some((AggFunc::Min, Choice::Minimise, true)),
                (BoundKind::Lub, AggFunc::Max) => Some((AggFunc::Max, Choice::Maximise, true)),
                (BoundKind::Lub, AggFunc::Min) => Some((AggFunc::Min, Choice::Maximise, false)),
                _ => None,
            }
        };
        match strategy {
            Some((combine, choice, plain_extremum)) => {
                let index = DbIndex::new(db);
                let analysis = analyse_with_index(&prepared.body, &index);
                if !analysis.certain {
                    return Ok(BoundAnswer {
                        value: None,
                        method: if plain_extremum {
                            Method::PlainExtremum
                        } else {
                            Method::Rewriting
                        },
                    });
                }
                if plain_extremum {
                    // Theorem 7.10 (GLB of MIN) and its mirror (LUB of MAX).
                    let maximise = choice == Choice::Maximise;
                    let value =
                        global_extremum(&analysis.embeddings, &prepared.normalised.term, maximise);
                    Ok(BoundAnswer {
                        value,
                        method: Method::PlainExtremum,
                    })
                } else {
                    let value = optimal_aggregate(
                        prepared.body.levels(),
                        &analysis.forall_embeddings,
                        &prepared.normalised.term,
                        combine,
                        choice,
                    );
                    Ok(BoundAnswer {
                        value,
                        method: Method::Rewriting,
                    })
                }
            }
            None => {
                if !self.options.allow_exact_fallback {
                    return Err(CoreError::UnsupportedAggregate {
                        reason: format!(
                            "no AGGR[FOL] rewriting is known for {bound:?} of {agg} and the \
                             exact fallback is disabled"
                        ),
                    });
                }
                let bounds = exact_bounds(prepared, db, self.options.max_repairs)?;
                let value = match bound {
                    BoundKind::Glb => bounds.glb,
                    BoundKind::Lub => bounds.lub,
                };
                Ok(BoundAnswer {
                    value,
                    method: Method::ExactEnumeration,
                })
            }
        }
    }
}

/// Enumerates the candidate group keys of a query with free variables: the
/// distinct projections, onto the GROUP BY variables, of the embeddings of
/// the body in `db` (Section 6.2: range semantics instantiate the free
/// variables with every possible tuple of constants; tuples with no embedding
/// at all have answer `⊥` in every repair and are not reported).
pub fn candidate_groups(prepared: &PreparedAggQuery, db: &DatabaseInstance) -> Vec<Vec<Value>> {
    let free = prepared.normalised.body.free_vars();
    if free.is_empty() {
        return vec![Vec::new()];
    }
    // Re-prepare the body with no free variables so that the join enumerates
    // values for them too.
    let open_body = rcqa_query::ConjunctiveQuery::boolean(
        prepared.normalised.body.atoms().iter().cloned(),
    );
    let open = match crate::prepared::PreparedBody::new(&open_body, db.schema()) {
        Ok(p) => p,
        Err(_) => return Vec::new(),
    };
    let index = DbIndex::new(db);
    let levels: Vec<crate::prepared::Level> = if open.is_acyclic() {
        open.levels().to_vec()
    } else {
        // Enumeration does not need a topological sort; build pseudo levels in
        // query order.
        open_body
            .atoms()
            .iter()
            .map(|atom| crate::prepared::Level {
                atom: atom.clone(),
                key_len: db
                    .schema()
                    .signature(atom.relation())
                    .map(|s| s.key_len())
                    .unwrap_or(atom.arity()),
                new_key_vars: Vec::new(),
                new_other_vars: Vec::new(),
                prefix_vars: Vec::new(),
            })
            .collect()
    };
    let embs = embeddings(&levels, &index, &Binding::new());
    let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
    for e in embs {
        let key: Vec<Value> = free
            .iter()
            .map(|v| e.get(v).cloned().expect("free variable bound by embedding"))
            .collect();
        seen.insert(key);
    }
    seen.into_iter().collect()
}

/// Substitutes a group key for the free variables of a query, producing a
/// closed prepared query (Section 6.2: free variables are treated as
/// constants).
pub fn substitute_group(
    prepared: &PreparedAggQuery,
    key: &[Value],
) -> Result<PreparedAggQuery, CoreError> {
    let free = prepared.original.body.free_vars().to_vec();
    assert_eq!(free.len(), key.len(), "group key arity mismatch");
    let subst: BTreeMap<Var, Term> = free
        .iter()
        .cloned()
        .zip(key.iter().cloned().map(Term::Const))
        .collect();
    let new_body = rcqa_query::ConjunctiveQuery::boolean(
        prepared
            .original
            .body
            .atoms()
            .iter()
            .map(|a| a.substitute(&subst)),
    );
    let closed = AggQuery::new(
        prepared.original.agg,
        prepared.original.term.clone(),
        new_body,
    );
    PreparedAggQuery::new(&closed, &prepared.body.schema().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    #[test]
    fn closed_sum_query_end_to_end() {
        let db = db_stock();
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb.len(), 1);
        assert_eq!(glb[0].1.value, Some(rat(70)));
        assert_eq!(glb[0].1.method, Method::Rewriting);
        // LUB of SUM has no known rewriting: exact fallback.
        let lub = engine.lub(&db).unwrap();
        assert_eq!(lub[0].1.value, Some(rat(96)));
        assert_eq!(lub[0].1.method, Method::ExactEnumeration);
        // Both bounds agree with exhaustive enumeration.
        let bounds = exact_bounds(engine.prepared(), &db, 1 << 20).unwrap();
        assert_eq!(bounds.glb, glb[0].1.value);
        assert_eq!(bounds.lub, lub[0].1.value);
    }

    #[test]
    fn group_by_query_reports_each_dealer() {
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let ranges = engine.range(&db).unwrap();
        assert_eq!(ranges.len(), 2);
        let by_name: BTreeMap<String, &GroupRange> = ranges
            .iter()
            .map(|r| (r.key[0].to_string(), r))
            .collect();
        // James is certainly in Boston: glb = 35 + 35 = 70, lub = 40 + 35 = 75.
        let james = by_name["James"];
        assert_eq!(james.glb.unwrap().value, Some(rat(70)));
        assert_eq!(james.lub.unwrap().value, Some(rat(75)));
        // Smith: glb = 70 (Boston with minimum quantities), lub = 96 (New York).
        let smith = by_name["Smith"];
        assert_eq!(smith.glb.unwrap().value, Some(rat(70)));
        assert_eq!(smith.lub.unwrap().value, Some(rat(96)));
    }

    #[test]
    fn bottom_answer_for_uncertain_group() {
        let db = db_stock();
        // Tesla Z is never in stock: the closed query is falsified by every
        // repair, so both bounds are ⊥... in fact there is no candidate group,
        // so test the closed variant directly.
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla Y', t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        // Tesla Y is stocked in both Boston and New York, so the query is
        // certain.
        assert!(glb[0].1.value.is_some());

        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        // Tesla X is only in Boston; if Smith operates in New York the query
        // fails, hence ⊥.
        assert_eq!(glb[0].1.value, None);
    }

    #[test]
    fn min_max_strategies() {
        let db = db_stock();
        let q = parse_agg_query("MIN(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.value, Some(rat(35)));
        assert_eq!(glb[0].1.method, Method::PlainExtremum);
        let lub = engine.lub(&db).unwrap();
        // LUB of MIN: Smith in New York with the 96-quantity fact chosen.
        assert_eq!(lub[0].1.value, Some(rat(96)));
        assert_eq!(lub[0].1.method, Method::Rewriting);

        let q = parse_agg_query("MAX(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        let lub = engine.lub(&db).unwrap();
        assert_eq!(lub[0].1.method, Method::PlainExtremum);
        // Cross-check against exhaustive enumeration.
        let bounds = exact_bounds(engine.prepared(), &db, 1 << 20).unwrap();
        assert_eq!(glb[0].1.value, bounds.glb);
        assert_eq!(lub[0].1.value, bounds.lub);
    }

    #[test]
    fn avg_uses_exact_fallback_and_can_be_disabled() {
        let db = db_stock();
        let q = parse_agg_query("AVG(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.method, Method::ExactEnumeration);
        assert_eq!(glb[0].1.value, Some(rat(35)));

        let engine = RangeCqa::new(&q, db.schema()).unwrap().with_options(EngineOptions {
            allow_exact_fallback: false,
            max_repairs: 1 << 20,
        });
        assert!(matches!(
            engine.glb(&db),
            Err(CoreError::UnsupportedAggregate { .. })
        ));
    }

    #[test]
    fn count_queries_use_rewriting() {
        let db = db_stock();
        let q = parse_agg_query("COUNT(*) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.value, Some(rat(1)));
        assert_eq!(glb[0].1.method, Method::Rewriting);
    }

    #[test]
    fn negative_numbers_disable_the_sum_rewriting() {
        // Section 7.3: with -1 allowed, the SUM rewriting is no longer sound;
        // the engine must fall back to exact enumeration.
        let schema = Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new_unconstrained(schema);
        db.insert_all([
            fact!("S1", "u", "c1"),
            fact!("S1", "u", "d"),
            fact!("S2", "v", "c2"),
            fact!("T", "u", "v", -1),
            fact!("T", "bot", "bot", 0),
            fact!("S1", "bot", "c1"),
            fact!("S2", "bot", "c2"),
        ])
        .unwrap();
        let q = parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.method, Method::ExactEnumeration);
    }
}
