//! The top-level range-CQA engine: plan a query, lower the plan to a physical
//! operator pipeline, and execute it (in parallel) on a database instance.
//!
//! ## Evaluation strategies
//!
//! Per `(aggregate, bound)` pair, the logical planner
//! ([`crate::plan::LogicalPlan`]) picks the cheapest sound path (the query
//! body must in addition have an acyclic attack graph for the first two rows;
//! otherwise every cell falls back to exact enumeration):
//!
//! | aggregate            | GLB path                          | LUB path                          |
//! |----------------------|-----------------------------------|-----------------------------------|
//! | `SUM` over `Q≥0`     | Theorem 6.1 rewriting             | exact enumeration                 |
//! | `SUM` with negatives | exact enumeration (Section 7.3)   | exact enumeration                 |
//! | `COUNT` (= `SUM(1)`) | Theorem 6.1 rewriting             | exact enumeration                 |
//! | `MAX`                | Theorem 7.11 rewriting (minimise) | Theorem 7.10 plain extremum       |
//! | `MIN`                | Theorem 7.10 plain extremum       | Theorem 7.11 rewriting (maximise) |
//! | `AVG`, others        | exact enumeration                 | exact enumeration                 |
//!
//! "Rewriting" evaluates the Theorem 6.1 / 7.11 semantics operationally over
//! ∀embeddings ([`crate::glb::optimal_aggregate`]); "plain extremum" takes
//! the extremum over all embeddings ([`crate::glb::global_extremum`]); exact
//! enumeration walks every repair ([`crate::exact::exact_bounds`]) and is
//! exponential in the number of inconsistent blocks.
//!
//! ## Plan-IR lowering
//!
//! The strategies are not dispatched ad hoc: every engine call builds a
//! [`crate::plan::LogicalPlan`] (one [`crate::plan::BoundStrategy`] per
//! requested bound) and lowers it to the physical plan IR of
//! [`crate::plan::physical`] — a linear
//! `Scan → Join → PartitionByGroup → ForallCheck → AggregateBound →
//! RangeMerge` pipeline. `glb`, `lub`, `range`, **and the exhaustive-repair
//! fallback** all execute through that IR (the fallback is the
//! `AggregateBound` operator [`crate::plan::BoundOp::ExactEnumeration`]);
//! there is no per-call strategy branching left in [`RangeCqa`]. The chosen
//! plan is inspectable via [`RangeCqa::plan`] / [`RangeCqa::explain`].
//!
//! ## One-pass grouped evaluation
//!
//! Each public entry point ([`RangeCqa::glb`], [`RangeCqa::lub`],
//! [`RangeCqa::range`]) builds **one** [`DbIndex`] and performs **one** join
//! pass, regardless of the number of GROUP BY groups:
//!
//! 1. the open body (GROUP BY variables un-frozen, level order precomputed at
//!    preparation time) is enumerated once over the shared index (`Scan` +
//!    `Join`);
//! 2. embeddings are partitioned by group key (`PartitionByGroup`) — no
//!    per-group re-preparation, no attack-graph recomputation, no per-group
//!    index rebuild;
//! 3. a memoised [`crate::forall::CertaintyChecker`] is shared across groups
//!    (`ForallCheck`): its memo keys include the frozen group variables, so
//!    certainty sub-problems proved for one group are reused by other groups
//!    evaluated on the same worker;
//! 4. `range` derives both bounds from the same per-group analysis instead
//!    of running the pipeline twice (`AggregateBound`).
//!
//! The exact-enumeration fallback is the only path that constructs further
//! indexes (one per enumerated repair, by design).
//!
//! ## Threading model
//!
//! The executor ([`crate::plan::exec`]) fans the sorted group partitions out
//! over a `std::thread::scope` worker pool at the `PartitionByGroup`
//! boundary. Each worker owns a per-worker memoised certainty checker over
//! the shared read-only index; `RangeMerge` concatenates the contiguous
//! shards in order, so answers are byte-identical at every thread count.
//! Worker count: [`EngineOptions::threads`] if non-zero, else the
//! `RCQA_THREADS` environment variable, else
//! [`std::thread::available_parallelism`].

use crate::classify::{classify_prepared, Classification};
use crate::error::CoreError;
use crate::forall::{embeddings_dirty_pinned_ids, CompiledLevels};
use crate::index::{AccessPath, BlockRestriction, DbIndex, DirtyBlock};
use crate::plan::exec::{execute, execute_for_groups, partition_groups, ExecContext, RowSupport};
use crate::plan::{LogicalPlan, PhysicalPlan};
use crate::prepared::PreparedAggQuery;
use crate::rewrite::{rewriting_for, BoundKind, Rewriting};
use rcqa_data::{DatabaseInstance, NumericDomain, Rational, Schema, Value};
use rcqa_query::{AggQuery, QueryError, Term, Var, VarPredicate};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// How an answer was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Theorem 6.1 / 7.11 rewriting semantics, evaluated operationally over
    /// ∀embeddings.
    Rewriting,
    /// Theorem 7.10 semantics: plain extremum over all embeddings (MIN's glb,
    /// MAX's lub).
    PlainExtremum,
    /// Exhaustive repair enumeration (exact fallback).
    ExactEnumeration,
}

/// One bound of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundAnswer {
    /// The bound, or `None` for the distinguished answer `⊥`.
    pub value: Option<Rational>,
    /// How the bound was computed.
    pub method: Method,
}

/// The `[glb, lub]` interval for one group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupRange {
    /// The group key (empty for closed queries).
    pub key: Vec<Value>,
    /// Greatest lower bound, if requested.
    pub glb: Option<BoundAnswer>,
    /// Least upper bound, if requested.
    pub lub: Option<BoundAnswer>,
}

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Allow falling back to exhaustive repair enumeration when no rewriting
    /// is known for the requested bound.
    pub allow_exact_fallback: bool,
    /// Maximum number of repairs the exact fallback may enumerate.
    pub max_repairs: u128,
    /// Number of executor worker threads for grouped evaluation.
    ///
    /// `0` (the default) resolves at execution time: the `RCQA_THREADS`
    /// environment variable if set to a positive integer, else
    /// [`std::thread::available_parallelism`]. The worker count is always
    /// clamped to the number of groups, so closed queries run inline.
    pub threads: usize,
    /// Disable the cost-based range-seek access path: comparison predicates
    /// on GROUP BY variables are applied as post-aggregation row filters
    /// (every group is evaluated), and restrictions on non-free key
    /// variables fall back to a linear block filter instead of ordered
    /// binary-searched seeks. The answers are identical; only the access
    /// path changes. This is the baseline arm of the seek-vs-scan benchmark.
    pub force_scan: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            allow_exact_fallback: true,
            max_repairs: 1 << 22,
            threads: 0,
            force_scan: false,
        }
    }
}

impl EngineOptions {
    /// Resolves the effective executor worker count: an explicit
    /// [`EngineOptions::threads`] wins, then the `RCQA_THREADS` environment
    /// variable, then the machine's available parallelism.
    pub fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(raw) = std::env::var("RCQA_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// How the comparison predicates of one engine are routed through the
/// pipeline. Every predicate takes exactly one of three sound routes:
///
/// * **block restriction** — the variable sits at a key position of some
///   atom, so every embedding binds it from a block key and whole blocks
///   can be kept or dropped before the join ([`DbIndex::restrict`]);
/// * **row filter** — the variable is a GROUP BY variable, so its value is
///   the (definite) group key component and rows are filtered after
///   aggregation;
/// * **exact embedding filter** — applied inside the exhaustive-repair
///   fallback ([`crate::exact::exact_bounds_filtered`]). Non-free
///   block-restricted predicates also take this route (the exact path
///   re-enumerates the *full* instance), and **residual** predicates
///   (non-free variable at no key position) take it exclusively, forcing
///   [`LogicalPlan::force_exact`].
#[derive(Clone, Debug, Default)]
struct PredicateRouting {
    restrictions: Vec<BlockRestriction>,
    /// `(position in free-variable order, predicate)`.
    row_filters: Vec<(usize, VarPredicate)>,
    exact: Vec<VarPredicate>,
    /// The residual subset of `exact` (non-free variable at no key
    /// position); non-empty forces the exact fallback on every bound.
    residual: Vec<VarPredicate>,
}

impl PredicateRouting {
    /// Whether a residual predicate forces the exact fallback.
    fn forces_exact(&self) -> bool {
        !self.residual.is_empty()
    }

    /// Drops the rows whose group key fails a row filter.
    fn filter_rows(&self, rows: &mut Vec<GroupRange>) {
        if self.row_filters.is_empty() {
            return;
        }
        rows.retain(|g| {
            self.row_filters
                .iter()
                .all(|(pos, p)| p.holds_value(&g.key[*pos]))
        });
    }
}

/// The range-consistent query answering engine for one aggregation query.
#[derive(Clone, Debug)]
pub struct RangeCqa {
    prepared: PreparedAggQuery,
    schema: Schema,
    options: EngineOptions,
    predicates: Vec<VarPredicate>,
}

impl RangeCqa {
    /// Validates and prepares the query.
    pub fn new(query: &AggQuery, schema: &Schema) -> Result<RangeCqa, CoreError> {
        Ok(RangeCqa {
            prepared: PreparedAggQuery::new(query, schema)?,
            schema: schema.clone(),
            options: EngineOptions::default(),
            predicates: Vec::new(),
        })
    }

    /// Overrides the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> RangeCqa {
        self.options = options;
        self
    }

    /// Attaches comparison predicates (`WHERE v < c` and friends). Each
    /// predicate's variable must occur in the query body. Answers are those
    /// of the predicate-filtered query: embeddings whose binding fails a
    /// predicate do not contribute, and a group none of whose embeddings
    /// satisfy every predicate has no row.
    pub fn with_predicates(mut self, predicates: Vec<VarPredicate>) -> Result<RangeCqa, CoreError> {
        for p in &predicates {
            let occurs = self
                .prepared
                .normalised
                .body
                .atoms()
                .iter()
                .any(|a| a.terms().iter().any(|t| t.as_var() == Some(&p.var)));
            if !occurs {
                return Err(CoreError::Query(QueryError::Unsupported(format!(
                    "predicate variable {} does not occur in the query body",
                    p.var
                ))));
            }
        }
        self.predicates = predicates;
        Ok(self)
    }

    /// The attached comparison predicates.
    pub fn predicates(&self) -> &[VarPredicate] {
        &self.predicates
    }

    /// The prepared query.
    pub fn prepared(&self) -> &PreparedAggQuery {
        &self.prepared
    }

    /// Classifies the query for the given numeric domain, reusing the
    /// engine's prepared query (no re-preparation).
    pub fn classification(&self, domain: NumericDomain) -> Classification {
        classify_prepared(&self.prepared, &self.schema, domain)
    }

    /// The symbolic AGGR\[FOL\] rewriting for the requested bound, if one is
    /// known (Theorems 6.1, 7.10, 7.11).
    pub fn rewriting(&self, bound: BoundKind) -> Option<Rewriting> {
        rewriting_for(&self.prepared, bound)
    }

    /// Computes the greatest lower bound for every group.
    ///
    /// Builds exactly one [`DbIndex`] regardless of the number of groups.
    pub fn glb(&self, db: &DatabaseInstance) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        let index = DbIndex::new(db);
        let groups = self.evaluate(db, &index, true, false)?;
        Ok(groups
            .into_iter()
            .map(|g| (g.key, g.glb.expect("glb was requested")))
            .collect())
    }

    /// Computes the least upper bound for every group.
    ///
    /// Builds exactly one [`DbIndex`] regardless of the number of groups.
    pub fn lub(&self, db: &DatabaseInstance) -> Result<Vec<(Vec<Value>, BoundAnswer)>, CoreError> {
        let index = DbIndex::new(db);
        let groups = self.evaluate(db, &index, false, true)?;
        Ok(groups
            .into_iter()
            .map(|g| (g.key, g.lub.expect("lub was requested")))
            .collect())
    }

    /// Computes both bounds for every group.
    ///
    /// Builds exactly one [`DbIndex`] and derives both bounds from one shared
    /// per-group analysis (a single join pass, a single certainty memo).
    pub fn range(&self, db: &DatabaseInstance) -> Result<Vec<GroupRange>, CoreError> {
        let index = DbIndex::new(db);
        self.evaluate(db, &index, true, true)
    }

    /// Like [`RangeCqa::range`], but over a caller-supplied [`DbIndex`] for
    /// `db` — the serving layer keeps one immutable index per snapshot
    /// behind an `Arc<DbIndex>` shared by every concurrent reader, and each
    /// call borrows it (`&*arc`), so repeated calls build **zero** further
    /// indexes (on rewriting-backed paths). `DbIndex` is `Send + Sync`
    /// (asserted in [`crate::index`]): the borrow is handed unchanged to the
    /// executor's worker threads.
    pub fn range_with_index(
        &self,
        db: &DatabaseInstance,
        index: &DbIndex,
    ) -> Result<Vec<GroupRange>, CoreError> {
        self.evaluate(db, index, true, true)
    }

    /// The [`RowSupport`] of this engine's result rows for the given numeric
    /// domain: per body atom, the block-key pattern whose instantiation with
    /// a row's group key over-approximates every block the row's evaluation
    /// can consult. Exhaustive — every block supports every row — when the
    /// plan uses the exact-enumeration fallback on either bound (the
    /// fallback's repair budget depends on the whole instance), which also
    /// covers residual predicates ([`LogicalPlan::force_exact`]).
    ///
    /// The support is data-independent (patterns mention only the query and
    /// the group key), so one computation at preparation time stays valid
    /// for the engine's lifetime: the instance's numeric domain is fixed at
    /// construction and a commit can never change it.
    pub fn row_support(&self, domain: NumericDomain) -> RowSupport {
        let plan = self.logical_plan(domain, true, true).lower(&self.prepared);
        RowSupport::for_plan(&plan, &self.prepared)
    }

    /// The group keys a commit's dirty blocks may have **created** rows for:
    /// the keys of every open-body embedding that draws at least one fact
    /// from a dirty block. Each level is pinned in turn to the dirty blocks
    /// of its relation ([`embeddings_dirty_pinned_ids`]), so a brand-new
    /// embedding — which must pass through a changed block at some level —
    /// is found at that level. Closed queries return the empty set (their
    /// single row's key is always known).
    ///
    /// Retractions need no lookup here: a destroyed embedding belonged to a
    /// cached row, and the cached row's [`RowSupport`] already intersects
    /// the dirty block that carried it.
    pub fn dirty_candidate_keys(
        &self,
        index: &DbIndex,
        dirty: &[DirtyBlock],
    ) -> BTreeSet<Vec<Value>> {
        let mut out = BTreeSet::new();
        let free = self.prepared.normalised.body.free_vars().to_vec();
        if free.is_empty() || dirty.is_empty() {
            return out;
        }
        let routing = self.route_predicates();
        let (view, _access) = self.restricted_view(index, &routing);
        let index = view.as_ref().unwrap_or(index);
        let interner = index.interner();
        // Dirty block keys per relation, in id space. A key with a value this
        // lineage never interned names a block the current index cannot
        // contain — it cannot carry a new embedding and is skipped.
        let mut pinned: HashMap<&str, HashSet<Vec<u32>>> = HashMap::new();
        for block in dirty {
            if let Some(ids) = block
                .key
                .iter()
                .map(|v| interner.id_of(v))
                .collect::<Option<Vec<u32>>>()
            {
                pinned
                    .entry(block.relation.as_str())
                    .or_default()
                    .insert(ids);
            }
        }
        if pinned.is_empty() {
            return out;
        }
        let open = CompiledLevels::new(self.prepared.open_levels());
        let free_slots: Vec<usize> = free
            .iter()
            .map(|v| {
                open.table()
                    .slot(v)
                    .expect("free variable occurs in the open body")
            })
            .collect();
        for (level, lvl) in self.prepared.open_levels().iter().enumerate() {
            let Some(pins) = pinned.get(lvl.atom.relation()) else {
                continue;
            };
            for theta in embeddings_dirty_pinned_ids(&open, index, &open.unbound_ids(), level, pins)
            {
                let key_ids: Vec<u32> = free_slots.iter().map(|&s| theta[s]).collect();
                out.insert(interner.values_of(&key_ids));
            }
        }
        out
    }

    /// Computes both bounds for **only** the groups whose key is in `keys`,
    /// over a caller-supplied index. The returned rows (sorted by group key;
    /// keys with no embedding are absent, exactly as in a full run) are
    /// byte-identical to the corresponding rows of
    /// [`RangeCqa::range_with_index`] — for **every** query shape, including
    /// group keys bound at no block-key position (the executor pins the free
    /// variables per key instead of projecting level-0 block keys; see
    /// [`execute_for_groups`]).
    ///
    /// Like [`RangeCqa::range_with_index`], the index is typically a borrow
    /// of a snapshot's shared `Arc<DbIndex>`; the call never mutates it, so
    /// any number of dirty-group patches may run against one snapshot
    /// concurrently.
    pub fn range_for_groups(
        &self,
        db: &DatabaseInstance,
        index: &DbIndex,
        keys: &BTreeSet<Vec<Value>>,
    ) -> Result<Vec<GroupRange>, CoreError> {
        let routing = self.route_predicates();
        let (view, access) = self.restricted_view(index, &routing);
        let index = view.as_ref().unwrap_or(index);
        let plan = self
            .logical_plan(db.numeric_domain(), true, true)
            .lower_with_access(&self.prepared, &access);
        let cx = ExecContext {
            prepared: &self.prepared,
            db,
            index,
            options: &self.options,
            exact_predicates: &routing.exact,
        };
        let mut rows = execute_for_groups(&plan, &cx, keys)?;
        routing.filter_rows(&mut rows);
        Ok(rows)
    }

    /// The logical plan (strategy per requested bound) for the given numeric
    /// domain. A residual comparison predicate downgrades every bound to the
    /// exhaustive-repair fallback ([`LogicalPlan::force_exact`]).
    pub fn logical_plan(
        &self,
        domain: NumericDomain,
        want_glb: bool,
        want_lub: bool,
    ) -> LogicalPlan {
        let plan = LogicalPlan::new(&self.prepared, domain, want_glb, want_lub);
        if self.route_predicates().forces_exact() {
            plan.force_exact()
        } else {
            plan
        }
    }

    /// The physical plan (lowered operator pipeline) for the given numeric
    /// domain — the exact pipeline `glb`/`lub`/`range` execute, except that
    /// without an instance no access path is chosen and the leaf is always a
    /// full `Scan` ([`RangeCqa::explain`] shows the instance-specific
    /// choice).
    pub fn plan(&self, domain: NumericDomain, want_glb: bool, want_lub: bool) -> PhysicalPlan {
        self.logical_plan(domain, want_glb, want_lub)
            .lower(&self.prepared)
    }

    /// An `EXPLAIN`-style rendering of the physical plan a [`RangeCqa::range`]
    /// call on `db` would execute, including the chosen access path (seek vs
    /// scan, with the stats estimate) and predicate routing. Builds an index
    /// to consult the stats; use [`RangeCqa::explain_with_index`] to reuse a
    /// snapshot's.
    pub fn explain(&self, db: &DatabaseInstance) -> String {
        self.explain_with_index(db, &DbIndex::new(db))
    }

    /// [`RangeCqa::explain`] over a caller-supplied index for `db`.
    pub fn explain_with_index(&self, db: &DatabaseInstance, index: &DbIndex) -> String {
        let routing = self.route_predicates();
        let (_view, access) = self.restricted_view(index, &routing);
        let mut out = self
            .logical_plan(db.numeric_domain(), true, true)
            .lower_with_access(&self.prepared, &access)
            .to_string();
        if !routing.row_filters.is_empty() {
            let shown: Vec<String> = routing
                .row_filters
                .iter()
                .map(|(_, p)| p.to_string())
                .collect();
            out.push_str(&format!(
                "post-filter: rows where {} (group-key predicate{})\n",
                shown.join(" and "),
                if shown.len() == 1 { "" } else { "s" }
            ));
        }
        let residual: Vec<String> = routing.residual.iter().map(|p| p.to_string()).collect();
        if !residual.is_empty() {
            out.push_str(&format!(
                "residual predicate{}: {} (no key position; exhaustive repair enumeration)\n",
                if residual.len() == 1 { "" } else { "s" },
                residual.join(" and ")
            ));
        }
        out
    }

    /// Routes each attached predicate to its sound evaluation site; see
    /// [`PredicateRouting`].
    fn route_predicates(&self) -> PredicateRouting {
        let mut routing = PredicateRouting::default();
        if self.predicates.is_empty() {
            return routing;
        }
        let free = self.prepared.normalised.body.free_vars();
        for p in &self.predicates {
            // Every key-positioned occurrence of the variable: each one is a
            // sound block filter, and deeper ones narrow multi-column seeks.
            let mut occurrences = Vec::new();
            for atom in self.prepared.normalised.body.atoms() {
                let Some(sig) = self.schema.signature(atom.relation()) else {
                    continue;
                };
                for (pos, term) in atom.terms()[..sig.key_len()].iter().enumerate() {
                    if term.as_var() == Some(&p.var) {
                        occurrences.push(BlockRestriction {
                            relation: atom.relation().to_string(),
                            pos,
                            op: p.op,
                            value: p.value.clone(),
                        });
                    }
                }
            }
            match (
                free.iter().position(|v| *v == p.var),
                occurrences.is_empty(),
            ) {
                // Free variable at a key position: push into the block index
                // (the group key is bound from block keys, so restriction is
                // exact) — unless the baseline arm asked for a full scan, in
                // which case filter the finished rows instead.
                (Some(pos), false) if self.options.force_scan => {
                    routing.row_filters.push((pos, p.clone()));
                }
                (Some(_), false) => routing.restrictions.extend(occurrences),
                // Free variable off every key: the group key is still
                // definite, so a row filter is exact.
                (Some(pos), true) => routing.row_filters.push((pos, p.clone())),
                // Non-free variable at a key position: restrict the index for
                // the rewriting paths, and filter embeddings on the exact
                // path (which re-enumerates the full instance).
                (None, false) => {
                    routing.restrictions.extend(occurrences);
                    routing.exact.push(p.clone());
                }
                // Residual: only exhaustive enumeration is sound.
                (None, true) => {
                    routing.exact.push(p.clone());
                    routing.residual.push(p.clone());
                }
            }
        }
        routing
    }

    /// The restricted view of `index` for the routed block restrictions, and
    /// its access paths. `(None, [])` when there is nothing to restrict.
    fn restricted_view(
        &self,
        index: &DbIndex,
        routing: &PredicateRouting,
    ) -> (Option<DbIndex>, Vec<AccessPath>) {
        if routing.restrictions.is_empty() {
            return (None, Vec::new());
        }
        let (view, access) = index.restrict(&routing.restrictions, self.options.force_scan);
        (Some(view), access)
    }

    /// The shared evaluation pipeline behind `glb`/`lub`/`range`: route the
    /// predicates, restrict the index, plan, lower, execute, row-filter.
    fn evaluate(
        &self,
        db: &DatabaseInstance,
        index: &DbIndex,
        want_glb: bool,
        want_lub: bool,
    ) -> Result<Vec<GroupRange>, CoreError> {
        let routing = self.route_predicates();
        let (view, access) = self.restricted_view(index, &routing);
        let index = view.as_ref().unwrap_or(index);
        let plan = self
            .logical_plan(db.numeric_domain(), want_glb, want_lub)
            .lower_with_access(&self.prepared, &access);
        let mut rows = execute(
            &plan,
            &ExecContext {
                prepared: &self.prepared,
                db,
                index,
                options: &self.options,
                exact_predicates: &routing.exact,
            },
        )?;
        routing.filter_rows(&mut rows);
        Ok(rows)
    }
}

/// Enumerates the candidate group keys of a query with free variables: the
/// distinct projections, onto the GROUP BY variables, of the embeddings of
/// the body in `db` (Section 6.2: range semantics instantiate the free
/// variables with every possible tuple of constants; tuples with no embedding
/// at all have answer `⊥` in every repair and are not reported).
pub fn candidate_groups(prepared: &PreparedAggQuery, db: &DatabaseInstance) -> Vec<Vec<Value>> {
    let index = DbIndex::new(db);
    candidate_groups_with_index(prepared, &index)
}

/// Like [`candidate_groups`], but reuses a prebuilt [`DbIndex`].
pub fn candidate_groups_with_index(
    prepared: &PreparedAggQuery,
    index: &DbIndex,
) -> Vec<Vec<Value>> {
    let free = prepared.normalised.body.free_vars().to_vec();
    if free.is_empty() {
        return vec![Vec::new()];
    }
    let compiled = CompiledLevels::new(prepared.open_levels());
    partition_groups(prepared, index, &compiled, &free, false)
        .into_iter()
        .map(|(key, _)| key)
        .collect()
}

/// Substitutes a group key for the free variables of a query, producing a
/// closed prepared query (Section 6.2: free variables are treated as
/// constants).
///
/// The one-pass pipeline no longer calls this per group for rewriting-backed
/// strategies; it remains the entry into the exact-enumeration fallback and
/// the repair-enumeration baselines.
pub fn substitute_group(
    prepared: &PreparedAggQuery,
    key: &[Value],
) -> Result<PreparedAggQuery, CoreError> {
    let free = prepared.original.body.free_vars().to_vec();
    assert_eq!(free.len(), key.len(), "group key arity mismatch");
    let subst: BTreeMap<Var, Term> = free
        .iter()
        .cloned()
        .zip(key.iter().cloned().map(Term::Const))
        .collect();
    let new_body = rcqa_query::ConjunctiveQuery::boolean(
        prepared
            .original
            .body
            .atoms()
            .iter()
            .map(|a| a.substitute(&subst)),
    );
    let closed = AggQuery::new(
        prepared.original.agg,
        prepared.original.term.clone(),
        new_body,
    );
    PreparedAggQuery::new(&closed, &prepared.body.schema().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_bounds;
    use rcqa_data::{fact, rat, Schema, Signature};
    use rcqa_query::parse_agg_query;

    fn db_stock() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "James", "Boston"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "Boston", 35),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Y", "New York", 96),
        ])
        .unwrap();
        db
    }

    #[test]
    fn closed_sum_query_end_to_end() {
        let db = db_stock();
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb.len(), 1);
        assert_eq!(glb[0].1.value, Some(rat(70)));
        assert_eq!(glb[0].1.method, Method::Rewriting);
        // LUB of SUM has no known rewriting: exact fallback.
        let lub = engine.lub(&db).unwrap();
        assert_eq!(lub[0].1.value, Some(rat(96)));
        assert_eq!(lub[0].1.method, Method::ExactEnumeration);
        // Both bounds agree with exhaustive enumeration.
        let bounds = exact_bounds(engine.prepared(), &db, 1 << 20).unwrap();
        assert_eq!(bounds.glb, glb[0].1.value);
        assert_eq!(bounds.lub, lub[0].1.value);
    }

    #[test]
    fn group_by_query_reports_each_dealer() {
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let ranges = engine.range(&db).unwrap();
        assert_eq!(ranges.len(), 2);
        let by_name: BTreeMap<String, &GroupRange> =
            ranges.iter().map(|r| (r.key[0].to_string(), r)).collect();
        // James is certainly in Boston: glb = 35 + 35 = 70, lub = 40 + 35 = 75.
        let james = by_name["James"];
        assert_eq!(james.glb.unwrap().value, Some(rat(70)));
        assert_eq!(james.lub.unwrap().value, Some(rat(75)));
        // Smith: glb = 70 (Boston with minimum quantities), lub = 96 (New York).
        let smith = by_name["Smith"];
        assert_eq!(smith.glb.unwrap().value, Some(rat(70)));
        assert_eq!(smith.lub.unwrap().value, Some(rat(96)));
    }

    #[test]
    fn bottom_answer_for_uncertain_group() {
        let db = db_stock();
        // Tesla Z is never in stock: the closed query is falsified by every
        // repair, so both bounds are ⊥... in fact there is no candidate group,
        // so test the closed variant directly.
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla Y', t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        // Tesla Y is stocked in both Boston and New York, so the query is
        // certain.
        assert!(glb[0].1.value.is_some());

        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock('Tesla X', t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        // Tesla X is only in Boston; if Smith operates in New York the query
        // fails, hence ⊥.
        assert_eq!(glb[0].1.value, None);
    }

    #[test]
    fn min_max_strategies() {
        let db = db_stock();
        let q = parse_agg_query("MIN(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.value, Some(rat(35)));
        assert_eq!(glb[0].1.method, Method::PlainExtremum);
        let lub = engine.lub(&db).unwrap();
        // LUB of MIN: Smith in New York with the 96-quantity fact chosen.
        assert_eq!(lub[0].1.value, Some(rat(96)));
        assert_eq!(lub[0].1.method, Method::Rewriting);

        let q = parse_agg_query("MAX(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        let lub = engine.lub(&db).unwrap();
        assert_eq!(lub[0].1.method, Method::PlainExtremum);
        // Cross-check against exhaustive enumeration.
        let bounds = exact_bounds(engine.prepared(), &db, 1 << 20).unwrap();
        assert_eq!(glb[0].1.value, bounds.glb);
        assert_eq!(lub[0].1.value, bounds.lub);
    }

    #[test]
    fn avg_uses_exact_fallback_and_can_be_disabled() {
        let db = db_stock();
        let q = parse_agg_query("AVG(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.method, Method::ExactEnumeration);
        assert_eq!(glb[0].1.value, Some(rat(35)));

        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_options(EngineOptions {
                allow_exact_fallback: false,
                ..EngineOptions::default()
            });
        assert!(matches!(
            engine.glb(&db),
            Err(CoreError::UnsupportedAggregate { .. })
        ));
    }

    #[test]
    fn count_queries_use_rewriting() {
        let db = db_stock();
        let q = parse_agg_query("COUNT(*) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.value, Some(rat(1)));
        assert_eq!(glb[0].1.method, Method::Rewriting);
    }

    #[test]
    fn negative_numbers_disable_the_sum_rewriting() {
        // Section 7.3: with -1 allowed, the SUM rewriting is no longer sound;
        // the engine must fall back to exact enumeration.
        let schema = Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new_unconstrained(schema);
        db.insert_all([
            fact!("S1", "u", "c1"),
            fact!("S1", "u", "d"),
            fact!("S2", "v", "c2"),
            fact!("T", "u", "v", -1),
            fact!("T", "bot", "bot", 0),
            fact!("S1", "bot", "c1"),
            fact!("S2", "bot", "c2"),
        ])
        .unwrap();
        let q = parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let glb = engine.glb(&db).unwrap();
        assert_eq!(glb[0].1.method, Method::ExactEnumeration);
    }

    // The one-index-build-per-call invariant is asserted in
    // `tests/build_invariant.rs`, the dedicated test binary for the
    // process-wide build counter.

    #[test]
    fn grouped_range_matches_per_bound_calls() {
        // range() shares one analysis between the bounds; it must agree with
        // independent glb()/lub() calls.
        let db = db_stock();
        for text in [
            "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, MIN(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, AVG(y)) <- Dealers(x, t), Stock(p, t, y)",
        ] {
            let q = parse_agg_query(text).unwrap();
            let engine = RangeCqa::new(&q, db.schema()).unwrap();
            let ranges = engine.range(&db).unwrap();
            let glb = engine.glb(&db).unwrap();
            let lub = engine.lub(&db).unwrap();
            assert_eq!(ranges.len(), glb.len(), "{text}");
            for (range, (gk, g)) in ranges.iter().zip(glb.iter()) {
                assert_eq!(&range.key, gk, "{text}");
                assert_eq!(range.glb.as_ref().unwrap(), g, "{text}");
            }
            for (range, (lk, l)) in ranges.iter().zip(lub.iter()) {
                assert_eq!(&range.key, lk, "{text}");
                assert_eq!(range.lub.as_ref().unwrap(), l, "{text}");
            }
        }
    }

    #[test]
    fn row_support_patterns_and_exhaustiveness() {
        let db = db_stock();
        // MAX uses rewriting + plain extremum on both bounds: pattern support.
        let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let support = engine.row_support(db.numeric_domain());
        assert!(!support.is_exhaustive());
        let smith = [Value::text("Smith")];
        // Dealers(x, t): the group key pins the block key.
        assert!(support.hits(&smith, "Dealers", &[Value::text("Smith")]));
        assert!(!support.hits(&smith, "Dealers", &[Value::text("James")]));
        // Stock(p, t, y): no key position is group-bound — every block hits.
        assert!(support.hits(
            &smith,
            "Stock",
            &[Value::text("Tesla X"), Value::text("Boston")]
        ));
        assert!(!support.hits(&smith, "Unknown", &[Value::text("Smith")]));
        // Grouping by a non-key variable still yields a (looser) pattern
        // support — the shape the old level-0 locality certificate rejected.
        let q = parse_agg_query("(t, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let support = engine.row_support(db.numeric_domain());
        assert!(!support.is_exhaustive());
        let boston = [Value::text("Boston")];
        assert!(support.hits(&boston, "Dealers", &[Value::text("Smith")]));
        assert!(support.hits(
            &boston,
            "Stock",
            &[Value::text("Tesla X"), Value::text("Boston")]
        ));
        assert!(!support.hits(
            &boston,
            "Stock",
            &[Value::text("Tesla Y"), Value::text("New York")]
        ));
        // SUM's lub is the exact-enumeration fallback, whose repair budget
        // depends on the whole instance: every block supports every row.
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let support = engine.row_support(db.numeric_domain());
        assert!(support.is_exhaustive());
        assert!(support.hits(&smith, "Dealers", &[Value::text("James")]));
    }

    #[test]
    fn dirty_candidate_keys_cover_births() {
        let db = db_stock();
        let index = DbIndex::new(&db);
        let q = parse_agg_query("(t, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let block = |relation: &str, key: &[&str]| DirtyBlock {
            relation: relation.to_string(),
            key: key.iter().map(|v| Value::text(*v)).collect(),
        };
        // A dirty Stock block in New York can only birth the New York group.
        let keys = engine.dirty_candidate_keys(&index, &[block("Stock", &["Tesla Y", "New York"])]);
        assert_eq!(keys, [vec![Value::text("New York")]].into());
        // A dirty Dealers block reaches every town its rows join with.
        let keys = engine.dirty_candidate_keys(&index, &[block("Dealers", &["Smith"])]);
        assert_eq!(
            keys,
            [vec![Value::text("Boston")], vec![Value::text("New York")]].into()
        );
        // A never-interned key names no block of this lineage.
        let keys = engine.dirty_candidate_keys(&index, &[block("Stock", &["Nope", "Nowhere"])]);
        assert!(keys.is_empty());
        // Closed queries have nothing to look up.
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        assert!(engine
            .dirty_candidate_keys(&index, &[block("Dealers", &["Smith"])])
            .is_empty());
    }

    #[test]
    fn range_for_groups_agrees_beyond_the_per_key_cap() {
        // More groups than the executor's per-key pinning cap: the filtered
        // full-partition arm must agree with the full run too.
        let schema = Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        for i in 0..20 {
            db.insert(fact!("Dealers", format!("d{i:02}"), "Boston"))
                .unwrap();
        }
        db.insert_all([
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
        ])
        .unwrap();
        let index = DbIndex::new(&db);
        let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema()).unwrap();
        let full = engine.range_with_index(&db, &index).unwrap();
        assert_eq!(full.len(), 20);
        let all: BTreeSet<Vec<Value>> = full.iter().map(|r| r.key.clone()).collect();
        let got = engine.range_for_groups(&db, &index, &all).unwrap();
        assert_eq!(got, full);
    }

    #[test]
    fn range_for_groups_matches_full_range() {
        let db = db_stock();
        let index = DbIndex::new(&db);
        for text in [
            "(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)",
            "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)",
            // No locality: the filtered fallback must still agree.
            "(t, MAX(y)) <- Dealers(x, t), Stock(p, t, y)",
        ] {
            let q = parse_agg_query(text).unwrap();
            for threads in [1, 4] {
                let engine = RangeCqa::new(&q, db.schema())
                    .unwrap()
                    .with_options(EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    });
                let full = engine.range_with_index(&db, &index).unwrap();
                assert!(!full.is_empty(), "{text}");
                // Each single group, a subset, the full set, and a key with
                // no embeddings.
                for row in &full {
                    let keys: BTreeSet<Vec<Value>> = [row.key.clone()].into();
                    let got = engine.range_for_groups(&db, &index, &keys).unwrap();
                    assert_eq!(got, vec![row.clone()], "{text} @{threads}T");
                }
                let all: BTreeSet<Vec<Value>> = full.iter().map(|r| r.key.clone()).collect();
                let got = engine.range_for_groups(&db, &index, &all).unwrap();
                assert_eq!(got, full, "{text} @{threads}T");
                let missing: BTreeSet<Vec<Value>> = [vec![Value::text("Nobody")]].into();
                let got = engine.range_for_groups(&db, &index, &missing).unwrap();
                assert!(got.is_empty(), "{text} @{threads}T");
            }
        }
    }

    /// Every predicate route (free pushable, free row-filter, non-free
    /// pushable, residual) against the exhaustive-repair oracle, at both
    /// thread counts and on both access-path arms.
    #[test]
    fn predicates_agree_with_the_exact_oracle() {
        use crate::exact::exact_bounds_by_group_filtered;
        use rcqa_query::{CmpOp, VarPredicate};
        let db = db_stock();
        let var = |n: &str| Var::new(n);
        let cases: Vec<(&str, Vec<VarPredicate>)> = vec![
            // x: free, key of Dealers (block-pushable group key).
            (
                "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)",
                vec![VarPredicate {
                    var: var("x"),
                    op: CmpOp::Gt,
                    value: Value::text("James"),
                }],
            ),
            // p: non-free, key[0] of Stock (block-pushable).
            (
                "(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)",
                vec![VarPredicate {
                    var: var("p"),
                    op: CmpOp::Eq,
                    value: Value::text("Tesla Y"),
                }],
            ),
            // t: non-free, key[1] of Stock — Ne is non-contiguous, so the
            // restriction degrades to a linear block filter.
            (
                "(x, MIN(y)) <- Dealers(x, t), Stock(p, t, y)",
                vec![VarPredicate {
                    var: var("t"),
                    op: CmpOp::Ne,
                    value: Value::text("Boston"),
                }],
            ),
            // y: non-free, no key position — residual, forces exact.
            (
                "(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)",
                vec![VarPredicate {
                    var: var("y"),
                    op: CmpOp::Ge,
                    value: Value::from(40),
                }],
            ),
            // t as group key: free but at no key position of the level-0
            // atom's key — row filter.
            (
                "(t, MAX(y)) <- Dealers(x, t), Stock(p, t, y)",
                vec![VarPredicate {
                    var: var("t"),
                    op: CmpOp::Lt,
                    value: Value::text("New York"),
                }],
            ),
            // Conjunction mixing routes; closed query keeps its single row.
            (
                "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)",
                vec![
                    VarPredicate {
                        var: var("p"),
                        op: CmpOp::Le,
                        value: Value::text("Tesla X"),
                    },
                    VarPredicate {
                        var: var("y"),
                        op: CmpOp::Lt,
                        value: Value::from(100),
                    },
                ],
            ),
        ];
        for (text, preds) in cases {
            let q = parse_agg_query(text).unwrap();
            let prepared = PreparedAggQuery::new(&q, db.schema()).unwrap();
            let oracle = exact_bounds_by_group_filtered(&prepared, &db, 1 << 20, &preds).unwrap();
            let mut reference: Option<Vec<GroupRange>> = None;
            for threads in [1, 4] {
                for force_scan in [false, true] {
                    let engine = RangeCqa::new(&q, db.schema())
                        .unwrap()
                        .with_predicates(preds.clone())
                        .unwrap()
                        .with_options(EngineOptions {
                            threads,
                            force_scan,
                            ..EngineOptions::default()
                        });
                    let rows = engine.range(&db).unwrap();
                    assert_eq!(
                        rows.len(),
                        oracle.len(),
                        "{text} @{threads}T force_scan={force_scan}"
                    );
                    for (row, (key, bounds)) in rows.iter().zip(oracle.iter()) {
                        assert_eq!(&row.key, key, "{text}");
                        assert_eq!(
                            row.glb.unwrap().value,
                            bounds.glb,
                            "{text} glb of {key:?} @{threads}T force_scan={force_scan}"
                        );
                        assert_eq!(
                            row.lub.unwrap().value,
                            bounds.lub,
                            "{text} lub of {key:?} @{threads}T force_scan={force_scan}"
                        );
                    }
                    // Byte-identical across thread counts and both arms.
                    match &reference {
                        None => reference = Some(rows),
                        Some(first) => assert_eq!(&rows, first, "{text}"),
                    }
                }
            }
        }
    }

    #[test]
    fn residual_predicates_force_the_exact_fallback() {
        use rcqa_query::{CmpOp, VarPredicate};
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_predicates(vec![VarPredicate {
                var: Var::new("y"),
                op: CmpOp::Gt,
                value: Value::from(35),
            }])
            .unwrap();
        let plan = engine.logical_plan(NumericDomain::NonNegative, true, true);
        assert_eq!(
            plan.glb,
            Some(crate::plan::BoundStrategy::ExactFallback),
            "residual predicate must downgrade the rewriting-backed glb"
        );
        let rows = engine.range(&db).unwrap();
        for row in &rows {
            assert_eq!(row.glb.unwrap().method, Method::ExactEnumeration);
        }
        let shown = engine.explain(&db);
        assert!(shown.contains("residual predicate"), "{shown}");
    }

    #[test]
    fn predicate_variables_must_occur_in_the_body() {
        use rcqa_query::{CmpOp, VarPredicate};
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let err = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_predicates(vec![VarPredicate {
                var: Var::new("zz"),
                op: CmpOp::Eq,
                value: Value::from(1),
            }])
            .unwrap_err();
        assert!(matches!(err, CoreError::Query(_)), "{err}");
    }

    #[test]
    fn explain_documents_the_access_path() {
        use rcqa_query::{CmpOp, VarPredicate};
        let db = db_stock();
        let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_predicates(vec![VarPredicate {
                var: Var::new("p"),
                op: CmpOp::Eq,
                value: Value::text("Tesla Y"),
            }])
            .unwrap();
        let shown = engine.explain(&db);
        assert!(shown.contains("Seek"), "{shown}");
        assert!(shown.contains("Stock"), "{shown}");
        assert!(shown.contains("est"), "{shown}");
        // The baseline arm reports the same restriction as a filter.
        let forced = engine
            .clone()
            .with_options(EngineOptions {
                force_scan: true,
                ..EngineOptions::default()
            })
            .explain(&db);
        assert!(forced.contains("filter"), "{forced}");
        // Without predicates the leaf stays a full scan.
        let plain = RangeCqa::new(&q, db.schema()).unwrap().explain(&db);
        assert!(plain.contains("Scan"), "{plain}");
        assert!(!plain.contains("Seek"), "{plain}");
    }

    #[test]
    fn range_for_groups_respects_predicates() {
        use rcqa_query::{CmpOp, VarPredicate};
        let db = db_stock();
        let index = DbIndex::new(&db);
        let q = parse_agg_query("(x, MAX(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let engine = RangeCqa::new(&q, db.schema())
            .unwrap()
            .with_predicates(vec![VarPredicate {
                var: Var::new("p"),
                op: CmpOp::Eq,
                value: Value::text("Tesla X"),
            }])
            .unwrap();
        let full = engine.range_with_index(&db, &index).unwrap();
        assert!(!full.is_empty());
        for row in &full {
            let keys: BTreeSet<Vec<Value>> = [row.key.clone()].into();
            let got = engine.range_for_groups(&db, &index, &keys).unwrap();
            assert_eq!(got, vec![row.clone()]);
        }
    }

    #[test]
    fn candidate_groups_are_sorted_and_complete() {
        let db = db_stock();
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        let prepared = PreparedAggQuery::new(&q, db.schema()).unwrap();
        let groups = candidate_groups(&prepared, &db);
        assert_eq!(
            groups,
            vec![vec![Value::text("James")], vec![Value::text("Smith")]]
        );
    }
}
