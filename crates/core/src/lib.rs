//! # rcqa-core
//!
//! The primary contribution of the PODS 2024 paper *"Computing Range
//! Consistent Answers to Aggregation Queries via Rewriting"* (Amezian El
//! Khalfioui & Wijsen): deciding whether the greatest-lower-bound /
//! least-upper-bound consistent answers of an aggregation query are
//! expressible in the aggregate logic AGGR\[FOL\], constructing the rewriting
//! when they are, and evaluating range-consistent answers over inconsistent
//! databases.
//!
//! The crate provides:
//!
//! * [`prepared`] — attack-graph analysis and the per-level variable
//!   structure of Section 4;
//! * [`forall`] — embeddings, certainty checking, and ∀embeddings;
//! * [`glb`] — the operational evaluation of Theorem 6.1 (and its MIN/MAX
//!   mirrors) over ∀embeddings;
//! * [`rewrite`] — the symbolic AGGR\[FOL\] rewritings (Lemma 4.3,
//!   Theorem 6.1, Theorems 7.10/7.11);
//! * [`classify`] — the separation decision of Theorem 1.1 / Theorem 7.11;
//! * [`exact`] — the ground-truth repair-enumeration baseline;
//! * [`plan`] — the two-level plan architecture: logical strategy planning,
//!   the physical plan IR, and the (parallel) plan executor;
//! * [`engine`] — the user-facing [`RangeCqa`] engine with GROUP BY support.
//!
//! ## Quick example
//!
//! ```
//! use rcqa_core::engine::RangeCqa;
//! use rcqa_data::{fact, rat, DatabaseInstance, Schema, Signature};
//! use rcqa_query::parse_agg_query;
//!
//! let schema = Schema::new()
//!     .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
//!     .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
//! let mut db = DatabaseInstance::new(schema.clone());
//! db.insert_all([
//!     fact!("Dealers", "Smith", "Boston"),
//!     fact!("Dealers", "Smith", "New York"),
//!     fact!("Stock", "Tesla X", "Boston", 35),
//!     fact!("Stock", "Tesla Y", "New York", 95),
//! ]).unwrap();
//!
//! let query = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
//! let engine = RangeCqa::new(&query, &schema).unwrap();
//! let glb = engine.glb(&db).unwrap();
//! assert_eq!(glb[0].1.value, Some(rat(35)));
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod engine;
pub mod error;
pub mod exact;
pub mod forall;
pub mod glb;
pub mod index;
pub mod interval;
pub mod plan;
pub mod prepared;
pub mod rewrite;

pub use classify::{
    classify, classify_prepared, classify_with_domain, Classification, Expressibility,
};
pub use engine::{BoundAnswer, EngineOptions, GroupRange, Method, RangeCqa};
pub use error::CoreError;
pub use exact::{
    exact_bounds, exact_bounds_by_group, exact_bounds_by_group_filtered, exact_bounds_filtered,
    ExactBounds,
};
pub use forall::{analyse, Binding, CertaintyChecker, CompiledLevels, ForallAnalysis, VarTable};
pub use glb::{global_extremum, optimal_aggregate, Choice};
pub use index::{AccessPath, BlockRestriction, DbIndex, DirtyBlock, RelationStats};
pub use interval::{
    certain_topk, having_status, having_status_all, order_rows, topk_selection_preserved,
    HavingStatus,
};
pub use plan::exec::{RowSupport, SupportAtom, SupportSlot};
pub use plan::{BoundOp, BoundStrategy, LogicalPlan, PhysicalPlan, PlanNode};
pub use prepared::{PreparedAggQuery, PreparedBody};
pub use rewrite::{rewriting_for, BoundKind, Rewriting};
