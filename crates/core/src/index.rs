//! A block-oriented index over a database instance, used by the operational
//! evaluators (embedding enumeration, certainty checks, ∀embedding
//! computation).
//!
//! Building a [`DbIndex`] is `O(|db|)` and is the only full scan the engine
//! performs: every evaluation entry point ([`crate::engine::RangeCqa::glb`],
//! `lub`, `range`) builds **exactly one** index per call — shared by every
//! executor worker thread — and threads it by reference through
//! candidate-group enumeration, certainty checking, and ∀embedding
//! computation. The process-wide [`DbIndex::build_count`] counter exists so
//! tests can assert that invariant: it is an [`AtomicU64`] (not thread-local)
//! precisely so that an index built on one thread and *no* builds on the
//! executor's worker threads still sum to one observable construction.

use rcqa_data::{DatabaseInstance, DeltaEvent, DeltaOp, Fact, Value};
use std::collections::{BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of [`DbIndex`] constructions performed by this process, across all
/// threads (including executor workers).
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);

/// One block: the facts of a relation sharing a primary-key value.
#[derive(Clone, Debug)]
pub struct IndexedBlock {
    /// The shared key value.
    pub key: Vec<Value>,
    /// The facts of the block.
    pub facts: Vec<Fact>,
}

/// Index over one relation.
#[derive(Clone, Debug, Default)]
pub struct RelationIndex {
    /// All blocks of the relation.
    pub blocks: Vec<IndexedBlock>,
    /// Primary-key length of the relation (block keys are fact prefixes of
    /// this length).
    key_len: usize,
    /// Arity of the relation; delta events carrying any other arity cannot
    /// correspond to a stored fact and are rejected outright.
    arity: usize,
    /// Lookup from full key value to block position.
    by_key: HashMap<Vec<Value>, usize>,
    /// For each key position, lookup from value to the blocks having that
    /// value at that position.
    by_key_pos: Vec<HashMap<Value, Vec<usize>>>,
}

impl RelationIndex {
    /// Number of facts in the relation.
    pub fn fact_count(&self) -> usize {
        self.blocks.iter().map(|b| b.facts.len()).sum()
    }

    /// Looks up the block with exactly the given key.
    pub fn block_by_key(&self, key: &[Value]) -> Option<&IndexedBlock> {
        self.by_key.get(key).map(|&i| &self.blocks[i])
    }

    /// Inserts one fact, keeping the index byte-identical to a cold rebuild
    /// of the post-insert instance: the fact lands at its sorted position in
    /// its block, and a new block lands at its sorted position in the block
    /// list (cold builds scan facts in sorted order, so block order is key
    /// order). Returns `true` if the fact was not already present.
    fn insert_fact(&mut self, fact: Fact) -> bool {
        let key = fact.args()[..self.key_len].to_vec();
        match self.by_key.get(&key) {
            Some(&i) => {
                let facts = &mut self.blocks[i].facts;
                match facts.binary_search(&fact) {
                    Ok(_) => false,
                    Err(pos) => {
                        facts.insert(pos, fact);
                        true
                    }
                }
            }
            None => {
                let pos = self.blocks.partition_point(|b| b.key < key);
                self.blocks.insert(
                    pos,
                    IndexedBlock {
                        key: key.clone(),
                        facts: vec![fact],
                    },
                );
                // Shift every block position at or after the insertion point.
                for i in self.by_key.values_mut() {
                    if *i >= pos {
                        *i += 1;
                    }
                }
                for map in &mut self.by_key_pos {
                    for ids in map.values_mut() {
                        for i in ids.iter_mut() {
                            if *i >= pos {
                                *i += 1;
                            }
                        }
                    }
                }
                self.by_key.insert(key.clone(), pos);
                for (p, v) in key.iter().enumerate() {
                    let ids = self.by_key_pos[p].entry(v.clone()).or_default();
                    let at = ids.partition_point(|&i| i < pos);
                    ids.insert(at, pos);
                }
                true
            }
        }
    }

    /// Removes one fact (and its block, if it becomes empty), keeping the
    /// index byte-identical to a cold rebuild of the post-delete instance.
    /// Returns `true` if the fact was present.
    fn remove_fact(&mut self, fact: &Fact) -> bool {
        let key = &fact.args()[..self.key_len];
        let Some(&i) = self.by_key.get(key) else {
            return false;
        };
        let facts = &mut self.blocks[i].facts;
        let Ok(pos) = facts.binary_search(fact) else {
            return false;
        };
        facts.remove(pos);
        if self.blocks[i].facts.is_empty() {
            self.blocks.remove(i);
            self.by_key.remove(key);
            for j in self.by_key.values_mut() {
                if *j > i {
                    *j -= 1;
                }
            }
            for map in &mut self.by_key_pos {
                for ids in map.values_mut() {
                    ids.retain(|&j| j != i);
                    for j in ids.iter_mut() {
                        if *j > i {
                            *j -= 1;
                        }
                    }
                }
                // Cold builds never hold empty posting lists.
                map.retain(|_, ids| !ids.is_empty());
            }
        }
        true
    }

    /// Returns an iterator over the blocks compatible with a partially-bound
    /// key pattern: `pattern[i] = Some(v)` requires the block key to equal
    /// `v` at position `i`, `None` leaves the position unconstrained.
    ///
    /// The iterator borrows both the index and the pattern and allocates
    /// nothing beyond the (rare) fully-bound direct lookup; candidate lists
    /// are walked in place instead of being copied out.
    pub fn blocks_matching<'a, 'p>(
        &'a self,
        pattern: &'p [Option<Value>],
    ) -> BlocksMatching<'a, 'p> {
        // Fully bound: direct lookup, no filtering needed.
        if !pattern.is_empty() && pattern.iter().all(Option::is_some) {
            let key: Vec<Value> = pattern.iter().map(|v| v.clone().unwrap()).collect();
            return BlocksMatching {
                blocks: &self.blocks,
                pattern,
                source: BlockSource::One(self.block_by_key(&key)),
            };
        }
        // Use the most selective bound position, if any.
        let mut best: Option<&Vec<usize>> = None;
        for (p, v) in pattern.iter().enumerate() {
            if let Some(v) = v {
                match self.by_key_pos.get(p).and_then(|m| m.get(v)) {
                    Some(ids) => {
                        if best.map(|b| ids.len() < b.len()).unwrap_or(true) {
                            best = Some(ids);
                        }
                    }
                    None => {
                        return BlocksMatching {
                            blocks: &self.blocks,
                            pattern,
                            source: BlockSource::One(None),
                        }
                    }
                }
            }
        }
        let source = match best {
            Some(ids) => BlockSource::Candidates(ids.iter()),
            None => BlockSource::All(0..self.blocks.len()),
        };
        BlocksMatching {
            blocks: &self.blocks,
            pattern,
            source,
        }
    }
}

/// Where [`BlocksMatching`] draws candidate block positions from.
enum BlockSource<'a> {
    /// A single pre-resolved block (fully-bound pattern), already verified.
    One(Option<&'a IndexedBlock>),
    /// The posting list of the most selective bound key position.
    Candidates(std::slice::Iter<'a, usize>),
    /// Every block of the relation (no key position bound).
    All(Range<usize>),
}

/// Iterator returned by [`RelationIndex::blocks_matching`].
pub struct BlocksMatching<'a, 'p> {
    blocks: &'a [IndexedBlock],
    pattern: &'p [Option<Value>],
    source: BlockSource<'a>,
}

impl<'a> Iterator for BlocksMatching<'a, '_> {
    type Item = &'a IndexedBlock;

    fn next(&mut self) -> Option<&'a IndexedBlock> {
        loop {
            let candidate = match &mut self.source {
                BlockSource::One(slot) => return slot.take(),
                BlockSource::Candidates(ids) => self.blocks.get(*ids.next()?)?,
                BlockSource::All(range) => &self.blocks[range.next()?],
            };
            let matches = self
                .pattern
                .iter()
                .enumerate()
                .all(|(p, v)| v.as_ref().map(|v| &candidate.key[p] == v).unwrap_or(true));
            if matches {
                return Some(candidate);
            }
        }
    }
}

/// One level-0 block touched by [`DbIndex::apply_delta`]: the relation and
/// the primary-key value of a block that gained or lost facts (including
/// blocks that were created or emptied by the delta).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirtyBlock {
    /// The relation the block belongs to.
    pub relation: String,
    /// The block's shared primary-key value.
    pub key: Vec<Value>,
}

/// A block index over all relations of a database instance.
///
/// An index is plain owned data (`Send + Sync`, asserted below): the serving
/// layer freezes one per snapshot inside an `Arc<DbIndex>` and every
/// concurrent reader — and every executor worker thread under it — borrows
/// that one copy. Incremental maintenance ([`DbIndex::apply_delta`]) is only
/// ever performed on a private clone *before* the clone is published inside
/// a new snapshot, so published indexes are immutable.
#[derive(Clone, Debug, Default)]
pub struct DbIndex {
    relations: HashMap<String, RelationIndex>,
    /// Returned for names outside the schema, so lookups are total.
    empty: RelationIndex,
}

// The sharing contract the serving layer relies on.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbIndex>();
};

impl DbIndex {
    /// Builds the index for a database instance.
    pub fn new(db: &DatabaseInstance) -> DbIndex {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut relations: HashMap<String, RelationIndex> = HashMap::new();
        for (name, sig) in db.schema().relations() {
            let key_len = sig.key_len();
            let mut rel = RelationIndex {
                blocks: Vec::new(),
                key_len,
                arity: sig.arity(),
                by_key: HashMap::new(),
                by_key_pos: vec![HashMap::new(); key_len],
            };
            for fact in db.facts_of(name) {
                let key = fact.args()[..key_len].to_vec();
                let idx = match rel.by_key.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = rel.blocks.len();
                        rel.blocks.push(IndexedBlock {
                            key: key.clone(),
                            facts: Vec::new(),
                        });
                        rel.by_key.insert(key.clone(), i);
                        for (p, v) in key.iter().enumerate() {
                            rel.by_key_pos[p].entry(v.clone()).or_default().push(i);
                        }
                        i
                    }
                };
                rel.blocks[idx].facts.push(fact.clone());
            }
            relations.insert(name.to_string(), rel);
        }
        DbIndex {
            relations,
            empty: RelationIndex::default(),
        }
    }

    /// Applies a sequence of change events in place, without rebuilding (and
    /// without advancing [`DbIndex::build_count`] — incremental maintenance
    /// is precisely *not* a build). After the call the index is byte-identical
    /// to a cold [`DbIndex::new`] over the mutated instance: facts sit at
    /// their sorted positions inside blocks, blocks at their sorted positions
    /// inside relations, and the key/posting lookups match.
    ///
    /// Returns the deduplicated, sorted list of blocks whose contents changed
    /// — the dirty set callers use to decide which cached per-group answers
    /// must be recomputed. Events that change nothing (re-inserting a present
    /// fact, deleting an absent one) and events for relations outside the
    /// indexed schema mark nothing dirty.
    pub fn apply_delta(&mut self, events: &[DeltaEvent]) -> Vec<DirtyBlock> {
        let mut dirty: BTreeSet<DirtyBlock> = BTreeSet::new();
        for event in events {
            let Some(rel) = self.relations.get_mut(event.fact.relation()) else {
                continue;
            };
            if event.fact.arity() != rel.arity {
                // Cannot correspond to any stored fact; instances validate
                // arities on insert, so only malformed events land here.
                // (An exact check, not `< key_len`: a fact that covers the
                // key but not the full arity must not be indexed either.)
                continue;
            }
            let changed = match event.op {
                DeltaOp::Insert => rel.insert_fact(event.fact.clone()),
                DeltaOp::Delete => rel.remove_fact(&event.fact),
            };
            if changed {
                dirty.insert(DirtyBlock {
                    relation: event.fact.relation().to_string(),
                    key: event.fact.args()[..rel.key_len].to_vec(),
                });
            }
        }
        dirty.into_iter().collect()
    }

    /// The index of a relation. Every relation of the schema is present (even
    /// if it holds no facts); names outside the schema resolve to a shared
    /// empty index, so the lookup is infallible.
    pub fn relation(&self, name: &str) -> &RelationIndex {
        self.relations.get(name).unwrap_or(&self.empty)
    }

    /// Returns `true` if `name` is a relation of the indexed schema.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Number of [`DbIndex`] values constructed by this process since it
    /// started, across **all** threads.
    ///
    /// The engine guarantees exactly one construction per `glb`/`lub`/`range`
    /// call (on rewriting-backed paths) — the parallel executor's workers
    /// share the caller's index and build none of their own — and tests
    /// assert this by differencing the counter around a call. The counter is
    /// process-wide (an `AtomicU64`) rather than thread-local so a build on
    /// the calling thread plus zero builds on worker threads remains an
    /// observable "exactly one". Tests that difference it must serialise
    /// against other index-building tests in the same process (see
    /// `tests/build_invariant.rs`).
    pub fn build_count() -> u64 {
        BUILD_COUNT.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, Schema, Signature};

    fn db() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
            .with_relation("Empty", Signature::new(1, 1, []).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("S", "b1", "c1", 1),
            fact!("S", "b1", "c1", 2),
            fact!("S", "b1", "c2", 3),
            fact!("S", "b2", "c3", 5),
        ])
        .unwrap();
        db
    }

    #[test]
    fn blocks_and_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S");
        assert_eq!(s.blocks.len(), 3);
        assert_eq!(s.fact_count(), 4);
        let b = s
            .block_by_key(&[Value::text("b1"), Value::text("c1")])
            .unwrap();
        assert_eq!(b.facts.len(), 2);
        assert!(s
            .block_by_key(&[Value::text("zz"), Value::text("c1")])
            .is_none());
        // Empty relation exists in the index.
        assert_eq!(idx.relation("Empty").blocks.len(), 0);
        // Unknown relations resolve to an empty index instead of a panic or
        // an Option (doc contract: lookups are total).
        assert!(!idx.has_relation("Missing"));
        assert_eq!(idx.relation("Missing").blocks.len(), 0);
        assert_eq!(
            idx.relation("Missing")
                .blocks_matching(&[Some(Value::text("b1"))])
                .count(),
            0
        );
    }

    #[test]
    fn partial_key_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S");
        // All blocks with first key component b1.
        let matched: Vec<_> = s
            .blocks_matching(&[Some(Value::text("b1")), None])
            .collect();
        assert_eq!(matched.len(), 2);
        // Unconstrained pattern returns every block.
        assert_eq!(s.blocks_matching(&[None, None]).count(), 3);
        // Second component only.
        let matched: Vec<_> = s
            .blocks_matching(&[None, Some(Value::text("c3"))])
            .collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].key[0], Value::text("b2"));
        // Value absent from the index.
        assert_eq!(
            s.blocks_matching(&[Some(Value::text("zzz")), None]).count(),
            0
        );
        // Fully bound pattern.
        assert_eq!(
            s.blocks_matching(&[Some(Value::text("b1")), Some(Value::text("c2"))])
                .count(),
            1
        );
    }

    // The build-counter tests live in `tests/build_invariant.rs`: the counter
    // is process-wide, so differencing it is only deterministic in a test
    // binary whose other tests build no indexes concurrently.

    /// Full structural equality with a cold rebuild: block order, fact order
    /// inside blocks, key lookup, and posting lists must all match, not just
    /// the answers they produce.
    fn assert_identical(incremental: &DbIndex, cold: &DbIndex) {
        let mut names: Vec<&String> = incremental.relations.keys().collect();
        names.sort();
        let mut cold_names: Vec<&String> = cold.relations.keys().collect();
        cold_names.sort();
        assert_eq!(names, cold_names);
        for name in names {
            let a = &incremental.relations[name];
            let b = &cold.relations[name];
            assert_eq!(a.key_len, b.key_len, "{name}: key_len");
            assert_eq!(a.blocks.len(), b.blocks.len(), "{name}: block count");
            for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
                assert_eq!(x.key, y.key, "{name}: block order");
                assert_eq!(x.facts, y.facts, "{name}: facts of block {:?}", x.key);
            }
            assert_eq!(a.by_key, b.by_key, "{name}: by_key");
            assert_eq!(a.by_key_pos, b.by_key_pos, "{name}: by_key_pos");
        }
    }

    #[test]
    fn apply_delta_matches_cold_rebuild() {
        let mut db = db();
        let mut idx = DbIndex::new(&db);
        let steps = [
            // Grow an existing block (sorts before the present facts).
            DeltaEvent::insert(fact!("S", "b1", "c1", 0)),
            // New block between existing ones.
            DeltaEvent::insert(fact!("S", "b1", "c15", 7)),
            // New block at the front and at the back.
            DeltaEvent::insert(fact!("S", "a0", "c0", 9)),
            DeltaEvent::insert(fact!("S", "z9", "c9", 9)),
            // First fact of the empty relation.
            DeltaEvent::insert(fact!("Empty", "e1")),
            // Shrink a block without emptying it.
            DeltaEvent::delete(fact!("S", "b1", "c1", 1)),
            // Empty a block entirely.
            DeltaEvent::delete(fact!("S", "b2", "c3", 5)),
            // No-ops: deleting an absent fact, re-inserting a present one.
            DeltaEvent::delete(fact!("S", "nope", "c1", 1)),
            DeltaEvent::insert(fact!("S", "b1", "c2", 3)),
        ];
        for event in steps {
            let dirty = idx.apply_delta(std::slice::from_ref(&event));
            let effective = db.apply(event.clone()).unwrap().is_some();
            assert_eq!(
                !dirty.is_empty(),
                effective,
                "dirty iff the instance changed: {event}"
            );
            assert_identical(&idx, &DbIndex::new(&db));
        }
        // A batch reports each dirty block once, sorted.
        let batch = [
            DeltaEvent::insert(fact!("S", "m1", "c1", 1)),
            DeltaEvent::insert(fact!("S", "m1", "c1", 2)),
            DeltaEvent::insert(fact!("S", "b1", "c2", 30)),
        ];
        let dirty = idx.apply_delta(&batch);
        for e in &batch {
            db.apply(e.clone()).unwrap();
        }
        assert_eq!(
            dirty,
            vec![
                DirtyBlock {
                    relation: "S".to_string(),
                    key: vec![Value::text("b1"), Value::text("c2")],
                },
                DirtyBlock {
                    relation: "S".to_string(),
                    key: vec![Value::text("m1"), Value::text("c1")],
                },
            ]
        );
        assert_identical(&idx, &DbIndex::new(&db));
    }

    #[test]
    fn apply_delta_ignores_unknown_relations() {
        let db = db();
        let mut idx = DbIndex::new(&db);
        let dirty = idx.apply_delta(&[
            DeltaEvent::insert(fact!("Missing", "x", "y")),
            // Arity shorter than the key cannot match any stored fact.
            DeltaEvent::delete(fact!("S", "b1")),
            // Neither can a fact that covers the key but not the full arity:
            // indexing it would diverge from a cold rebuild (the instance
            // rejects it) and corrupt downstream numeric-position reads.
            DeltaEvent::insert(fact!("S", "b1", "c1")),
            DeltaEvent::insert(fact!("S", "b1", "c1", 8, 9)),
        ]);
        assert!(dirty.is_empty());
        assert_identical(&idx, &DbIndex::new(&db));
    }
}
