//! A block-oriented, **interned columnar** index over a database instance,
//! used by the operational evaluators (embedding enumeration, certainty
//! checks, ∀embedding computation).
//!
//! Building a [`DbIndex`] is `O(|db|)` and is the only full scan the engine
//! performs: every evaluation entry point ([`crate::engine::RangeCqa::glb`],
//! `lub`, `range`) builds **exactly one** index per call — shared by every
//! executor worker thread — and threads it by reference through
//! candidate-group enumeration, certainty checking, and ∀embedding
//! computation. The process-wide [`DbIndex::build_count`] counter exists so
//! tests can assert that invariant: it is an [`AtomicU64`] (not thread-local)
//! precisely so that an index built on one thread and *no* builds on the
//! executor's worker threads still sum to one observable construction.
//!
//! ## The id-space contract
//!
//! The index does not store [`Value`]s. A cold build collects every distinct
//! value of the instance into a [`ValueInterner`], and everything downstream
//! is dense `u32` ids:
//!
//! * each [`IndexedBlock`]'s fact list is **columnar** — one `Vec<u32>` per
//!   argument position ([`FactColumns`]), so the join pass and the certainty
//!   checker scan cache-linear integer columns;
//! * block keys are fixed-width id tuples (`Box<[u32]>`);
//! * the deep posting lists map raw `u32`s to block positions.
//!
//! The contract the interner upholds (see [`rcqa_data::interner`]):
//!
//! * **id equality ⇔ value equality** — every distinct value has exactly one
//!   id, so the hot paths compare and hash raw `u32`s;
//! * **order-preserving prefix** — ids assigned at cold build time are in
//!   ascending [`Value`] order, so within the prefix integer order *is* the
//!   paper's `⪯` order;
//! * **append-only** — [`DbIndex::apply_delta`] only ever *adds* ids (for
//!   values first seen by a commit); an id, once assigned, never changes or
//!   disappears. Appended ids carry no order information, so every ordered
//!   structure here (block order, row order inside a block, the contiguous
//!   first-key-component span) is maintained in **value order** via
//!   [`ValueInterner::cmp_ids`], never raw id order — warm and cold indexes
//!   therefore agree on all orderings even though their id *layouts* differ;
//! * **snapshot-shared** — the interner rides inside the index behind an
//!   `Arc`; a path-copying commit extends one clone append-only while every
//!   other snapshot keeps the layout it pinned.
//!
//! Values **materialize only at the result boundary**: dirty-block keys
//! reported to the serving layer, `GroupRange` rows, SQL output, and the
//! structural assertions below. Everything between the instance scan and
//! those boundaries is integer work.
//!
//! ## Structural sharing
//!
//! A [`DbIndex`] is a **persistent data structure**: each relation's
//! [`RelationIndex`] lives behind an [`Arc`], and each [`IndexedBlock`]'s
//! column set behind another. Cloning an index is one pointer bump per
//! relation, and [`DbIndex::apply_delta`] **path-copies**: it materialises a
//! private copy of exactly the relations the delta touches (via
//! [`Arc::make_mut`]) and, inside them, of exactly the dirty blocks' columns
//! — every untouched relation and every untouched block keeps sharing
//! storage with the index the clone came from. The serving layer relies on
//! this to derive a successor snapshot's index in
//! `O(|dirty relation| + |delta|)` instead of `O(|db|)` per write batch.

use rcqa_data::{DatabaseInstance, DeltaEvent, DeltaOp, Fact, Value, ValueInterner, MISSING_ID};
use rcqa_query::CmpOp;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of [`DbIndex`] constructions performed by this process, across all
/// threads (including executor workers).
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);

/// The facts of one block in struct-of-arrays layout: one id column per
/// argument position, all of equal length. Row `r` of the block is
/// `(cols[0][r], ..., cols[arity-1][r])`, and rows are kept in ascending
/// fact ([`Value`]) order.
#[derive(Clone, Debug, Default)]
pub struct FactColumns {
    cols: Vec<Vec<u32>>,
}

impl FactColumns {
    fn with_arity(arity: usize) -> FactColumns {
        FactColumns {
            cols: vec![Vec::new(); arity],
        }
    }

    /// Number of facts in the block.
    pub fn rows(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// The id at `(row, pos)`.
    #[inline]
    pub fn id_at(&self, row: usize, pos: usize) -> u32 {
        self.cols[pos][row]
    }

    /// One whole argument column.
    pub fn col(&self, pos: usize) -> &[u32] {
        &self.cols[pos]
    }

    /// The ids of one row, in argument order.
    pub fn row_ids(&self, row: usize) -> impl Iterator<Item = u32> + '_ {
        self.cols.iter().map(move |c| c[row])
    }

    fn push_row(&mut self, ids: &[u32]) {
        debug_assert_eq!(ids.len(), self.cols.len());
        for (col, &id) in self.cols.iter_mut().zip(ids) {
            col.push(id);
        }
    }

    fn insert_row(&mut self, at: usize, ids: &[u32]) {
        debug_assert_eq!(ids.len(), self.cols.len());
        for (col, &id) in self.cols.iter_mut().zip(ids) {
            col.insert(at, id);
        }
    }

    fn remove_row(&mut self, at: usize) {
        for col in &mut self.cols {
            col.remove(at);
        }
    }

    /// Lexicographic [`Value`] order of row `row` against the id tuple `ids`
    /// (same width). Row order inside a block is fact order, i.e. exactly
    /// this comparison.
    fn cmp_row(&self, row: usize, ids: &[u32], interner: &ValueInterner) -> std::cmp::Ordering {
        for (col, &id) in self.cols.iter().zip(ids) {
            match interner.cmp_ids(col[row], id) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Position of the row equal to `ids`, or the insertion position keeping
    /// rows in fact order.
    fn search_row(&self, ids: &[u32], interner: &ValueInterner) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.rows();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.cmp_row(mid, ids, interner) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }
}

/// One block: the facts of a relation sharing a primary-key value, as an
/// interned key tuple plus `Arc`-shared columns.
///
/// The column set is `Arc`-shared: cloning a block (as part of cloning its
/// [`RelationIndex`] for incremental maintenance) bumps a pointer instead of
/// copying columns, and only blocks a delta actually changes are deep-copied
/// (see [`DbIndex::apply_delta`]).
#[derive(Clone, Debug)]
pub struct IndexedBlock {
    /// The shared key value, as a fixed-width interned id tuple.
    pub key: Box<[u32]>,
    /// The facts of the block in columnar layout, rows in sorted fact order.
    pub cols: Arc<FactColumns>,
}

/// Lightweight per-relation statistics, collected at cold build time and
/// kept current per touched relation by [`DbIndex::apply_delta`]. They drive
/// the cost-based seek-vs-scan choice of [`DbIndex::restrict`]: the fence
/// sample is a coarse equi-depth histogram of the first key component (the
/// seekable column), giving an `O(1)` estimate of how many blocks a range
/// predicate selects before anything is touched.
#[derive(Clone, Debug, Default)]
pub struct RelationStats {
    /// Number of blocks (primary-key group cardinality).
    pub blocks: usize,
    /// Number of facts.
    pub facts: usize,
    /// Number of distinct first key components (fanout of the seekable
    /// position).
    pub distinct_head: usize,
    /// First-key-component ids sampled at ≤ [`RelationStats::FENCES`]
    /// equi-spaced positions of the sorted block list. Raw ids — estimates
    /// compare them to probe values via [`ValueInterner::cmp_id_to_value`],
    /// so warm and cold layouts produce identical estimates.
    head_fences: Vec<u32>,
}

impl RelationStats {
    /// Fence sample size: enough resolution to tell "a sliver" from "most of
    /// the relation", cheap enough to recompute on every write batch.
    const FENCES: usize = 16;

    fn compute(blocks: &[IndexedBlock]) -> RelationStats {
        let n = blocks.len();
        let mut distinct_head = 0usize;
        for i in 0..n {
            if i == 0 || blocks[i].key[0] != blocks[i - 1].key[0] {
                distinct_head += 1;
            }
        }
        let samples = Self::FENCES.min(n);
        RelationStats {
            blocks: n,
            facts: blocks.iter().map(|b| b.cols.rows()).sum(),
            distinct_head,
            head_fences: (0..samples)
                .map(|k| blocks[k * n / samples].key[0])
                .collect(),
        }
    }

    /// Histogram estimate of how many blocks have a first key component
    /// satisfying `op value`: the matched-fence fraction scaled to the block
    /// count (rounded up, so a predicate some fence satisfies never
    /// estimates zero). Non-contiguous operators (`<>`) estimate a full
    /// scan.
    pub fn estimate_head_matches(
        &self,
        op: CmpOp,
        value: &Value,
        interner: &ValueInterner,
    ) -> usize {
        if self.blocks == 0 || self.head_fences.is_empty() {
            return 0;
        }
        if !op.is_contiguous() {
            return self.blocks;
        }
        let rank = interner.prefix_rank(value);
        let hit = self
            .head_fences
            .iter()
            .filter(|&&f| op.holds(interner.cmp_id_to_value(f, value, rank)))
            .count();
        (self.blocks * hit).div_ceil(self.head_fences.len())
    }

    /// Materialised fence values, for value-level structural comparison and
    /// observability (warm and cold id layouts differ; fence *values* must
    /// not).
    pub fn fence_values(&self, interner: &ValueInterner) -> Vec<Value> {
        interner.values_of(&self.head_fences)
    }
}

/// Index over one relation.
///
/// The block list is the primary structure: blocks are **sorted by key value
/// order** (cold builds scan facts in sorted order; incremental maintenance
/// keeps them there via [`ValueInterner::cmp_id_tuples`]), so a full-key
/// lookup is a binary search and a bound *first* key component selects a
/// contiguous span of blocks — neither needs an auxiliary map. Only the
/// **deeper** key positions (`1..key_len`), where matching blocks are
/// scattered, keep posting lists (keyed by raw id — id equality is value
/// equality). Relations with a single-column key therefore carry no lookup
/// maps at all, which makes the write path's per-relation path copy (and its
/// maintenance) almost free.
#[derive(Clone, Debug, Default)]
pub struct RelationIndex {
    /// The relation's name, for materialising facts at the result boundary.
    name: String,
    /// All blocks of the relation, sorted by key (value order).
    blocks: Vec<IndexedBlock>,
    /// Primary-key length of the relation (block keys are fact prefixes of
    /// this length).
    key_len: usize,
    /// Arity of the relation; delta events carrying any other arity cannot
    /// correspond to a stored fact and are rejected outright.
    arity: usize,
    /// Posting lists for key positions `1..key_len` (entry `p - 1` serves
    /// position `p`): id → sorted positions of the blocks holding that id
    /// there. Position 0 has none — its matches are a contiguous
    /// binary-searchable span of the sorted block list.
    deep_pos: Vec<HashMap<u32, Vec<usize>>>,
    /// Statistics over the current block list, recomputed whenever the block
    /// list changes (cold build, `apply_delta`, `restrict`).
    stats: RelationStats,
}

/// How one applied event changed a relation's **block list** (as opposed to
/// the interior of an existing block): not at all, a block inserted at a
/// position, or a block removed from one. Structural changes shift block
/// positions, so they drive the posting-list maintenance in
/// [`DbIndex::apply_delta`].
enum Structural {
    No,
    Inserted(usize),
    Removed(usize),
}

impl RelationIndex {
    /// The relation this index covers.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All blocks, sorted by key (value order).
    pub fn blocks(&self) -> &[IndexedBlock] {
        &self.blocks
    }

    /// Number of facts in the relation.
    pub fn fact_count(&self) -> usize {
        self.blocks.iter().map(|b| b.cols.rows()).sum()
    }

    /// Primary-key length of the relation.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Statistics over the current block list.
    pub fn stats(&self) -> &RelationStats {
        &self.stats
    }

    /// Materialises one row of a block back into a [`Fact`].
    pub fn materialize_fact(
        &self,
        block: &IndexedBlock,
        row: usize,
        interner: &ValueInterner,
    ) -> Fact {
        Fact::new(
            &self.name,
            block.cols.row_ids(row).map(|id| interner.value(id).clone()),
        )
    }

    /// Looks up the block with exactly the given key ids: a binary search of
    /// the sorted block list. Patterns containing unassigned ids (e.g.
    /// [`MISSING_ID`]) match nothing.
    pub fn block_by_key_ids(&self, key: &[u32], interner: &ValueInterner) -> Option<&IndexedBlock> {
        if key.iter().any(|&id| !interner.contains_id(id)) {
            return None;
        }
        self.blocks
            .binary_search_by(|b| interner.cmp_id_tuples(&b.key, key))
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// The contiguous span of block positions whose key starts with the
    /// (assigned) id `v` — blocks are sorted by key value order, so
    /// first-component matches are adjacent.
    fn first_component_span(&self, v: u32, interner: &ValueInterner) -> Range<usize> {
        let start = self
            .blocks
            .partition_point(|b| interner.cmp_ids(b.key[0], v) == std::cmp::Ordering::Less);
        let end = start
            + self.blocks[start..]
                .partition_point(|b| interner.cmp_ids(b.key[0], v) != std::cmp::Ordering::Greater);
        start..end
    }

    /// Ordered range seek on the first key component: the contiguous span of
    /// block positions whose first key component satisfies `op v`. Blocks
    /// are sorted by key value order, so for every contiguous operator the
    /// matches are adjacent and two binary searches find them — `O(log
    /// blocks)`, and for sorted-prefix ids each probe is a raw `u32`
    /// comparison ([`ValueInterner::cmp_id_to_value`]). The probe value need
    /// not occur in the instance.
    ///
    /// Panics on `<>` (not contiguous — callers linear-filter instead).
    pub fn head_seek_span(&self, op: CmpOp, v: &Value, interner: &ValueInterner) -> Range<usize> {
        self.range_span_at(0..self.blocks.len(), 0, op, v, interner)
    }

    /// Multi-column prefix seek: narrows to the blocks whose leading key ids
    /// equal `prefix`, then range-seeks `op v` on key position
    /// `prefix.len()` inside that span. Valid because block order is
    /// lexicographic: within a fixed key prefix the next component ascends,
    /// so every step is another pair of binary searches.
    pub fn prefix_seek_span(
        &self,
        prefix: &[u32],
        op: CmpOp,
        v: &Value,
        interner: &ValueInterner,
    ) -> Range<usize> {
        let mut span = 0..self.blocks.len();
        for (pos, &id) in prefix.iter().enumerate() {
            let s = &self.blocks[span.clone()];
            let start = span.start
                + s.partition_point(|b| {
                    interner.cmp_ids(b.key[pos], id) == std::cmp::Ordering::Less
                });
            let end = span.start
                + s.partition_point(|b| {
                    interner.cmp_ids(b.key[pos], id) != std::cmp::Ordering::Greater
                });
            span = start..end;
        }
        self.range_span_at(span, prefix.len(), op, v, interner)
    }

    /// The sub-span of `within` (a span in which key components before `pos`
    /// are constant) whose key component at `pos` satisfies `op v`.
    fn range_span_at(
        &self,
        within: Range<usize>,
        pos: usize,
        op: CmpOp,
        v: &Value,
        interner: &ValueInterner,
    ) -> Range<usize> {
        assert!(op.is_contiguous(), "{op} does not select a contiguous span");
        let rank = interner.prefix_rank(v);
        let s = &self.blocks[within.clone()];
        let lt = s.partition_point(|b| {
            interner.cmp_id_to_value(b.key[pos], v, rank) == std::cmp::Ordering::Less
        });
        let le = s.partition_point(|b| {
            interner.cmp_id_to_value(b.key[pos], v, rank) != std::cmp::Ordering::Greater
        });
        let base = within.start;
        match op {
            CmpOp::Lt => base..base + lt,
            CmpOp::Le => base..base + le,
            CmpOp::Eq => base + lt..base + le,
            CmpOp::Gt => base + le..within.end,
            CmpOp::Ge => base + lt..within.end,
            CmpOp::Ne => unreachable!("guarded above"),
        }
    }

    /// Inserts one fact (given as interned ids): the row lands at its sorted
    /// position in its block, and a new block lands at its sorted position in
    /// the block list.
    ///
    /// Only the block list is maintained — lookups here binary-search it, so
    /// they never depend on the posting lists; [`DbIndex::apply_delta`] owns
    /// the posting-list maintenance for structural changes. Returns
    /// `(changed, structural)`.
    fn insert_fact_ids(&mut self, ids: &[u32], interner: &ValueInterner) -> (bool, Structural) {
        let key = &ids[..self.key_len];
        match self
            .blocks
            .binary_search_by(|b| interner.cmp_id_tuples(&b.key, key))
        {
            Ok(i) => {
                // Probe on the shared columns first: a no-op re-insert must
                // not split storage. Only an actual change materialises the
                // block.
                match self.blocks[i].cols.search_row(ids, interner) {
                    Ok(_) => (false, Structural::No),
                    Err(pos) => {
                        Arc::make_mut(&mut self.blocks[i].cols).insert_row(pos, ids);
                        (true, Structural::No)
                    }
                }
            }
            Err(pos) => {
                let mut cols = FactColumns::with_arity(self.arity);
                cols.push_row(ids);
                self.blocks.insert(
                    pos,
                    IndexedBlock {
                        key: key.into(),
                        cols: Arc::new(cols),
                    },
                );
                (true, Structural::Inserted(pos))
            }
        }
    }

    /// Removes one fact (and its block, if it becomes empty). Same contract
    /// as [`RelationIndex::insert_fact_ids`]. Returns `(changed, structural)`.
    fn remove_fact_ids(&mut self, ids: &[u32], interner: &ValueInterner) -> (bool, Structural) {
        let key = &ids[..self.key_len];
        let Ok(i) = self
            .blocks
            .binary_search_by(|b| interner.cmp_id_tuples(&b.key, key))
        else {
            return (false, Structural::No);
        };
        let Ok(pos) = self.blocks[i].cols.search_row(ids, interner) else {
            return (false, Structural::No);
        };
        let cols = Arc::make_mut(&mut self.blocks[i].cols);
        cols.remove_row(pos);
        if cols.rows() == 0 {
            self.blocks.remove(i);
            (true, Structural::Removed(i))
        } else {
            (true, Structural::No)
        }
    }

    /// Surgically threads a just-inserted block (at `pos`) through the deep
    /// posting lists: positions at or after `pos` shift up, then the new
    /// block's ids are posted. `O(posting entries)` integer work — no
    /// allocation beyond the new postings.
    fn deep_insert_block(&mut self, pos: usize) {
        for map in &mut self.deep_pos {
            for ids in map.values_mut() {
                for i in ids.iter_mut() {
                    if *i >= pos {
                        *i += 1;
                    }
                }
            }
        }
        let key = self.blocks[pos].key.clone();
        for (p, &v) in key.iter().enumerate().skip(1) {
            let ids = self.deep_pos[p - 1].entry(v).or_default();
            let at = ids.partition_point(|&i| i < pos);
            ids.insert(at, pos);
        }
    }

    /// Surgically unthreads a just-removed block (formerly at `pos`, with
    /// key ids `key`) from the deep posting lists: its postings disappear
    /// (empty lists are dropped — cold builds never hold them), then
    /// positions after `pos` shift down.
    fn deep_remove_block(&mut self, pos: usize, key: &[u32]) {
        for (p, &v) in key.iter().enumerate().skip(1) {
            let map = &mut self.deep_pos[p - 1];
            if let Some(ids) = map.get_mut(&v) {
                ids.retain(|&j| j != pos);
                if ids.is_empty() {
                    map.remove(&v);
                }
            }
        }
        for map in &mut self.deep_pos {
            for ids in map.values_mut() {
                for i in ids.iter_mut() {
                    if *i > pos {
                        *i -= 1;
                    }
                }
            }
        }
    }

    /// Rebuilds the deep posting lists from the (sorted) block list, in
    /// exactly the layout a cold [`DbIndex::new`] produces: posting lists
    /// ascending, no empty entries. `O(blocks)` for this relation — the bulk
    /// alternative to per-event surgery.
    fn rebuild_deep_pos(&mut self) {
        self.deep_pos = vec![HashMap::new(); self.key_len.saturating_sub(1)];
        for (i, b) in self.blocks.iter().enumerate() {
            for (p, &v) in b.key.iter().enumerate().skip(1) {
                self.deep_pos[p - 1].entry(v).or_default().push(i);
            }
        }
    }

    /// Returns an iterator over the blocks compatible with a partially-bound
    /// key id pattern: `pattern[i] = Some(id)` requires the block key to
    /// equal `id` at position `i`, `None` leaves the position unconstrained.
    ///
    /// A pattern entry whose id is unassigned in `interner` (in particular
    /// [`MISSING_ID`], the interned form of a constant that occurs in no
    /// fact) matches nothing. The iterator borrows the index and the pattern
    /// and allocates nothing beyond the (rare) fully-bound direct lookup;
    /// candidate lists are walked in place — and candidate filtering is raw
    /// `u32` equality — instead of being copied out.
    pub fn blocks_matching<'a, 'p>(
        &'a self,
        pattern: &'p [Option<u32>],
        interner: &ValueInterner,
    ) -> BlocksMatching<'a, 'p> {
        // An unassigned constraint id (MISSING_ID or stale) matches nothing.
        if pattern
            .iter()
            .flatten()
            .any(|&id| !interner.contains_id(id))
        {
            return BlocksMatching {
                blocks: &self.blocks,
                pattern,
                source: BlockSource::One(None),
            };
        }
        // Fully bound: direct lookup, no filtering needed.
        if !pattern.is_empty() && pattern.iter().all(Option::is_some) {
            let key: Vec<u32> = pattern.iter().map(|v| v.unwrap()).collect();
            return BlocksMatching {
                blocks: &self.blocks,
                pattern,
                source: BlockSource::One(self.block_by_key_ids(&key, interner)),
            };
        }
        // A bound first component restricts candidates to a contiguous span
        // of the key-sorted block list (empty span: no match anywhere).
        let span = match pattern.first().copied().flatten() {
            Some(v) if !self.blocks.is_empty() => self.first_component_span(v, interner),
            Some(_) => 0..0,
            None => 0..self.blocks.len(),
        };
        // A deeper bound position may be more selective than the span.
        let mut best: Option<&Vec<usize>> = None;
        for (p, v) in pattern.iter().enumerate().skip(1) {
            if let Some(v) = v {
                match self.deep_pos.get(p - 1).and_then(|m| m.get(v)) {
                    Some(ids) => {
                        if best.map(|b| ids.len() < b.len()).unwrap_or(true) {
                            best = Some(ids);
                        }
                    }
                    None => {
                        return BlocksMatching {
                            blocks: &self.blocks,
                            pattern,
                            source: BlockSource::One(None),
                        }
                    }
                }
            }
        }
        let source = match best {
            Some(ids) if ids.len() < span.len() => BlockSource::Candidates(ids.iter()),
            _ => BlockSource::All(span),
        };
        BlocksMatching {
            blocks: &self.blocks,
            pattern,
            source,
        }
    }
}

/// Where [`BlocksMatching`] draws candidate block positions from.
enum BlockSource<'a> {
    /// A single pre-resolved block (fully-bound pattern), already verified.
    One(Option<&'a IndexedBlock>),
    /// The posting list of the most selective bound deep key position.
    Candidates(std::slice::Iter<'a, usize>),
    /// A contiguous span of the sorted block list: the whole relation when
    /// no key position is bound, or the first-component span when (only)
    /// position 0 is.
    All(Range<usize>),
}

/// Iterator returned by [`RelationIndex::blocks_matching`].
pub struct BlocksMatching<'a, 'p> {
    blocks: &'a [IndexedBlock],
    pattern: &'p [Option<u32>],
    source: BlockSource<'a>,
}

impl<'a> Iterator for BlocksMatching<'a, '_> {
    type Item = &'a IndexedBlock;

    fn next(&mut self) -> Option<&'a IndexedBlock> {
        loop {
            let candidate = match &mut self.source {
                BlockSource::One(slot) => return slot.take(),
                BlockSource::Candidates(ids) => self.blocks.get(*ids.next()?)?,
                BlockSource::All(range) => &self.blocks[range.next()?],
            };
            // Raw id equality: id equality is value equality by the interner
            // contract.
            let matches = self
                .pattern
                .iter()
                .enumerate()
                .all(|(p, v)| v.map(|v| candidate.key[p] == v).unwrap_or(true));
            if matches {
                return Some(candidate);
            }
        }
    }
}

/// One pushed-down block predicate for [`DbIndex::restrict`]: keeps only
/// the blocks of `relation` whose key satisfies `op value` at key position
/// `pos`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRestriction {
    /// The relation whose block list is restricted.
    pub relation: String,
    /// Key position the predicate constrains (`< key_len`).
    pub pos: usize,
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal the key component is compared against.
    pub value: Value,
}

/// How [`DbIndex::restrict`] answered one relation's restrictions — the
/// access-path record surfaced by `explain` and the bench harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessPath {
    /// The restricted relation.
    pub relation: String,
    /// Whether an ordered binary-searched seek narrowed the block list
    /// (false: pure linear filter — forced, unselective, or unseekable).
    pub used_seek: bool,
    /// Blocks before restriction.
    pub total_blocks: usize,
    /// The fence-histogram estimate the seek-vs-scan choice was made on
    /// (equals `total_blocks` when no seek was attempted).
    pub est_blocks: usize,
    /// Blocks actually surviving all of the relation's restrictions.
    pub matched_blocks: usize,
    /// Predicate summary, e.g. `seek key[0] < 500; filter key[1] <> 'x'`.
    pub detail: String,
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} ({} of {} blocks, est {})",
            self.relation,
            if self.detail.is_empty() {
                "scan"
            } else {
                &self.detail
            },
            self.matched_blocks,
            self.total_blocks,
            self.est_blocks
        )
    }
}

/// One level-0 block touched by [`DbIndex::apply_delta`]: the relation and
/// the primary-key value of a block that gained or lost facts (including
/// blocks that were created or emptied by the delta). Keys are materialised
/// [`Value`]s — this type crosses the result boundary into the serving
/// layer's dirty-group bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirtyBlock {
    /// The relation the block belongs to.
    pub relation: String,
    /// The block's shared primary-key value.
    pub key: Vec<Value>,
}

/// A block index over all relations of a database instance.
///
/// An index is plain owned data (`Send + Sync`, asserted below): the serving
/// layer freezes one per snapshot inside an `Arc<DbIndex>` and every
/// concurrent reader — and every executor worker thread under it — borrows
/// that one copy. Incremental maintenance ([`DbIndex::apply_delta`]) is only
/// ever performed on a private clone *before* the clone is published inside
/// a new snapshot, so published indexes are immutable. The interior `Arc`s
/// (per relation, per block column set, and the interner's sorted prefix)
/// never change after publication either — path copies happen on the
/// writer's private clone — so borrowing through a published index is
/// data-race-free by construction.
///
/// Per-relation indexes are `Arc`-shared: cloning a `DbIndex` is one pointer
/// bump per relation, and `apply_delta` path-copies only the relations (and,
/// inside them, the blocks) the delta touches — see the module docs.
#[derive(Clone, Debug, Default)]
pub struct DbIndex {
    relations: HashMap<String, Arc<RelationIndex>>,
    /// The id space all relations' columns are expressed in. `Arc`-shared
    /// across snapshots; [`DbIndex::apply_delta`] extends a private clone
    /// append-only.
    interner: Arc<ValueInterner>,
    /// Returned for names outside the schema, so lookups are total.
    empty: RelationIndex,
}

// The sharing contract the serving layer relies on.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbIndex>();
};

impl DbIndex {
    /// Builds the index for a database instance: one pass collecting the
    /// sorted value universe into the interner, one pass translating facts
    /// into columnar id storage.
    pub fn new(db: &DatabaseInstance) -> DbIndex {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let universe: BTreeSet<Value> = db.facts().flat_map(|f| f.args().iter().cloned()).collect();
        let interner = ValueInterner::from_sorted(universe.into_iter().collect());
        let mut relations: HashMap<String, Arc<RelationIndex>> = HashMap::new();
        let mut ids: Vec<u32> = Vec::new();
        for (name, sig) in db.schema().relations() {
            let key_len = sig.key_len();
            let mut rel = RelationIndex {
                name: name.to_string(),
                blocks: Vec::new(),
                key_len,
                arity: sig.arity(),
                deep_pos: vec![HashMap::new(); key_len.saturating_sub(1)],
                stats: RelationStats::default(),
            };
            // Facts arrive in sorted order, so each block's facts form one
            // contiguous run: accumulate the run's rows, then freeze the
            // columns into an `Arc` when the key changes. Because every
            // value is in the interner's sorted prefix here, id order is
            // value order and block/row order comes out right by raw ids.
            let mut pending: Option<(Box<[u32]>, FactColumns)> = None;
            let flush = |rel: &mut RelationIndex, pending: Option<(Box<[u32]>, FactColumns)>| {
                let Some((key, cols)) = pending else { return };
                let i = rel.blocks.len();
                for (p, &v) in key.iter().enumerate().skip(1) {
                    rel.deep_pos[p - 1].entry(v).or_default().push(i);
                }
                rel.blocks.push(IndexedBlock {
                    key,
                    cols: Arc::new(cols),
                });
            };
            for fact in db.facts_of(name) {
                ids.clear();
                ids.extend(fact.args().iter().map(|v| {
                    interner
                        .id_of(v)
                        .expect("every instance value is in the interner")
                }));
                let key = &ids[..key_len];
                match &mut pending {
                    Some((k, cols)) if &**k == key => cols.push_row(&ids),
                    _ => {
                        flush(&mut rel, pending.take());
                        let mut cols = FactColumns::with_arity(sig.arity());
                        cols.push_row(&ids);
                        pending = Some((key.into(), cols));
                    }
                }
            }
            flush(&mut rel, pending.take());
            rel.stats = RelationStats::compute(&rel.blocks);
            relations.insert(name.to_string(), Arc::new(rel));
        }
        DbIndex {
            relations,
            interner: Arc::new(interner),
            empty: RelationIndex::default(),
        }
    }

    /// The id space of this index. Callers resolve query constants and group
    /// keys through it ([`ValueInterner::id_or_missing`]) and materialise
    /// results back out of it.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Applies a sequence of change events in place, without rebuilding (and
    /// without advancing [`DbIndex::build_count`] — incremental maintenance
    /// is precisely *not* a build). After the call the index is structurally
    /// identical to a cold [`DbIndex::new`] over the mutated instance: rows
    /// sit at their sorted positions inside blocks, blocks at their sorted
    /// (value-order) positions inside relations, and the key/posting lookups
    /// match. The id *layouts* may differ — the warm interner appends ids
    /// for first-seen values while a cold build sorts everything — which is
    /// exactly the difference [`DbIndex::assert_structurally_identical`]
    /// quotients out by comparing materialised values.
    ///
    /// Interning is two-pass: first every insert's values are interned
    /// (append-only, on a private copy of the shared interner), then events
    /// are resolved and applied per relation. A delete whose values are not
    /// all interned cannot name a stored fact and is a no-op.
    ///
    /// Maintenance **path-copies**: events are grouped per relation, each
    /// touched relation is materialised once (`Arc::make_mut` — untouched
    /// relations keep sharing storage with every other clone of this index),
    /// and inside it only the dirty blocks' columns are deep-copied. Deep
    /// posting lists (key positions past the first; single-column-key
    /// relations have none) are maintained surgically while a batch's
    /// structural changes are few, and rebuilt in one `O(blocks)` pass once
    /// they are not — never per event — so a bulk batch costs
    /// `O(|dirty relation| + |delta| log |blocks|)` rather than
    /// `O(|events| × |blocks|)`.
    ///
    /// Returns the deduplicated, sorted list of blocks whose contents changed
    /// — the dirty set callers use to decide which cached per-group answers
    /// must be recomputed. Events that change nothing (re-inserting a present
    /// fact, deleting an absent one) and events for relations outside the
    /// indexed schema mark nothing dirty.
    pub fn apply_delta(&mut self, events: &[DeltaEvent]) -> Vec<DirtyBlock> {
        /// Structural changes per batch and relation past which per-event
        /// posting-list surgery (each `O(postings)`) loses to one deferred
        /// `O(blocks)` rebuild.
        const SURGERY_CAP: usize = 16;
        // Pass 1: intern the values of every applicable insert, append-only
        // on a private copy (other snapshots keep their pinned layout).
        {
            let interner = Arc::make_mut(&mut self.interner);
            for event in events {
                if !matches!(event.op, DeltaOp::Insert) {
                    continue;
                }
                let Some(rel) = self.relations.get(event.fact.relation()) else {
                    continue;
                };
                if event.fact.arity() != rel.arity {
                    continue;
                }
                for v in event.fact.args() {
                    interner.intern(v);
                }
            }
        }
        let interner = self.interner.clone();
        // Pass 2: group events per relation, preserving their order within
        // each relation (order across relations is immaterial — relations
        // are independent), then resolve and apply.
        let mut by_relation: BTreeMap<&str, Vec<&DeltaEvent>> = BTreeMap::new();
        for event in events {
            by_relation
                .entry(event.fact.relation())
                .or_default()
                .push(event);
        }
        let mut dirty: BTreeSet<DirtyBlock> = BTreeSet::new();
        let mut ids: Vec<u32> = Vec::new();
        for (name, rel_events) in by_relation {
            let Some(shared) = self.relations.get_mut(name) else {
                continue;
            };
            // The one per-relation path copy: blocks clone shallowly (their
            // columns are `Arc`-shared) plus the deep posting lists.
            let rel = Arc::make_mut(shared);
            let has_deep = rel.key_len > 1;
            let mut structural_changes = 0usize;
            let mut deferred = false;
            for event in rel_events {
                if event.fact.arity() != rel.arity {
                    // Cannot correspond to any stored fact; instances validate
                    // arities on insert, so only malformed events land here.
                    // (An exact check, not `< key_len`: a fact that covers the
                    // key but not the full arity must not be indexed either.)
                    continue;
                }
                ids.clear();
                ids.extend(event.fact.args().iter().map(|v| interner.id_or_missing(v)));
                if ids.contains(&MISSING_ID) {
                    // Only reachable for deletes (pass 1 interned every
                    // applicable insert): the fact cannot be stored, no-op.
                    debug_assert!(matches!(event.op, DeltaOp::Delete));
                    continue;
                }
                let (changed, structural) = match event.op {
                    DeltaOp::Insert => rel.insert_fact_ids(&ids, &interner),
                    DeltaOp::Delete => rel.remove_fact_ids(&ids, &interner),
                };
                if has_deep && !matches!(structural, Structural::No) {
                    structural_changes += 1;
                    deferred = deferred || structural_changes > SURGERY_CAP;
                    if !deferred {
                        match structural {
                            Structural::Inserted(pos) => rel.deep_insert_block(pos),
                            Structural::Removed(pos) => {
                                // The emptied block's key is the event fact's
                                // key prefix.
                                rel.deep_remove_block(pos, &ids[..rel.key_len]);
                            }
                            Structural::No => unreachable!("guarded above"),
                        }
                    }
                }
                if changed {
                    dirty.insert(DirtyBlock {
                        relation: name.to_string(),
                        key: interner.values_of(&ids[..rel.key_len]),
                    });
                }
            }
            if deferred {
                rel.rebuild_deep_pos();
            }
            // Stats ride with the relation: one O(blocks) pass per touched
            // relation per batch keeps the seek-vs-scan estimates current
            // without ever scanning untouched relations.
            rel.stats = RelationStats::compute(&rel.blocks);
        }
        dirty.into_iter().collect()
    }

    /// Builds a **restricted view** of this index: for each relation named
    /// by a [`BlockRestriction`], a new [`RelationIndex`] holding only the
    /// blocks whose keys satisfy *all* of that relation's restrictions (with
    /// posting lists and stats rebuilt for the surviving blocks); every
    /// other relation — and the interner — stays `Arc`-shared with `self`.
    /// Not a build: [`DbIndex::build_count`] does not advance.
    ///
    /// This is how comparison predicates on key-position variables reach the
    /// evaluator: dropping a block wholesale restricts every repair's choice
    /// for that block away, which is exactly the predicate's effect on
    /// embeddings (the key value is shared by all facts of the block), so
    /// the unchanged join/certainty machinery downstream computes the
    /// predicate-filtered range answers.
    ///
    /// The access path per relation is **cost-based**: a restriction chain
    /// starting at key position 0 (equalities extending to deeper positions,
    /// then at most one inequality) is answered by an ordered
    /// [`RelationIndex::prefix_seek_span`] — but only when the fence
    /// histogram ([`RelationStats`]) estimates it selects fewer than all
    /// blocks and `force_scan` is off. Everything else (deeper positions,
    /// `<>`, unselective estimates) linear-filters. Returns the view plus
    /// one [`AccessPath`] record per restricted relation (sorted by relation
    /// name), which `explain` and the bench harness surface.
    pub fn restrict(
        &self,
        restrictions: &[BlockRestriction],
        force_scan: bool,
    ) -> (DbIndex, Vec<AccessPath>) {
        let mut grouped: BTreeMap<&str, Vec<&BlockRestriction>> = BTreeMap::new();
        for r in restrictions {
            grouped.entry(r.relation.as_str()).or_default().push(r);
        }
        let mut out = self.clone();
        let mut paths = Vec::new();
        for (name, rs) in grouped {
            let Some(shared) = self.relations.get(name) else {
                continue;
            };
            let rel: &RelationIndex = shared;
            debug_assert!(rs.iter().all(|r| r.pos < rel.key_len));
            let total = rel.blocks.len();
            // Histogram estimate for the head restriction (the decision is
            // about the seekable position; deeper filters ride along).
            let head = rs.iter().find(|r| r.pos == 0 && r.op.is_contiguous());
            let est = head.map_or(total, |r| {
                rel.stats
                    .estimate_head_matches(r.op, &r.value, &self.interner)
            });
            // Greedy seek chain: contiguous restriction at position 0, then
            // — while every earlier step was an equality — at each next
            // position. `consumed` marks restrictions the seek answered.
            let mut span = 0..total;
            let mut consumed = vec![false; rs.len()];
            let mut seek_parts: Vec<String> = Vec::new();
            if !force_scan && est < total {
                let mut pos = 0usize;
                let mut prefix_is_eq = true;
                while prefix_is_eq {
                    let Some(i) = (0..rs.len())
                        .find(|&i| !consumed[i] && rs[i].pos == pos && rs[i].op.is_contiguous())
                    else {
                        break;
                    };
                    let r = rs[i];
                    span = rel.range_span_at(span, pos, r.op, &r.value, &self.interner);
                    consumed[i] = true;
                    seek_parts.push(format!("key[{pos}] {} {}", r.op, r.value));
                    prefix_is_eq = r.op == CmpOp::Eq;
                    pos += 1;
                }
            }
            let used_seek = !seek_parts.is_empty();
            // Everything the seek did not answer linear-filters the span.
            let residual: Vec<(&BlockRestriction, Result<u32, u32>)> = rs
                .iter()
                .zip(&consumed)
                .filter(|(_, &c)| !c)
                .map(|(&r, _)| (r, self.interner.prefix_rank(&r.value)))
                .collect();
            let filter_parts: Vec<String> = residual
                .iter()
                .map(|(r, _)| format!("key[{}] {} {}", r.pos, r.op, r.value))
                .collect();
            let blocks: Vec<IndexedBlock> = rel.blocks[span]
                .iter()
                .filter(|b| {
                    residual.iter().all(|(r, rank)| {
                        r.op.holds(self.interner.cmp_id_to_value(b.key[r.pos], &r.value, *rank))
                    })
                })
                .cloned()
                .collect();
            let mut restricted = RelationIndex {
                name: rel.name.clone(),
                blocks,
                key_len: rel.key_len,
                arity: rel.arity,
                deep_pos: Vec::new(),
                stats: RelationStats::default(),
            };
            restricted.rebuild_deep_pos();
            restricted.stats = RelationStats::compute(&restricted.blocks);
            let mut detail = String::new();
            if used_seek {
                detail.push_str(&format!("seek {}", seek_parts.join(", ")));
            }
            if !filter_parts.is_empty() {
                if used_seek {
                    detail.push_str("; ");
                }
                detail.push_str(&format!("filter {}", filter_parts.join(", ")));
            }
            paths.push(AccessPath {
                relation: name.to_string(),
                used_seek,
                total_blocks: total,
                est_blocks: if used_seek { est } else { total },
                matched_blocks: restricted.blocks.len(),
                detail,
            });
            out.relations.insert(name.to_string(), Arc::new(restricted));
        }
        (out, paths)
    }

    /// The index of a relation. Every relation of the schema is present (even
    /// if it holds no facts); names outside the schema resolve to a shared
    /// empty index, so the lookup is infallible.
    pub fn relation(&self, name: &str) -> &RelationIndex {
        self.relations
            .get(name)
            .map(Arc::as_ref)
            .unwrap_or(&self.empty)
    }

    /// Returns `true` if the named relation's index is physically shared
    /// (same allocation) between `self` and `other` — i.e. no delta has
    /// path-copied it since the two diverged. Both lacking the relation
    /// counts as shared. For tests and observability of the
    /// structural-sharing contract.
    pub fn shares_relation_storage(&self, other: &DbIndex, name: &str) -> bool {
        match (self.relations.get(name), other.relations.get(name)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Panics unless `self` is **structurally identical** to `other`: same
    /// relations, same block order, same row order inside every block, and
    /// identical deep posting lists — all compared on **materialised
    /// values**, not raw ids. Id layouts legitimately differ between a warm
    /// index (whose interner appended ids commit by commit, and may still
    /// hold values the instance no longer contains) and a cold rebuild
    /// (all-sorted, minimal); the structural invariant
    /// [`DbIndex::apply_delta`] maintains is about the *value-level* shape,
    /// which this helper checks exactly. Tests (unit, integration, and
    /// property-based) call it to verify warm == cold.
    pub fn assert_structurally_identical(&self, other: &DbIndex) {
        let mut names: Vec<&String> = self.relations.keys().collect();
        names.sort();
        let mut other_names: Vec<&String> = other.relations.keys().collect();
        other_names.sort();
        assert_eq!(names, other_names, "relation sets differ");
        for name in names {
            let a = &self.relations[name];
            let b = &other.relations[name];
            assert_eq!(a.key_len, b.key_len, "{name}: key_len");
            assert_eq!(a.arity, b.arity, "{name}: arity");
            assert_eq!(a.blocks.len(), b.blocks.len(), "{name}: block count");
            for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
                assert_eq!(
                    self.interner.values_of(&x.key),
                    other.interner.values_of(&y.key),
                    "{name}: block order"
                );
                assert_eq!(
                    x.cols.rows(),
                    y.cols.rows(),
                    "{name}: row count of block {:?}",
                    self.interner.values_of(&x.key)
                );
                for row in 0..x.cols.rows() {
                    let vx: Vec<&Value> = x
                        .cols
                        .row_ids(row)
                        .map(|id| self.interner.value(id))
                        .collect();
                    let vy: Vec<&Value> = y
                        .cols
                        .row_ids(row)
                        .map(|id| other.interner.value(id))
                        .collect();
                    assert_eq!(
                        vx,
                        vy,
                        "{name}: row {row} of block {:?}",
                        self.interner.values_of(&x.key)
                    );
                }
            }
            let deep = |rel: &RelationIndex,
                        interner: &ValueInterner|
             -> Vec<BTreeMap<Value, Vec<usize>>> {
                rel.deep_pos
                    .iter()
                    .map(|m| {
                        m.iter()
                            .map(|(&id, pos)| (interner.value(id).clone(), pos.clone()))
                            .collect()
                    })
                    .collect()
            };
            assert_eq!(
                deep(a, &self.interner),
                deep(b, &other.interner),
                "{name}: deep posting lists"
            );
            assert_eq!(
                (a.stats.blocks, a.stats.facts, a.stats.distinct_head),
                (b.stats.blocks, b.stats.facts, b.stats.distinct_head),
                "{name}: stats counters"
            );
            assert_eq!(
                a.stats.fence_values(&self.interner),
                b.stats.fence_values(&other.interner),
                "{name}: stats fences"
            );
        }
    }

    /// Returns `true` if `name` is a relation of the indexed schema.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Number of [`DbIndex`] values constructed by this process since it
    /// started, across **all** threads.
    ///
    /// The engine guarantees exactly one construction per `glb`/`lub`/`range`
    /// call (on rewriting-backed paths) — the parallel executor's workers
    /// share the caller's index and build none of their own — and tests
    /// assert this by differencing the counter around a call. The counter is
    /// process-wide (an `AtomicU64`) rather than thread-local so a build on
    /// the calling thread plus zero builds on worker threads remains an
    /// observable "exactly one". Tests that difference it must serialise
    /// against other index-building tests in the same process (see
    /// `tests/build_invariant.rs`).
    pub fn build_count() -> u64 {
        BUILD_COUNT.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, Schema, Signature};

    fn db() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
            .with_relation("Empty", Signature::new(1, 1, []).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("S", "b1", "c1", 1),
            fact!("S", "b1", "c1", 2),
            fact!("S", "b1", "c2", 3),
            fact!("S", "b2", "c3", 5),
        ])
        .unwrap();
        db
    }

    /// Interns a value key through an index's id space (tests only; absent
    /// values become `MISSING_ID`, which matches nothing).
    fn key_ids(idx: &DbIndex, key: &[Value]) -> Vec<u32> {
        key.iter()
            .map(|v| idx.interner().id_or_missing(v))
            .collect()
    }

    #[test]
    fn blocks_and_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S");
        assert_eq!(s.blocks().len(), 3);
        assert_eq!(s.fact_count(), 4);
        let key = key_ids(&idx, &[Value::text("b1"), Value::text("c1")]);
        let b = s.block_by_key_ids(&key, idx.interner()).unwrap();
        assert_eq!(b.cols.rows(), 2);
        // Rows materialise back to the original facts, in sorted order.
        assert_eq!(
            s.materialize_fact(b, 0, idx.interner()),
            fact!("S", "b1", "c1", 1)
        );
        assert_eq!(
            s.materialize_fact(b, 1, idx.interner()),
            fact!("S", "b1", "c1", 2)
        );
        // A key containing an absent value resolves to MISSING_ID and finds
        // nothing.
        let absent = key_ids(&idx, &[Value::text("zz"), Value::text("c1")]);
        assert!(absent.contains(&MISSING_ID));
        assert!(s.block_by_key_ids(&absent, idx.interner()).is_none());
        // Empty relation exists in the index.
        assert_eq!(idx.relation("Empty").blocks().len(), 0);
        // Unknown relations resolve to an empty index instead of a panic or
        // an Option (doc contract: lookups are total).
        assert!(!idx.has_relation("Missing"));
        assert_eq!(idx.relation("Missing").blocks().len(), 0);
        let b1 = idx.interner().id_or_missing(&Value::text("b1"));
        assert_eq!(
            idx.relation("Missing")
                .blocks_matching(&[Some(b1)], idx.interner())
                .count(),
            0
        );
    }

    #[test]
    fn partial_key_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let interner = idx.interner();
        let id = |v: Value| interner.id_or_missing(&v);
        let s = idx.relation("S");
        // All blocks with first key component b1.
        let matched: Vec<_> = s
            .blocks_matching(&[Some(id(Value::text("b1"))), None], interner)
            .collect();
        assert_eq!(matched.len(), 2);
        // Unconstrained pattern returns every block.
        assert_eq!(s.blocks_matching(&[None, None], interner).count(), 3);
        // Second component only.
        let matched: Vec<_> = s
            .blocks_matching(&[None, Some(id(Value::text("c3")))], interner)
            .collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(interner.value(matched[0].key[0]), &Value::text("b2"));
        // Value absent from the index: the MISSING_ID constraint matches
        // nothing.
        assert_eq!(
            s.blocks_matching(&[Some(id(Value::text("zzz"))), None], interner)
                .count(),
            0
        );
        // Fully bound pattern.
        assert_eq!(
            s.blocks_matching(
                &[Some(id(Value::text("b1"))), Some(id(Value::text("c2")))],
                interner
            )
            .count(),
            1
        );
    }

    // The build-counter tests live in `tests/build_invariant.rs`: the counter
    // is process-wide, so differencing it is only deterministic in a test
    // binary whose other tests build no indexes concurrently.

    /// Full structural equality with a cold rebuild: block order, row order
    /// inside blocks, key lookup, and posting lists must all match on
    /// materialised values, not just the answers they produce. (Thin wrapper
    /// over the public helper so the call sites below keep their argument
    /// order.)
    fn assert_identical(incremental: &DbIndex, cold: &DbIndex) {
        incremental.assert_structurally_identical(cold);
    }

    #[test]
    fn apply_delta_matches_cold_rebuild() {
        let mut db = db();
        let mut idx = DbIndex::new(&db);
        let steps = [
            // Grow an existing block (sorts before the present facts).
            DeltaEvent::insert(fact!("S", "b1", "c1", 0)),
            // New block between existing ones. ("c15" and the keys below are
            // first-seen values: they land as *appended* interner ids, whose
            // raw order disagrees with value order — the binary searches must
            // still place the blocks correctly.)
            DeltaEvent::insert(fact!("S", "b1", "c15", 7)),
            // New block at the front and at the back.
            DeltaEvent::insert(fact!("S", "a0", "c0", 9)),
            DeltaEvent::insert(fact!("S", "z9", "c9", 9)),
            // First fact of the empty relation.
            DeltaEvent::insert(fact!("Empty", "e1")),
            // Shrink a block without emptying it.
            DeltaEvent::delete(fact!("S", "b1", "c1", 1)),
            // Empty a block entirely.
            DeltaEvent::delete(fact!("S", "b2", "c3", 5)),
            // No-ops: deleting an absent fact (whose values were never
            // interned), re-inserting a present one.
            DeltaEvent::delete(fact!("S", "nope", "c1", 1)),
            DeltaEvent::insert(fact!("S", "b1", "c2", 3)),
        ];
        for event in steps {
            let dirty = idx.apply_delta(std::slice::from_ref(&event));
            let effective = db.apply(event.clone()).unwrap().is_some();
            assert_eq!(
                !dirty.is_empty(),
                effective,
                "dirty iff the instance changed: {event}"
            );
            assert_identical(&idx, &DbIndex::new(&db));
        }
        // A batch reports each dirty block once, sorted, with materialised
        // keys.
        let batch = [
            DeltaEvent::insert(fact!("S", "m1", "c1", 1)),
            DeltaEvent::insert(fact!("S", "m1", "c1", 2)),
            DeltaEvent::insert(fact!("S", "b1", "c2", 30)),
        ];
        let dirty = idx.apply_delta(&batch);
        for e in &batch {
            db.apply(e.clone()).unwrap();
        }
        assert_eq!(
            dirty,
            vec![
                DirtyBlock {
                    relation: "S".to_string(),
                    key: vec![Value::text("b1"), Value::text("c2")],
                },
                DirtyBlock {
                    relation: "S".to_string(),
                    key: vec![Value::text("m1"), Value::text("c1")],
                },
            ]
        );
        assert_identical(&idx, &DbIndex::new(&db));
    }

    #[test]
    fn warm_lookups_cover_appended_ids() {
        // After a commit introduces first-seen values, the warm index must
        // answer pattern lookups for them (overlay ids), for pre-existing
        // values (prefix ids), and for absent values (MISSING_ID).
        let db = db();
        let mut idx = DbIndex::new(&db);
        idx.apply_delta(&[
            DeltaEvent::insert(fact!("S", "b1", "c15", 7)),
            DeltaEvent::insert(fact!("S", "aa", "c3", 8)),
        ]);
        let interner = idx.interner();
        let id = |v: Value| interner.id_or_missing(&v);
        let s = idx.relation("S");
        // Appended first component: contiguous span of one.
        assert_eq!(
            s.blocks_matching(&[Some(id(Value::text("aa"))), None], interner)
                .count(),
            1
        );
        // Appended deep component groups with the pre-existing posting.
        assert_eq!(
            s.blocks_matching(&[None, Some(id(Value::text("c3")))], interner)
                .count(),
            2
        );
        assert_eq!(
            s.blocks_matching(&[None, Some(id(Value::text("c15")))], interner)
                .count(),
            1
        );
        assert_eq!(
            s.blocks_matching(&[Some(id(Value::text("gone"))), None], interner)
                .count(),
            0
        );
    }

    #[test]
    fn apply_delta_path_copies_only_touched_relations() {
        let db = db();
        let base = DbIndex::new(&db);
        // A clone shares every relation's storage with its source.
        let mut derived = base.clone();
        assert!(base.shares_relation_storage(&derived, "S"));
        assert!(base.shares_relation_storage(&derived, "Empty"));
        // A delta to S materialises S and leaves Empty shared.
        let dirty = derived.apply_delta(&[DeltaEvent::insert(fact!("S", "b1", "c1", 99))]);
        assert_eq!(dirty.len(), 1);
        assert!(!base.shares_relation_storage(&derived, "S"));
        assert!(base.shares_relation_storage(&derived, "Empty"));
        // Inside the touched relation, untouched blocks still share their
        // columns; only the dirty block was deep-copied.
        let (s_base, s_derived) = (base.relation("S"), derived.relation("S"));
        let dirty_key = key_ids(&base, &[Value::text("b1"), Value::text("c1")]);
        for (x, y) in s_base.blocks().iter().zip(s_derived.blocks().iter()) {
            let shared = Arc::ptr_eq(&x.cols, &y.cols);
            let is_dirty = *x.key == *dirty_key;
            assert_eq!(shared, !is_dirty, "block {:?}", x.key);
        }
        // Ineffective deltas (re-inserting a present fact, deleting an
        // absent one) still count as a touch of the relation (the copy
        // happens before the lookup), but mark nothing dirty and deep-copy
        // no block's columns.
        let mut noop = base.clone();
        let dirty = noop.apply_delta(&[
            DeltaEvent::insert(fact!("S", "b1", "c1", 1)),
            DeltaEvent::delete(fact!("S", "zz", "zz", 1)),
        ]);
        assert!(dirty.is_empty());
        for (x, y) in base
            .relation("S")
            .blocks()
            .iter()
            .zip(noop.relation("S").blocks().iter())
        {
            assert!(Arc::ptr_eq(&x.cols, &y.cols), "block {:?}", x.key);
        }
        // The base index is unchanged throughout.
        base.assert_structurally_identical(&DbIndex::new(&db));
    }

    #[test]
    fn bulk_batches_match_cold_rebuilds() {
        // A batch comparable in size to the instance — the shape that used to
        // trigger the serving layer's drop-the-index fallback — must still
        // leave the index structurally identical to a cold rebuild.
        let mut db = db();
        let mut idx = DbIndex::new(&db);
        let mut batch = Vec::new();
        for i in 0..200 {
            batch.push(DeltaEvent::insert(fact!(
                "S",
                format!("bulk{i:03}"),
                "c",
                i
            )));
            if i % 3 == 0 {
                batch.push(DeltaEvent::insert(fact!(
                    "S",
                    format!("bulk{i:03}"),
                    "c",
                    i + 1000
                )));
            }
        }
        // Interleave deletions of pre-existing facts, including one that
        // empties a block.
        batch.push(DeltaEvent::delete(fact!("S", "b2", "c3", 5)));
        batch.push(DeltaEvent::delete(fact!("S", "b1", "c1", 1)));
        let dirty = idx.apply_delta(&batch);
        for e in &batch {
            db.apply(e.clone()).unwrap();
        }
        assert_eq!(dirty.len(), 202);
        idx.assert_structurally_identical(&DbIndex::new(&db));
    }

    /// Integer-keyed relation for seek/restriction tests: both positions are
    /// key, so every fact is its own block and block keys are (k0, k1).
    fn db_nums() -> DatabaseInstance {
        let schema = Schema::new().with_relation("R", Signature::new(2, 2, [0, 1]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("R", 1, 1),
            fact!("R", 1, 3),
            fact!("R", 1, 5),
            fact!("R", 2, 2),
            fact!("R", 2, 4),
            fact!("R", 3, 1),
            fact!("R", 5, 9),
        ])
        .unwrap();
        db
    }

    /// Brute-force reference for a span: the block positions whose key at
    /// `pos` satisfies `op v`, which must be contiguous for contiguous ops.
    fn brute_span(idx: &DbIndex, rel: &str, pos: usize, op: CmpOp, v: &Value) -> Vec<usize> {
        idx.relation(rel)
            .blocks()
            .iter()
            .enumerate()
            .filter(|(_, b)| op.holds(idx.interner().value(b.key[pos]).cmp(v)))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn head_seek_span_matches_brute_force() {
        let db = db_nums();
        let mut idx = DbIndex::new(&db);
        // Appended ids (out of raw order) must not confuse the seeks.
        idx.apply_delta(&[
            DeltaEvent::insert(fact!("R", 0, 7)),
            DeltaEvent::insert(fact!("R", 9, 0)),
        ]);
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq];
        for op in ops {
            for probe in -1..=10 {
                let v = Value::int(probe);
                let span = idx.relation("R").head_seek_span(op, &v, idx.interner());
                let expect = brute_span(&idx, "R", 0, op, &v);
                assert_eq!(
                    span.collect::<Vec<_>>(),
                    expect,
                    "head span for key[0] {op} {v}"
                );
            }
        }
    }

    #[test]
    fn prefix_seek_span_matches_brute_force() {
        let db = db_nums();
        let idx = DbIndex::new(&db);
        let r = idx.relation("R");
        for head in [1i64, 2, 3, 4] {
            let head_id = idx.interner().id_or_missing(&Value::int(head));
            for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq] {
                for probe in 0..=6 {
                    let v = Value::int(probe);
                    let span = r.prefix_seek_span(&[head_id], op, &v, idx.interner());
                    let expect: Vec<usize> = r
                        .blocks()
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| {
                            b.key[0] == head_id && op.holds(idx.interner().value(b.key[1]).cmp(&v))
                        })
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(
                        span.collect::<Vec<_>>(),
                        expect,
                        "prefix span for key[0] = {head}, key[1] {op} {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn restrict_agrees_with_brute_force_filter() {
        let db = db_nums();
        let idx = DbIndex::new(&db);
        let cases: Vec<Vec<BlockRestriction>> = vec![
            vec![BlockRestriction {
                relation: "R".into(),
                pos: 0,
                op: CmpOp::Lt,
                value: Value::int(3),
            }],
            vec![BlockRestriction {
                relation: "R".into(),
                pos: 1,
                op: CmpOp::Ge,
                value: Value::int(4),
            }],
            vec![
                BlockRestriction {
                    relation: "R".into(),
                    pos: 0,
                    op: CmpOp::Eq,
                    value: Value::int(1),
                },
                BlockRestriction {
                    relation: "R".into(),
                    pos: 1,
                    op: CmpOp::Gt,
                    value: Value::int(2),
                },
            ],
            vec![BlockRestriction {
                relation: "R".into(),
                pos: 0,
                op: CmpOp::Ne,
                value: Value::int(2),
            }],
        ];
        for restrictions in &cases {
            let expect: Vec<Vec<Value>> = idx
                .relation("R")
                .blocks()
                .iter()
                .filter(|b| {
                    restrictions
                        .iter()
                        .all(|r| r.op.holds(idx.interner().value(b.key[r.pos]).cmp(&r.value)))
                })
                .map(|b| idx.interner().values_of(&b.key))
                .collect();
            for force_scan in [false, true] {
                let (view, paths) = idx.restrict(restrictions, force_scan);
                let got: Vec<Vec<Value>> = view
                    .relation("R")
                    .blocks()
                    .iter()
                    .map(|b| view.interner().values_of(&b.key))
                    .collect();
                assert_eq!(got, expect, "restricted blocks ({restrictions:?})");
                assert_eq!(paths.len(), 1);
                assert_eq!(paths[0].matched_blocks, expect.len());
                assert_eq!(paths[0].total_blocks, 7);
                if force_scan {
                    assert!(!paths[0].used_seek, "force_scan must not seek");
                }
                // Stats track the restricted block list.
                assert_eq!(view.relation("R").stats().blocks, expect.len());
                // The deep posting lists cover exactly the surviving blocks.
                let mut rebuilt = view.relation("R").clone();
                rebuilt.rebuild_deep_pos();
                assert_eq!(rebuilt.deep_pos, view.relation("R").deep_pos);
            }
        }
        // The selective head predicate takes the seek path by default.
        let (_, paths) = idx.restrict(&cases[0], false);
        assert!(paths[0].used_seek);
        assert!(paths[0].est_blocks < paths[0].total_blocks);
    }

    #[test]
    fn restrict_shares_untouched_relations_and_interner() {
        let db = db();
        let idx = DbIndex::new(&db);
        let (view, paths) = idx.restrict(
            &[BlockRestriction {
                relation: "S".into(),
                pos: 0,
                op: CmpOp::Le,
                value: Value::text("b1"),
            }],
            false,
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(view.relation("S").blocks().len(), 2);
        assert!(view.shares_relation_storage(&idx, "Empty"));
        assert!(!view.shares_relation_storage(&idx, "S"));
        assert!(std::ptr::eq(view.interner(), idx.interner()));
        // Restricting an unknown relation is a no-op, not a panic.
        let (view2, paths2) = idx.restrict(
            &[BlockRestriction {
                relation: "Nope".into(),
                pos: 0,
                op: CmpOp::Lt,
                value: Value::int(1),
            }],
            false,
        );
        assert!(paths2.is_empty());
        assert!(view2.shares_relation_storage(&idx, "S"));
    }

    #[test]
    fn stats_track_block_list_shape() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S").stats();
        assert_eq!(s.blocks, 3);
        assert_eq!(s.facts, 4);
        assert_eq!(s.distinct_head, 2); // b1, b2
        assert_eq!(idx.relation("Empty").stats().blocks, 0);
        // Estimates: a predicate matching no fence still rounds sanely, a
        // predicate matching all fences estimates the whole relation, and
        // `<>` never pretends to be seekable.
        let est_all = s.estimate_head_matches(CmpOp::Ge, &Value::text("a"), idx.interner());
        assert_eq!(est_all, 3);
        let est_none = s.estimate_head_matches(CmpOp::Lt, &Value::text("a"), idx.interner());
        assert_eq!(est_none, 0);
        assert_eq!(
            s.estimate_head_matches(CmpOp::Ne, &Value::text("b1"), idx.interner()),
            3
        );
    }

    #[test]
    fn apply_delta_ignores_unknown_relations() {
        let db = db();
        let mut idx = DbIndex::new(&db);
        let before_len = idx.interner().len();
        let dirty = idx.apply_delta(&[
            DeltaEvent::insert(fact!("Missing", "x", "y")),
            // Arity shorter than the key cannot match any stored fact.
            DeltaEvent::delete(fact!("S", "b1")),
            // Neither can a fact that covers the key but not the full arity:
            // indexing it would diverge from a cold rebuild (the instance
            // rejects it) and corrupt downstream numeric-position reads.
            DeltaEvent::insert(fact!("S", "b1", "c1")),
            DeltaEvent::insert(fact!("S", "b1", "c1", 8, 9)),
        ]);
        assert!(dirty.is_empty());
        // None of the inapplicable events interned anything.
        assert_eq!(idx.interner().len(), before_len);
        assert_identical(&idx, &DbIndex::new(&db));
    }
}
