//! A block-oriented index over a database instance, used by the operational
//! evaluators (embedding enumeration, certainty checks, ∀embedding
//! computation).

use rcqa_data::{DatabaseInstance, Fact, Value};
use std::collections::HashMap;

/// One block: the facts of a relation sharing a primary-key value.
#[derive(Clone, Debug)]
pub struct IndexedBlock {
    /// The shared key value.
    pub key: Vec<Value>,
    /// The facts of the block.
    pub facts: Vec<Fact>,
}

/// Index over one relation.
#[derive(Clone, Debug, Default)]
pub struct RelationIndex {
    /// All blocks of the relation.
    pub blocks: Vec<IndexedBlock>,
    /// Lookup from full key value to block position.
    by_key: HashMap<Vec<Value>, usize>,
    /// For each key position, lookup from value to the blocks having that
    /// value at that position.
    by_key_pos: Vec<HashMap<Value, Vec<usize>>>,
}

impl RelationIndex {
    /// Number of facts in the relation.
    pub fn fact_count(&self) -> usize {
        self.blocks.iter().map(|b| b.facts.len()).sum()
    }

    /// Looks up the block with exactly the given key.
    pub fn block_by_key(&self, key: &[Value]) -> Option<&IndexedBlock> {
        self.by_key.get(key).map(|&i| &self.blocks[i])
    }

    /// Returns the blocks compatible with a partially-bound key pattern:
    /// `pattern[i] = Some(v)` requires the block key to equal `v` at
    /// position `i`, `None` leaves the position unconstrained.
    pub fn blocks_matching<'a>(&'a self, pattern: &[Option<Value>]) -> Vec<&'a IndexedBlock> {
        // Fully bound: direct lookup.
        if pattern.iter().all(Option::is_some) {
            let key: Vec<Value> = pattern.iter().map(|v| v.clone().unwrap()).collect();
            return self.block_by_key(&key).into_iter().collect();
        }
        // Use the most selective bound position, if any.
        let mut best: Option<&Vec<usize>> = None;
        for (p, v) in pattern.iter().enumerate() {
            if let Some(v) = v {
                match self.by_key_pos[p].get(v) {
                    Some(ids) => {
                        if best.map(|b| ids.len() < b.len()).unwrap_or(true) {
                            best = Some(ids);
                        }
                    }
                    None => return Vec::new(),
                }
            }
        }
        let candidates: Vec<usize> = match best {
            Some(ids) => ids.clone(),
            None => (0..self.blocks.len()).collect(),
        };
        candidates
            .into_iter()
            .map(|i| &self.blocks[i])
            .filter(|b| {
                pattern
                    .iter()
                    .enumerate()
                    .all(|(p, v)| v.as_ref().map(|v| &b.key[p] == v).unwrap_or(true))
            })
            .collect()
    }
}

/// A block index over all relations of a database instance.
#[derive(Clone, Debug, Default)]
pub struct DbIndex {
    relations: HashMap<String, RelationIndex>,
}

impl DbIndex {
    /// Builds the index for a database instance.
    pub fn new(db: &DatabaseInstance) -> DbIndex {
        let mut relations: HashMap<String, RelationIndex> = HashMap::new();
        for (name, sig) in db.schema().relations() {
            let key_len = sig.key_len();
            let mut rel = RelationIndex {
                blocks: Vec::new(),
                by_key: HashMap::new(),
                by_key_pos: vec![HashMap::new(); key_len],
            };
            for fact in db.facts_of(name) {
                let key = fact.args()[..key_len].to_vec();
                let idx = match rel.by_key.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = rel.blocks.len();
                        rel.blocks.push(IndexedBlock {
                            key: key.clone(),
                            facts: Vec::new(),
                        });
                        rel.by_key.insert(key.clone(), i);
                        for (p, v) in key.iter().enumerate() {
                            rel.by_key_pos[p].entry(v.clone()).or_default().push(i);
                        }
                        i
                    }
                };
                rel.blocks[idx].facts.push(fact.clone());
            }
            relations.insert(name.to_string(), rel);
        }
        DbIndex { relations }
    }

    /// The index of a relation (every relation of the schema is present, even
    /// if empty).
    pub fn relation(&self, name: &str) -> Option<&RelationIndex> {
        self.relations.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, Schema, Signature};

    fn db() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
            .with_relation("Empty", Signature::new(1, 1, []).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("S", "b1", "c1", 1),
            fact!("S", "b1", "c1", 2),
            fact!("S", "b1", "c2", 3),
            fact!("S", "b2", "c3", 5),
        ])
        .unwrap();
        db
    }

    #[test]
    fn blocks_and_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S").unwrap();
        assert_eq!(s.blocks.len(), 3);
        assert_eq!(s.fact_count(), 4);
        let b = s
            .block_by_key(&[Value::text("b1"), Value::text("c1")])
            .unwrap();
        assert_eq!(b.facts.len(), 2);
        assert!(s.block_by_key(&[Value::text("zz"), Value::text("c1")]).is_none());
        // Empty relation exists in the index.
        assert_eq!(idx.relation("Empty").unwrap().blocks.len(), 0);
        assert!(idx.relation("Missing").is_none());
    }

    #[test]
    fn partial_key_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S").unwrap();
        // All blocks with first key component b1.
        let matched = s.blocks_matching(&[Some(Value::text("b1")), None]);
        assert_eq!(matched.len(), 2);
        // Unconstrained pattern returns every block.
        let all = s.blocks_matching(&[None, None]);
        assert_eq!(all.len(), 3);
        // Second component only.
        let matched = s.blocks_matching(&[None, Some(Value::text("c3"))]);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].key[0], Value::text("b2"));
        // Value absent from the index.
        let none = s.blocks_matching(&[Some(Value::text("zzz")), None]);
        assert!(none.is_empty());
        // Fully bound pattern.
        let one = s.blocks_matching(&[Some(Value::text("b1")), Some(Value::text("c2"))]);
        assert_eq!(one.len(), 1);
    }
}
