//! A block-oriented index over a database instance, used by the operational
//! evaluators (embedding enumeration, certainty checks, ∀embedding
//! computation).
//!
//! Building a [`DbIndex`] is `O(|db|)` and is the only full scan the engine
//! performs: every evaluation entry point ([`crate::engine::RangeCqa::glb`],
//! `lub`, `range`) builds **exactly one** index per call — shared by every
//! executor worker thread — and threads it by reference through
//! candidate-group enumeration, certainty checking, and ∀embedding
//! computation. The process-wide [`DbIndex::build_count`] counter exists so
//! tests can assert that invariant: it is an [`AtomicU64`] (not thread-local)
//! precisely so that an index built on one thread and *no* builds on the
//! executor's worker threads still sum to one observable construction.
//!
//! ## Structural sharing
//!
//! A [`DbIndex`] is a **persistent data structure**: each relation's
//! [`RelationIndex`] lives behind an [`Arc`], and each [`IndexedBlock`]'s
//! fact list behind another. Cloning an index is one pointer bump per
//! relation, and [`DbIndex::apply_delta`] **path-copies**: it materialises a
//! private copy of exactly the relations the delta touches (via
//! [`Arc::make_mut`]) and, inside them, of exactly the dirty blocks' fact
//! lists — every untouched relation and every untouched block keeps sharing
//! storage with the index the clone came from. The serving layer relies on
//! this to derive a successor snapshot's index in
//! `O(|dirty relation| + |delta|)` instead of `O(|db|)` per write batch.

use rcqa_data::{DatabaseInstance, DeltaEvent, DeltaOp, Fact, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of [`DbIndex`] constructions performed by this process, across all
/// threads (including executor workers).
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);

/// One block: the facts of a relation sharing a primary-key value.
///
/// The fact list is `Arc`-shared: cloning a block (as part of cloning its
/// [`RelationIndex`] for incremental maintenance) bumps a pointer instead of
/// copying facts, and only blocks a delta actually changes are deep-copied
/// (see [`DbIndex::apply_delta`]).
#[derive(Clone, Debug)]
pub struct IndexedBlock {
    /// The shared key value.
    pub key: Vec<Value>,
    /// The facts of the block, in sorted order.
    pub facts: Arc<Vec<Fact>>,
}

/// Index over one relation.
///
/// The block list is the primary structure: blocks are **sorted by key**
/// (cold builds scan facts in sorted order; incremental maintenance keeps
/// them there), so a full-key lookup is a binary search and a bound *first*
/// key component selects a contiguous span of blocks — neither needs an
/// auxiliary map. Only the **deeper** key positions (`1..key_len`), where
/// matching blocks are scattered, keep posting lists. Relations with a
/// single-column key therefore carry no lookup maps at all, which makes the
/// write path's per-relation path copy (and its maintenance) almost free.
#[derive(Clone, Debug, Default)]
pub struct RelationIndex {
    /// All blocks of the relation, sorted by key.
    pub blocks: Vec<IndexedBlock>,
    /// Primary-key length of the relation (block keys are fact prefixes of
    /// this length).
    key_len: usize,
    /// Arity of the relation; delta events carrying any other arity cannot
    /// correspond to a stored fact and are rejected outright.
    arity: usize,
    /// Posting lists for key positions `1..key_len` (entry `p - 1` serves
    /// position `p`): value → sorted positions of the blocks holding that
    /// value there. Position 0 has none — its matches are a contiguous
    /// binary-searchable span of the sorted block list.
    deep_pos: Vec<HashMap<Value, Vec<usize>>>,
}

/// How one applied event changed a relation's **block list** (as opposed to
/// the interior of an existing block): not at all, a block inserted at a
/// position, or a block removed from one. Structural changes shift block
/// positions, so they drive the posting-list maintenance in
/// [`DbIndex::apply_delta`].
enum Structural {
    No,
    Inserted(usize),
    Removed(usize),
}

impl RelationIndex {
    /// Number of facts in the relation.
    pub fn fact_count(&self) -> usize {
        self.blocks.iter().map(|b| b.facts.len()).sum()
    }

    /// Looks up the block with exactly the given key: a binary search of the
    /// sorted block list.
    pub fn block_by_key(&self, key: &[Value]) -> Option<&IndexedBlock> {
        self.blocks
            .binary_search_by(|b| b.key.as_slice().cmp(key))
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// The contiguous span of block positions whose key starts with `v`
    /// (blocks are sorted by key, so first-component matches are adjacent).
    fn first_component_span(&self, v: &Value) -> Range<usize> {
        let start = self.blocks.partition_point(|b| b.key[0] < *v);
        let end = start + self.blocks[start..].partition_point(|b| b.key[0] <= *v);
        start..end
    }

    /// Inserts one fact: the fact lands at its sorted position in its block,
    /// and a new block lands at its sorted position in the block list (cold
    /// builds scan facts in sorted order, so block order is key order).
    ///
    /// Only the block list is maintained — lookups here binary-search it, so
    /// they never depend on the posting lists; [`DbIndex::apply_delta`] owns
    /// the posting-list maintenance for structural changes. Returns
    /// `(changed, structural)`.
    fn insert_fact(&mut self, fact: Fact) -> (bool, Structural) {
        let key = &fact.args()[..self.key_len];
        match self.blocks.binary_search_by(|b| b.key.as_slice().cmp(key)) {
            Ok(i) => {
                // Probe on the shared list first: a no-op re-insert must not
                // split storage. Only an actual change materialises the block.
                match self.blocks[i].facts.binary_search(&fact) {
                    Ok(_) => (false, Structural::No),
                    Err(pos) => {
                        Arc::make_mut(&mut self.blocks[i].facts).insert(pos, fact);
                        (true, Structural::No)
                    }
                }
            }
            Err(pos) => {
                self.blocks.insert(
                    pos,
                    IndexedBlock {
                        key: key.to_vec(),
                        facts: Arc::new(vec![fact]),
                    },
                );
                (true, Structural::Inserted(pos))
            }
        }
    }

    /// Removes one fact (and its block, if it becomes empty). Same contract
    /// as [`RelationIndex::insert_fact`]. Returns `(changed, structural)`.
    fn remove_fact(&mut self, fact: &Fact) -> (bool, Structural) {
        let key = &fact.args()[..self.key_len];
        let Ok(i) = self.blocks.binary_search_by(|b| b.key.as_slice().cmp(key)) else {
            return (false, Structural::No);
        };
        let Ok(pos) = self.blocks[i].facts.binary_search(fact) else {
            return (false, Structural::No);
        };
        let facts = Arc::make_mut(&mut self.blocks[i].facts);
        facts.remove(pos);
        if facts.is_empty() {
            self.blocks.remove(i);
            (true, Structural::Removed(i))
        } else {
            (true, Structural::No)
        }
    }

    /// Surgically threads a just-inserted block (at `pos`) through the deep
    /// posting lists: positions at or after `pos` shift up, then the new
    /// block's values are posted. `O(posting entries)` integer work — no
    /// allocation beyond the new postings.
    fn deep_insert_block(&mut self, pos: usize) {
        for map in &mut self.deep_pos {
            for ids in map.values_mut() {
                for i in ids.iter_mut() {
                    if *i >= pos {
                        *i += 1;
                    }
                }
            }
        }
        let key = self.blocks[pos].key.clone();
        for (p, v) in key.iter().enumerate().skip(1) {
            let ids = self.deep_pos[p - 1].entry(v.clone()).or_default();
            let at = ids.partition_point(|&i| i < pos);
            ids.insert(at, pos);
        }
    }

    /// Surgically unthreads a just-removed block (formerly at `pos`, with
    /// key `key`) from the deep posting lists: its postings disappear (empty
    /// lists are dropped — cold builds never hold them), then positions after
    /// `pos` shift down.
    fn deep_remove_block(&mut self, pos: usize, key: &[Value]) {
        for (p, v) in key.iter().enumerate().skip(1) {
            let map = &mut self.deep_pos[p - 1];
            if let Some(ids) = map.get_mut(v) {
                ids.retain(|&j| j != pos);
                if ids.is_empty() {
                    map.remove(v);
                }
            }
        }
        for map in &mut self.deep_pos {
            for ids in map.values_mut() {
                for i in ids.iter_mut() {
                    if *i > pos {
                        *i -= 1;
                    }
                }
            }
        }
    }

    /// Rebuilds the deep posting lists from the (sorted) block list, in
    /// exactly the layout a cold [`DbIndex::new`] produces: posting lists
    /// ascending, no empty entries. `O(blocks)` for this relation — the bulk
    /// alternative to per-event surgery.
    fn rebuild_deep_pos(&mut self) {
        self.deep_pos = vec![HashMap::new(); self.key_len.saturating_sub(1)];
        for (i, b) in self.blocks.iter().enumerate() {
            for (p, v) in b.key.iter().enumerate().skip(1) {
                self.deep_pos[p - 1].entry(v.clone()).or_default().push(i);
            }
        }
    }

    /// Returns an iterator over the blocks compatible with a partially-bound
    /// key pattern: `pattern[i] = Some(v)` requires the block key to equal
    /// `v` at position `i`, `None` leaves the position unconstrained.
    ///
    /// The iterator borrows both the index and the pattern and allocates
    /// nothing beyond the (rare) fully-bound direct lookup; candidate lists
    /// are walked in place instead of being copied out.
    pub fn blocks_matching<'a, 'p>(
        &'a self,
        pattern: &'p [Option<Value>],
    ) -> BlocksMatching<'a, 'p> {
        // Fully bound: direct lookup, no filtering needed.
        if !pattern.is_empty() && pattern.iter().all(Option::is_some) {
            let key: Vec<Value> = pattern.iter().map(|v| v.clone().unwrap()).collect();
            return BlocksMatching {
                blocks: &self.blocks,
                pattern,
                source: BlockSource::One(self.block_by_key(&key)),
            };
        }
        // A bound first component restricts candidates to a contiguous span
        // of the key-sorted block list (empty span: no match anywhere).
        let span = match pattern.first().and_then(|v| v.as_ref()) {
            Some(v) if !self.blocks.is_empty() => self.first_component_span(v),
            Some(_) => 0..0,
            None => 0..self.blocks.len(),
        };
        // A deeper bound position may be more selective than the span.
        let mut best: Option<&Vec<usize>> = None;
        for (p, v) in pattern.iter().enumerate().skip(1) {
            if let Some(v) = v {
                match self.deep_pos.get(p - 1).and_then(|m| m.get(v)) {
                    Some(ids) => {
                        if best.map(|b| ids.len() < b.len()).unwrap_or(true) {
                            best = Some(ids);
                        }
                    }
                    None => {
                        return BlocksMatching {
                            blocks: &self.blocks,
                            pattern,
                            source: BlockSource::One(None),
                        }
                    }
                }
            }
        }
        let source = match best {
            Some(ids) if ids.len() < span.len() => BlockSource::Candidates(ids.iter()),
            _ => BlockSource::All(span),
        };
        BlocksMatching {
            blocks: &self.blocks,
            pattern,
            source,
        }
    }
}

/// Where [`BlocksMatching`] draws candidate block positions from.
enum BlockSource<'a> {
    /// A single pre-resolved block (fully-bound pattern), already verified.
    One(Option<&'a IndexedBlock>),
    /// The posting list of the most selective bound deep key position.
    Candidates(std::slice::Iter<'a, usize>),
    /// A contiguous span of the sorted block list: the whole relation when
    /// no key position is bound, or the first-component span when (only)
    /// position 0 is.
    All(Range<usize>),
}

/// Iterator returned by [`RelationIndex::blocks_matching`].
pub struct BlocksMatching<'a, 'p> {
    blocks: &'a [IndexedBlock],
    pattern: &'p [Option<Value>],
    source: BlockSource<'a>,
}

impl<'a> Iterator for BlocksMatching<'a, '_> {
    type Item = &'a IndexedBlock;

    fn next(&mut self) -> Option<&'a IndexedBlock> {
        loop {
            let candidate = match &mut self.source {
                BlockSource::One(slot) => return slot.take(),
                BlockSource::Candidates(ids) => self.blocks.get(*ids.next()?)?,
                BlockSource::All(range) => &self.blocks[range.next()?],
            };
            let matches = self
                .pattern
                .iter()
                .enumerate()
                .all(|(p, v)| v.as_ref().map(|v| &candidate.key[p] == v).unwrap_or(true));
            if matches {
                return Some(candidate);
            }
        }
    }
}

/// One level-0 block touched by [`DbIndex::apply_delta`]: the relation and
/// the primary-key value of a block that gained or lost facts (including
/// blocks that were created or emptied by the delta).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirtyBlock {
    /// The relation the block belongs to.
    pub relation: String,
    /// The block's shared primary-key value.
    pub key: Vec<Value>,
}

/// A block index over all relations of a database instance.
///
/// An index is plain owned data (`Send + Sync`, asserted below): the serving
/// layer freezes one per snapshot inside an `Arc<DbIndex>` and every
/// concurrent reader — and every executor worker thread under it — borrows
/// that one copy. Incremental maintenance ([`DbIndex::apply_delta`]) is only
/// ever performed on a private clone *before* the clone is published inside
/// a new snapshot, so published indexes are immutable. The interior `Arc`s
/// (per relation, per block fact list) never change after publication
/// either — path copies happen on the writer's private clone — so borrowing
/// through a published index is data-race-free by construction.
///
/// Per-relation indexes are `Arc`-shared: cloning a `DbIndex` is one pointer
/// bump per relation, and `apply_delta` path-copies only the relations (and,
/// inside them, the blocks) the delta touches — see the module docs.
#[derive(Clone, Debug, Default)]
pub struct DbIndex {
    relations: HashMap<String, Arc<RelationIndex>>,
    /// Returned for names outside the schema, so lookups are total.
    empty: RelationIndex,
}

// The sharing contract the serving layer relies on.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbIndex>();
};

impl DbIndex {
    /// Builds the index for a database instance.
    pub fn new(db: &DatabaseInstance) -> DbIndex {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut relations: HashMap<String, Arc<RelationIndex>> = HashMap::new();
        for (name, sig) in db.schema().relations() {
            let key_len = sig.key_len();
            let mut rel = RelationIndex {
                blocks: Vec::new(),
                key_len,
                arity: sig.arity(),
                deep_pos: vec![HashMap::new(); key_len.saturating_sub(1)],
            };
            let mut pending: Option<(Vec<Value>, Vec<Fact>)> = None;
            // Facts arrive in sorted order, so each block's facts form one
            // contiguous run: accumulate the run, then freeze it into an
            // `Arc` when the key changes.
            let flush = |rel: &mut RelationIndex, pending: Option<(Vec<Value>, Vec<Fact>)>| {
                let Some((key, facts)) = pending else { return };
                let i = rel.blocks.len();
                for (p, v) in key.iter().enumerate().skip(1) {
                    rel.deep_pos[p - 1].entry(v.clone()).or_default().push(i);
                }
                rel.blocks.push(IndexedBlock {
                    key,
                    facts: Arc::new(facts),
                });
            };
            for fact in db.facts_of(name) {
                let key = &fact.args()[..key_len];
                match &mut pending {
                    Some((k, facts)) if k.as_slice() == key => facts.push(fact.clone()),
                    _ => {
                        flush(&mut rel, pending.take());
                        pending = Some((key.to_vec(), vec![fact.clone()]));
                    }
                }
            }
            flush(&mut rel, pending.take());
            relations.insert(name.to_string(), Arc::new(rel));
        }
        DbIndex {
            relations,
            empty: RelationIndex::default(),
        }
    }

    /// Applies a sequence of change events in place, without rebuilding (and
    /// without advancing [`DbIndex::build_count`] — incremental maintenance
    /// is precisely *not* a build). After the call the index is byte-identical
    /// to a cold [`DbIndex::new`] over the mutated instance: facts sit at
    /// their sorted positions inside blocks, blocks at their sorted positions
    /// inside relations, and the key/posting lookups match.
    ///
    /// Maintenance **path-copies**: events are grouped per relation, each
    /// touched relation is materialised once (`Arc::make_mut` — untouched
    /// relations keep sharing storage with every other clone of this index),
    /// and inside it only the dirty blocks' fact lists are deep-copied. Deep
    /// posting lists (key positions past the first; single-column-key
    /// relations have none) are maintained surgically while a batch's
    /// structural changes are few, and rebuilt in one `O(blocks)` pass once
    /// they are not — never per event — so a bulk batch costs
    /// `O(|dirty relation| + |delta| log |blocks|)` rather than
    /// `O(|events| × |blocks|)`.
    ///
    /// Returns the deduplicated, sorted list of blocks whose contents changed
    /// — the dirty set callers use to decide which cached per-group answers
    /// must be recomputed. Events that change nothing (re-inserting a present
    /// fact, deleting an absent one) and events for relations outside the
    /// indexed schema mark nothing dirty.
    pub fn apply_delta(&mut self, events: &[DeltaEvent]) -> Vec<DirtyBlock> {
        /// Structural changes per batch and relation past which per-event
        /// posting-list surgery (each `O(postings)`) loses to one deferred
        /// `O(blocks)` rebuild.
        const SURGERY_CAP: usize = 16;
        // Group events per relation, preserving their order within each
        // relation (order across relations is immaterial — relations are
        // independent).
        let mut by_relation: BTreeMap<&str, Vec<&DeltaEvent>> = BTreeMap::new();
        for event in events {
            by_relation
                .entry(event.fact.relation())
                .or_default()
                .push(event);
        }
        let mut dirty: BTreeSet<DirtyBlock> = BTreeSet::new();
        for (name, rel_events) in by_relation {
            let Some(shared) = self.relations.get_mut(name) else {
                continue;
            };
            // The one per-relation path copy: blocks clone shallowly (their
            // fact lists are `Arc`-shared) plus the deep posting lists.
            let rel = Arc::make_mut(shared);
            let has_deep = rel.key_len > 1;
            let mut structural_changes = 0usize;
            let mut deferred = false;
            for event in rel_events {
                if event.fact.arity() != rel.arity {
                    // Cannot correspond to any stored fact; instances validate
                    // arities on insert, so only malformed events land here.
                    // (An exact check, not `< key_len`: a fact that covers the
                    // key but not the full arity must not be indexed either.)
                    continue;
                }
                let (changed, structural) = match event.op {
                    DeltaOp::Insert => rel.insert_fact(event.fact.clone()),
                    DeltaOp::Delete => rel.remove_fact(&event.fact),
                };
                if has_deep && !matches!(structural, Structural::No) {
                    structural_changes += 1;
                    deferred = deferred || structural_changes > SURGERY_CAP;
                    if !deferred {
                        match structural {
                            Structural::Inserted(pos) => rel.deep_insert_block(pos),
                            Structural::Removed(pos) => {
                                // The emptied block's key is the event fact's
                                // key prefix.
                                let key = &event.fact.args()[..rel.key_len];
                                rel.deep_remove_block(pos, key);
                            }
                            Structural::No => unreachable!("guarded above"),
                        }
                    }
                }
                if changed {
                    dirty.insert(DirtyBlock {
                        relation: name.to_string(),
                        key: event.fact.args()[..rel.key_len].to_vec(),
                    });
                }
            }
            if deferred {
                rel.rebuild_deep_pos();
            }
        }
        dirty.into_iter().collect()
    }

    /// The index of a relation. Every relation of the schema is present (even
    /// if it holds no facts); names outside the schema resolve to a shared
    /// empty index, so the lookup is infallible.
    pub fn relation(&self, name: &str) -> &RelationIndex {
        self.relations
            .get(name)
            .map(Arc::as_ref)
            .unwrap_or(&self.empty)
    }

    /// Returns `true` if the named relation's index is physically shared
    /// (same allocation) between `self` and `other` — i.e. no delta has
    /// path-copied it since the two diverged. Both lacking the relation
    /// counts as shared. For tests and observability of the
    /// structural-sharing contract.
    pub fn shares_relation_storage(&self, other: &DbIndex, name: &str) -> bool {
        match (self.relations.get(name), other.relations.get(name)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Panics unless `self` is **structurally identical** to `other`: same
    /// relations, same block order, same fact order inside every block, and
    /// byte-identical deep posting lists — not merely answer-equivalent.
    /// This is the invariant [`DbIndex::apply_delta`] maintains against a
    /// cold rebuild of the mutated instance; tests (unit, integration, and
    /// property-based) call this helper to verify it.
    pub fn assert_structurally_identical(&self, other: &DbIndex) {
        let mut names: Vec<&String> = self.relations.keys().collect();
        names.sort();
        let mut other_names: Vec<&String> = other.relations.keys().collect();
        other_names.sort();
        assert_eq!(names, other_names, "relation sets differ");
        for name in names {
            let a = &self.relations[name];
            let b = &other.relations[name];
            assert_eq!(a.key_len, b.key_len, "{name}: key_len");
            assert_eq!(a.arity, b.arity, "{name}: arity");
            assert_eq!(a.blocks.len(), b.blocks.len(), "{name}: block count");
            for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
                assert_eq!(x.key, y.key, "{name}: block order");
                assert_eq!(x.facts, y.facts, "{name}: facts of block {:?}", x.key);
            }
            assert_eq!(a.deep_pos, b.deep_pos, "{name}: deep posting lists");
        }
    }

    /// Returns `true` if `name` is a relation of the indexed schema.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Number of [`DbIndex`] values constructed by this process since it
    /// started, across **all** threads.
    ///
    /// The engine guarantees exactly one construction per `glb`/`lub`/`range`
    /// call (on rewriting-backed paths) — the parallel executor's workers
    /// share the caller's index and build none of their own — and tests
    /// assert this by differencing the counter around a call. The counter is
    /// process-wide (an `AtomicU64`) rather than thread-local so a build on
    /// the calling thread plus zero builds on worker threads remains an
    /// observable "exactly one". Tests that difference it must serialise
    /// against other index-building tests in the same process (see
    /// `tests/build_invariant.rs`).
    pub fn build_count() -> u64 {
        BUILD_COUNT.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{fact, Schema, Signature};

    fn db() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
            .with_relation("Empty", Signature::new(1, 1, []).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("S", "b1", "c1", 1),
            fact!("S", "b1", "c1", 2),
            fact!("S", "b1", "c2", 3),
            fact!("S", "b2", "c3", 5),
        ])
        .unwrap();
        db
    }

    #[test]
    fn blocks_and_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S");
        assert_eq!(s.blocks.len(), 3);
        assert_eq!(s.fact_count(), 4);
        let b = s
            .block_by_key(&[Value::text("b1"), Value::text("c1")])
            .unwrap();
        assert_eq!(b.facts.len(), 2);
        assert!(s
            .block_by_key(&[Value::text("zz"), Value::text("c1")])
            .is_none());
        // Empty relation exists in the index.
        assert_eq!(idx.relation("Empty").blocks.len(), 0);
        // Unknown relations resolve to an empty index instead of a panic or
        // an Option (doc contract: lookups are total).
        assert!(!idx.has_relation("Missing"));
        assert_eq!(idx.relation("Missing").blocks.len(), 0);
        assert_eq!(
            idx.relation("Missing")
                .blocks_matching(&[Some(Value::text("b1"))])
                .count(),
            0
        );
    }

    #[test]
    fn partial_key_lookup() {
        let db = db();
        let idx = DbIndex::new(&db);
        let s = idx.relation("S");
        // All blocks with first key component b1.
        let matched: Vec<_> = s
            .blocks_matching(&[Some(Value::text("b1")), None])
            .collect();
        assert_eq!(matched.len(), 2);
        // Unconstrained pattern returns every block.
        assert_eq!(s.blocks_matching(&[None, None]).count(), 3);
        // Second component only.
        let matched: Vec<_> = s
            .blocks_matching(&[None, Some(Value::text("c3"))])
            .collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].key[0], Value::text("b2"));
        // Value absent from the index.
        assert_eq!(
            s.blocks_matching(&[Some(Value::text("zzz")), None]).count(),
            0
        );
        // Fully bound pattern.
        assert_eq!(
            s.blocks_matching(&[Some(Value::text("b1")), Some(Value::text("c2"))])
                .count(),
            1
        );
    }

    // The build-counter tests live in `tests/build_invariant.rs`: the counter
    // is process-wide, so differencing it is only deterministic in a test
    // binary whose other tests build no indexes concurrently.

    /// Full structural equality with a cold rebuild: block order, fact order
    /// inside blocks, key lookup, and posting lists must all match, not just
    /// the answers they produce. (Thin wrapper over the public helper so the
    /// call sites below keep their argument order.)
    fn assert_identical(incremental: &DbIndex, cold: &DbIndex) {
        incremental.assert_structurally_identical(cold);
    }

    #[test]
    fn apply_delta_matches_cold_rebuild() {
        let mut db = db();
        let mut idx = DbIndex::new(&db);
        let steps = [
            // Grow an existing block (sorts before the present facts).
            DeltaEvent::insert(fact!("S", "b1", "c1", 0)),
            // New block between existing ones.
            DeltaEvent::insert(fact!("S", "b1", "c15", 7)),
            // New block at the front and at the back.
            DeltaEvent::insert(fact!("S", "a0", "c0", 9)),
            DeltaEvent::insert(fact!("S", "z9", "c9", 9)),
            // First fact of the empty relation.
            DeltaEvent::insert(fact!("Empty", "e1")),
            // Shrink a block without emptying it.
            DeltaEvent::delete(fact!("S", "b1", "c1", 1)),
            // Empty a block entirely.
            DeltaEvent::delete(fact!("S", "b2", "c3", 5)),
            // No-ops: deleting an absent fact, re-inserting a present one.
            DeltaEvent::delete(fact!("S", "nope", "c1", 1)),
            DeltaEvent::insert(fact!("S", "b1", "c2", 3)),
        ];
        for event in steps {
            let dirty = idx.apply_delta(std::slice::from_ref(&event));
            let effective = db.apply(event.clone()).unwrap().is_some();
            assert_eq!(
                !dirty.is_empty(),
                effective,
                "dirty iff the instance changed: {event}"
            );
            assert_identical(&idx, &DbIndex::new(&db));
        }
        // A batch reports each dirty block once, sorted.
        let batch = [
            DeltaEvent::insert(fact!("S", "m1", "c1", 1)),
            DeltaEvent::insert(fact!("S", "m1", "c1", 2)),
            DeltaEvent::insert(fact!("S", "b1", "c2", 30)),
        ];
        let dirty = idx.apply_delta(&batch);
        for e in &batch {
            db.apply(e.clone()).unwrap();
        }
        assert_eq!(
            dirty,
            vec![
                DirtyBlock {
                    relation: "S".to_string(),
                    key: vec![Value::text("b1"), Value::text("c2")],
                },
                DirtyBlock {
                    relation: "S".to_string(),
                    key: vec![Value::text("m1"), Value::text("c1")],
                },
            ]
        );
        assert_identical(&idx, &DbIndex::new(&db));
    }

    #[test]
    fn apply_delta_path_copies_only_touched_relations() {
        let db = db();
        let base = DbIndex::new(&db);
        // A clone shares every relation's storage with its source.
        let mut derived = base.clone();
        assert!(base.shares_relation_storage(&derived, "S"));
        assert!(base.shares_relation_storage(&derived, "Empty"));
        // A delta to S materialises S and leaves Empty shared.
        let dirty = derived.apply_delta(&[DeltaEvent::insert(fact!("S", "b1", "c1", 99))]);
        assert_eq!(dirty.len(), 1);
        assert!(!base.shares_relation_storage(&derived, "S"));
        assert!(base.shares_relation_storage(&derived, "Empty"));
        // Inside the touched relation, untouched blocks still share their
        // fact lists; only the dirty block was deep-copied.
        let (s_base, s_derived) = (base.relation("S"), derived.relation("S"));
        for (x, y) in s_base.blocks.iter().zip(s_derived.blocks.iter()) {
            let shared = Arc::ptr_eq(&x.facts, &y.facts);
            let is_dirty = x.key == vec![Value::text("b1"), Value::text("c1")];
            assert_eq!(shared, !is_dirty, "block {:?}", x.key);
        }
        // Ineffective deltas (re-inserting a present fact, deleting an
        // absent one) still count as a touch of the relation (the copy
        // happens before the lookup), but mark nothing dirty and deep-copy
        // no block's fact list.
        let mut noop = base.clone();
        let dirty = noop.apply_delta(&[
            DeltaEvent::insert(fact!("S", "b1", "c1", 1)),
            DeltaEvent::delete(fact!("S", "zz", "zz", 1)),
        ]);
        assert!(dirty.is_empty());
        for (x, y) in base
            .relation("S")
            .blocks
            .iter()
            .zip(noop.relation("S").blocks.iter())
        {
            assert!(Arc::ptr_eq(&x.facts, &y.facts), "block {:?}", x.key);
        }
        // The base index is unchanged throughout.
        base.assert_structurally_identical(&DbIndex::new(&db));
    }

    #[test]
    fn bulk_batches_match_cold_rebuilds() {
        // A batch comparable in size to the instance — the shape that used to
        // trigger the serving layer's drop-the-index fallback — must still
        // leave the index byte-identical to a cold rebuild.
        let mut db = db();
        let mut idx = DbIndex::new(&db);
        let mut batch = Vec::new();
        for i in 0..200 {
            batch.push(DeltaEvent::insert(fact!(
                "S",
                format!("bulk{i:03}"),
                "c",
                i
            )));
            if i % 3 == 0 {
                batch.push(DeltaEvent::insert(fact!(
                    "S",
                    format!("bulk{i:03}"),
                    "c",
                    i + 1000
                )));
            }
        }
        // Interleave deletions of pre-existing facts, including one that
        // empties a block.
        batch.push(DeltaEvent::delete(fact!("S", "b2", "c3", 5)));
        batch.push(DeltaEvent::delete(fact!("S", "b1", "c1", 1)));
        let dirty = idx.apply_delta(&batch);
        for e in &batch {
            db.apply(e.clone()).unwrap();
        }
        assert_eq!(dirty.len(), 202);
        idx.assert_structurally_identical(&DbIndex::new(&db));
    }

    #[test]
    fn apply_delta_ignores_unknown_relations() {
        let db = db();
        let mut idx = DbIndex::new(&db);
        let dirty = idx.apply_delta(&[
            DeltaEvent::insert(fact!("Missing", "x", "y")),
            // Arity shorter than the key cannot match any stored fact.
            DeltaEvent::delete(fact!("S", "b1")),
            // Neither can a fact that covers the key but not the full arity:
            // indexing it would diverge from a cold rebuild (the instance
            // rejects it) and corrupt downstream numeric-position reads.
            DeltaEvent::insert(fact!("S", "b1", "c1")),
            DeltaEvent::insert(fact!("S", "b1", "c1", 8, 9)),
        ]);
        assert!(dirty.is_empty());
        assert_identical(&idx, &DbIndex::new(&db));
    }
}
