//! # rcqa-session
//!
//! The SQL serving layer of the workspace: a **stateful, thread-safe** session
//! that owns a named-column [`Catalog`], [`EngineOptions`], and — unlike a
//! one-shot evaluation — the derived state a server needs to answer the same
//! queries over a slowly-changing instance without rebuilding the world per
//! call:
//!
//! * an **immutable snapshot chain**: the session's data lives in a
//!   [`Snapshot`] — `Arc<DatabaseInstance>` + lazily built `Arc<DbIndex>` +
//!   a monotonically increasing epoch. [`Session::execute`] clones the
//!   current snapshot `Arc` out of a short critical section and evaluates
//!   against it with **no session-wide lock held**, so concurrent readers
//!   feed the parallel plan executor simultaneously; writers
//!   ([`Session::insert`], [`Session::insert_all`], [`Session::delete`])
//!   build the *successor* snapshot out of the base's **shared structure**:
//!   instance relations and per-relation indexes are `Arc`-shared, so the
//!   successor pointer-bumps everything the batch does not touch and
//!   path-copies only the dirty relations (and, inside the index, only the
//!   dirty blocks) via `DbIndex::apply_delta` — a write batch costs
//!   `O(|dirty relations| + |delta|)`, not `O(|db|)` — then atomically
//!   swaps it in. In-flight readers keep their pinned snapshot: reads are
//!   **snapshot-isolated**, never torn;
//! * a **prepared-statement cache**: [`Session::prepare`] parses,
//!   classifies, and plans a SQL string once; `execute`/`explain` look
//!   statements up by *normalized* SQL (whitespace collapsed and text
//!   case-folded outside string literals, one trailing `;` stripped), so
//!   textual re-submissions of the same query never re-parse, never re-run
//!   attack-graph classification, and never re-plan;
//! * a **per-statement result cache with support-tracked differential
//!   maintenance**: answers are cached against the epoch they were computed
//!   at, together with the statement's [`RowSupport`] — a per-row
//!   over-approximation of the (relation, block-key) pairs the row's
//!   embeddings and certainty checks can touch. A reader whose pinned epoch
//!   is ahead of the cached result intersects the dirty blocks committed in
//!   between with the cached rows' supports, adds the candidate keys the
//!   dirty blocks can newly derive ([`RangeCqa::dirty_candidate_keys`]), and
//!   re-derives **only** that affected key set — DRed-style: affected groups
//!   are over-deleted and re-derived, so retracted groups vanish and new
//!   groups appear — keeping every other cached row. HAVING trichotomy and
//!   certain top-k are then re-decided from the patched row set; top-k falls
//!   back to a full selection recompute only when pairwise interval
//!   precedence shifted, i.e. membership could change (counted in
//!   [`SessionStats::topk_fallbacks`]);
//! * a **batch API**: [`Session::execute_many`] answers a whole batch
//!   against one pinned snapshot, so the batch is mutually consistent even
//!   with concurrent writers.
//!
//! ## Concurrency contract
//!
//! `Session` is `Send + Sync`: share one session behind an `Arc` (or plain
//! references inside [`std::thread::scope`]) across any number of client
//! threads. Readers never block each other on the serving path — the only
//! shared critical sections are the snapshot-pointer clone, the
//! statement-cache lookup (an `RwLock` read), and counter updates. Writers
//! serialise among themselves and build the successor snapshot *outside* the
//! readers' critical section; publishing it is one pointer swap.
//!
//! ## Identical-answers guarantee
//!
//! Caching is transparent: every successful `execute` returns rows
//! byte-identical to what a cold session over the reader's **pinned**
//! snapshot (catalog, instance, options) would return, at every executor
//! thread count and under any interleaving with writers. The incrementally
//! maintained index is structurally identical to a cold rebuild
//! (`DbIndex::apply_delta` keeps facts and blocks at their cold-scan sorted
//! positions), and differential patching is sound because a group row's
//! interval is a function of the blocks matching its instantiated support
//! patterns: a commit whose dirty blocks miss a row's support cannot change
//! that row, and a commit that could *birth* a row must route at least one
//! new embedding through a dirty block, which the dirty-pinned reverse
//! lookup enumerates. Plans that consult state beyond pattern-matched blocks
//! — exhaustive repair enumeration (including residual comparison
//! predicates, whose repair budget is instance-global) — carry an
//! *exhaustive* support and honestly recompute in full on any write
//! ([`SessionStats::support_misses`]). `tests/serving_cache.rs`,
//! `tests/session_sql.rs`, and `tests/session_concurrent.rs` assert the
//! guarantee, including concurrent readers racing a writer and random
//! insert/delete interleavings checked against cold and crash-recovered
//! sessions after every commit.
//!
//! Every consumer — the experiment harness, the examples, and the
//! integration tests — goes through this one path, so the SQL parser, the
//! logical/physical planner, and the (parallel) plan executor are exercised
//! together end to end:
//!
//! ```text
//! SQL string
//!   └─ normalize → statement cache        rcqa-session
//!      └─ parse_sql (catalog-driven)      rcqa-query      (cold only)
//!         └─ classify_with_domain         rcqa-core::classify
//!         └─ LogicalPlan → PhysicalPlan   rcqa-core::plan
//!            └─ execute (worker pool)     rcqa-core::plan::exec
//!               └─ Vec<GroupRange>        range-consistent answers
//! ```
//!
//! ## Quick example
//!
//! ```
//! use rcqa_data::fact;
//! use rcqa_query::{Catalog, TableDef};
//! use rcqa_session::Session;
//!
//! let catalog = Catalog::new()
//!     .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
//!     .with_table(
//!         TableDef::new("Stock")
//!             .key_column("Product")
//!             .key_column("Town")
//!             .numeric_column("Qty"),
//!     );
//! let session = Session::new(catalog);
//! session
//!     .insert_all([
//!         fact!("Dealers", "Smith", "Boston"),
//!         fact!("Dealers", "Smith", "New York"),
//!         fact!("Stock", "Tesla X", "Boston", 35),
//!         fact!("Stock", "Tesla Y", "New York", 95),
//!     ])
//!     .unwrap();
//! let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
//!            WHERE D.Town = S.Town AND D.Name = 'Smith'";
//! let outcome = session.execute(sql).unwrap();
//! assert_eq!(outcome.rows.len(), 1);
//! assert!(outcome.classification.attack_graph_acyclic);
//! // The repeat is served from the statement + result caches.
//! let again = session.execute(sql).unwrap();
//! assert_eq!(again.rows, outcome.rows);
//! assert_eq!(session.stats().result_hits, 1);
//! ```

#![warn(missing_docs)]

use rcqa_core::classify::Classification;
use rcqa_core::engine::{BoundAnswer, EngineOptions, GroupRange, Method, RangeCqa};
use rcqa_core::index::{DbIndex, DirtyBlock};
pub use rcqa_core::interval::HavingStatus;
use rcqa_core::interval::{
    certain_topk, having_status, having_status_all, order_rows, topk_selection_preserved,
};
use rcqa_core::{CoreError, RowSupport};
use rcqa_data::{DataError, DatabaseInstance, DeltaEvent, Fact, Rational, Value};
use rcqa_query::{parse_sql, AggQuery, Catalog, HavingCond, OrderSpec, QueryError};
use rcqa_wal::{FsStorage, Wal, WalError, WalStorage};
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

pub use rcqa_wal::{SyncPolicy, WalOptions};

mod sharded;
pub use sharded::{ShardedSession, ShardedStats};

/// Errors raised by a [`Session`].
#[derive(Debug, Clone)]
pub enum SessionError {
    /// SQL parsing / translation failed.
    Query(QueryError),
    /// The engine rejected or failed to evaluate the query.
    Core(CoreError),
    /// A fact violated the catalog's schema.
    Data(DataError),
    /// An I/O operation on the durability layer failed. The commit that hit
    /// it was **not** published — the session keeps serving the last
    /// successfully committed snapshot. The underlying [`std::io::Error`] is
    /// chained through [`std::error::Error::source`].
    Io(Arc<std::io::Error>),
    /// The write-ahead log or a checkpoint is corrupt (recovery refused to
    /// guess at history it cannot verify).
    Wal(WalError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Query(e) => write!(f, "SQL error: {e}"),
            SessionError::Core(e) => write!(f, "engine error: {e}"),
            SessionError::Data(e) => write!(f, "data error: {e}"),
            SessionError::Io(e) => write!(f, "durability I/O error: {e}"),
            SessionError::Wal(e) => write!(f, "durability error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Query(_) | SessionError::Core(_) | SessionError::Data(_) => None,
            SessionError::Io(e) => Some(&**e),
            SessionError::Wal(e) => Some(e),
        }
    }
}

impl From<QueryError> for SessionError {
    fn from(e: QueryError) -> SessionError {
        SessionError::Query(e)
    }
}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> SessionError {
        SessionError::Core(e)
    }
}

impl From<DataError> for SessionError {
    fn from(e: DataError) -> SessionError {
        SessionError::Data(e)
    }
}

impl From<WalError> for SessionError {
    fn from(e: WalError) -> SessionError {
        match e {
            // Plain I/O failures (disk full, permissions, injected faults)
            // surface as `Io` so callers can treat them like any other I/O
            // error; only genuine log damage becomes `Wal`.
            WalError::Io(e) => SessionError::Io(e),
            corrupt => SessionError::Wal(corrupt),
        }
    }
}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> SessionError {
        SessionError::Io(Arc::new(e))
    }
}

/// One immutable version of the session's data: the instance, the (lazily
/// built) block index over it, and the epoch — the number of effective
/// mutations between the session's opening and this version.
///
/// Snapshots are shared behind `Arc`s: readers pin one and evaluate against
/// it lock-free; writers derive the successor and swap the session's current
/// pointer. A snapshot is never mutated after publication — the index cell is
/// a [`OnceLock`] so the first reader to need it builds it exactly once and
/// every later reader of the same snapshot shares the result.
#[derive(Debug)]
pub struct Snapshot {
    db: Arc<DatabaseInstance>,
    index: OnceLock<Arc<DbIndex>>,
    epoch: u64,
}

impl Snapshot {
    /// The snapshot's database instance.
    pub fn db(&self) -> &Arc<DatabaseInstance> {
        &self.db
    }

    /// The snapshot's epoch: effective mutations since the session opened.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot's block index, if some reader (or the writer that
    /// published it) has materialised it already.
    pub fn index(&self) -> Option<&Arc<DbIndex>> {
        self.index.get()
    }
}

/// The result of executing one SQL query in a session.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The translated AGGR\[sjfBCQ\] query (shared with the prepared
    /// statement — handing out an outcome on the warm path must not re-clone
    /// the translated AST).
    pub query: Arc<AggQuery>,
    /// The rewriting/complexity classification of the query over the
    /// session instance's numeric domain (shared with the prepared
    /// statement).
    pub classification: Arc<Classification>,
    /// Output column names: one per GROUP BY column, then the aggregate.
    pub columns: Vec<String>,
    /// One `[glb, lub]` interval per output row for the **first**
    /// SELECT-clause aggregate, after HAVING filtering and ORDER BY / LIMIT
    /// selection (sorted group-key order when neither is present). Shared
    /// with the session's result cache (an `Arc` slice), so serving a cached
    /// answer — and re-serving it to every later hit — never re-clones the
    /// rows.
    pub rows: Arc<[GroupRange]>,
    /// Row-aligned intervals of the second and later SELECT-clause
    /// aggregates (empty for single-aggregate statements). The group key of
    /// `more_aggregates[a][i]` equals `rows[i].key`.
    pub more_aggregates: Vec<Arc<[GroupRange]>>,
    /// Row-aligned HAVING trichotomy: for each output row, whether the
    /// HAVING conjunction holds in every repair (`Certain`), in some
    /// (`Possible`), or — never present here, such rows are dropped — in
    /// none (`Violated`). Empty when the statement has no HAVING clause.
    pub having: Arc<[HavingStatus]>,
    /// The epoch of the snapshot this answer was computed against — the
    /// version of the data the rows are byte-identical to a cold evaluation
    /// of.
    pub epoch: u64,
    /// How many data partitions the answer was assembled from: always `1`
    /// for a plain [`Session`]; for a [`ShardedSession`] the number of
    /// shards the route consulted (1 for a designated-shard route, the shard
    /// count for a fan-out or cross-shard combine).
    pub shards: usize,
}

fn fmt_bound(v: Option<Rational>) -> String {
    match v {
        Some(r) => r.to_string(),
        None => "⊥".to_string(),
    }
}

impl QueryOutcome {
    /// Renders the answer as a plain-text table: group key columns, then a
    /// `glb`/`lub` pair per SELECT-clause aggregate (suffixed with the
    /// aggregate's column name when there is more than one), then — when the
    /// statement has a HAVING clause — its trichotomy status per row.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let agg_cols = 1 + self.more_aggregates.len();
        let key_cols = self.columns.len().saturating_sub(agg_cols);
        for c in &self.columns[..key_cols] {
            out.push_str(&format!("{c:<14} "));
        }
        for a in 0..agg_cols {
            if agg_cols == 1 {
                out.push_str(&format!("{:>12} {:>12}", "glb", "lub"));
            } else {
                let name = &self.columns[key_cols + a];
                out.push_str(&format!(
                    "{:>12} {:>12}",
                    format!("glb({name})"),
                    format!("lub({name})")
                ));
            }
            out.push(' ');
        }
        if !self.having.is_empty() {
            out.push_str(&format!("{:>10}", "having"));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        let bound = |b: &Option<BoundAnswer>| {
            b.as_ref()
                .map(|b| fmt_bound(b.value))
                .unwrap_or_else(|| "-".to_string())
        };
        for (i, row) in self.rows.iter().enumerate() {
            let mut line = String::new();
            for value in &row.key {
                line.push_str(&format!("{:<14} ", value.to_string()));
            }
            line.push_str(&format!("{:>12} {:>12} ", bound(&row.glb), bound(&row.lub)));
            for extra in &self.more_aggregates {
                let r = &extra[i];
                line.push_str(&format!("{:>12} {:>12} ", bound(&r.glb), bound(&r.lub)));
            }
            if let Some(status) = self.having.get(i) {
                line.push_str(&format!("{:>10}", status.to_string()));
            }
            while line.ends_with(' ') {
                line.pop();
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// A SQL statement prepared once and cached by the session: the parsed and
/// translated [`AggQuery`], its output column names, the fully prepared
/// [`RangeCqa`] engine (attack graph, level structure, interned variable
/// slots, logical→physical plan choice), the [`Classification`] for the
/// session instance's numeric domain, and the [`RowSupport`] that drives
/// differential result maintenance.
///
/// Statements are keyed by *normalized* SQL ([`Session::normalize_sql`]):
/// whitespace runs outside string literals collapse to one space, text
/// outside literals is case-folded, and a single trailing statement
/// terminator is dropped, so `select  x ;` and `SELECT X` share one cache
/// entry while literals like `'New  York'` stay distinct and case-sensitive.
/// Preparation is immutable after construction; per-statement *results* are
/// cached separately inside the session, versioned by the snapshot epoch.
#[derive(Debug)]
pub struct PreparedStatement {
    sql: String,
    query: Arc<AggQuery>,
    columns: Vec<String>,
    /// One fully prepared engine per aggregate of the statement (the first
    /// [`PreparedStatement::visible_aggregates`] are SELECT items, the rest
    /// are hidden HAVING / ORDER BY aggregates); they share one body and one
    /// predicate set, so their group keys align row for row.
    engines: Vec<RangeCqa>,
    visible_aggregates: usize,
    having: Vec<HavingCond>,
    order_by: Option<OrderSpec>,
    limit: Option<usize>,
    unsatisfiable: bool,
    classification: Arc<Classification>,
    support: RowSupport,
}

impl PreparedStatement {
    /// The normalized SQL text this statement is cached under.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The translated AGGR\[sjfBCQ\] query.
    pub fn query(&self) -> &AggQuery {
        &self.query
    }

    /// Output column names: one per GROUP BY column, then one per
    /// SELECT-clause aggregate.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The classification of the query over the session instance's numeric
    /// domain (computed once at preparation).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The statement's [`RowSupport`]: per cached row, an over-approximation
    /// of the (relation, block-key) pairs the row's embeddings and certainty
    /// checks can touch. Exhaustive — every dirty block forces a full
    /// recompute — exactly when some bound of some aggregate runs exhaustive
    /// repair enumeration, whose repair budget is instance-global.
    pub fn support(&self) -> &RowSupport {
        &self.support
    }

    /// The primary engine (first SELECT-clause aggregate).
    fn engine(&self) -> &RangeCqa {
        &self.engines[0]
    }
}

/// Serving-layer counters, for tests, benchmarks, and observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements parsed, classified, and planned (cache misses).
    pub statements_prepared: u64,
    /// Executions that found their statement already prepared.
    pub statement_hits: u64,
    /// Executions answered entirely from a current cached result.
    pub result_hits: u64,
    /// Executions that recomputed only dirty groups and kept the rest.
    pub partial_recomputes: u64,
    /// Executions that ran the full pipeline.
    pub full_recomputes: u64,
    /// Stale cached results served by the support-tracked patch path:
    /// the commit's dirty blocks were intersected with the cached rows'
    /// supports and only the affected groups were re-derived.
    pub supported_patches: u64,
    /// Stale cached results the support layer could **not** patch (exhaustive
    /// support, dirty history evicted past the retention cap, or an affected
    /// set so large a full pass is cheaper): these fell back to a full
    /// recompute.
    pub support_misses: u64,
    /// Patched results whose certain top-k selection had to be recomputed
    /// because some pairwise interval precedence shifted — top-k membership
    /// could change, so reusing the cached selection would be unsound. The
    /// rows themselves were still patched, not recomputed.
    pub topk_fallbacks: u64,
    /// Cold index constructions (should stay at 1 for a serving session).
    pub index_builds: u64,
    /// Delta events replayed into a successor snapshot's index.
    pub deltas_applied: u64,
    /// Write batches appended to the write-ahead log (0 when in-memory).
    pub wal_appends: u64,
    /// Checkpoints written successfully.
    pub checkpoints: u64,
    /// Checkpoint attempts that failed (the commit itself still succeeded —
    /// the batch was already on the log — so these only delay truncation).
    pub checkpoint_failures: u64,
    /// Commits that applied a coalesced multi-event batch through
    /// [`Session::apply_batch`] — one snapshot publish and at most one WAL
    /// append for the whole batch. The sharded front-end's group-commit
    /// coordinator drives this counter; `wal_appends / batched_commits`
    /// against `batched_events` shows the coalescing ratio.
    pub batched_commits: u64,
    /// Events carried by those coalesced batches.
    pub batched_events: u64,
    /// Prepared statements evicted from the bounded statement cache
    /// (LRU, capacity [`SessionOptions::statement_cache_cap`]). Eviction
    /// drops the statement's cached result too; answers stay correct via
    /// re-preparation and recompute.
    pub statements_evicted: u64,
}

impl SessionStats {
    /// Field-wise sum. The sharded front-end reports every shard's counters
    /// and their total through this.
    pub fn merge(self, other: SessionStats) -> SessionStats {
        SessionStats {
            statements_prepared: self.statements_prepared + other.statements_prepared,
            statement_hits: self.statement_hits + other.statement_hits,
            result_hits: self.result_hits + other.result_hits,
            partial_recomputes: self.partial_recomputes + other.partial_recomputes,
            full_recomputes: self.full_recomputes + other.full_recomputes,
            supported_patches: self.supported_patches + other.supported_patches,
            support_misses: self.support_misses + other.support_misses,
            topk_fallbacks: self.topk_fallbacks + other.topk_fallbacks,
            index_builds: self.index_builds + other.index_builds,
            deltas_applied: self.deltas_applied + other.deltas_applied,
            wal_appends: self.wal_appends + other.wal_appends,
            checkpoints: self.checkpoints + other.checkpoints,
            checkpoint_failures: self.checkpoint_failures + other.checkpoint_failures,
            batched_commits: self.batched_commits + other.batched_commits,
            batched_events: self.batched_events + other.batched_events,
            statements_evicted: self.statements_evicted + other.statements_evicted,
        }
    }
}

/// The complete row block of one statement's answer at one epoch: the
/// primary aggregate's rows, the later visible aggregates' row-aligned
/// intervals, and the row-aligned HAVING statuses.
#[derive(Clone, Debug)]
struct CachedRows {
    rows: Arc<[GroupRange]>,
    more: Vec<Arc<[GroupRange]>>,
    having: Arc<[HavingStatus]>,
}

/// One statement's cached answer at one epoch: the post-processed
/// presentation ([`CachedRows`]) **and** the raw per-aggregate group rows it
/// was derived from — the patch basis differential maintenance re-derives
/// affected rows against (the presentation alone is not patchable: HAVING
/// has dropped rows and top-k has reordered them).
#[derive(Clone, Debug)]
struct CachedResult {
    epoch: u64,
    /// Raw rows per aggregate engine (SELECT items first, then hidden
    /// HAVING / ORDER BY aggregates), each in sorted group-key order and
    /// key-aligned across aggregates.
    raw: Arc<Vec<Vec<GroupRange>>>,
    rows: CachedRows,
}

/// One cached statement plus its last computed result (if any), versioned by
/// the epoch the result was computed at.
#[derive(Debug)]
struct CachedStatement {
    stmt: Arc<PreparedStatement>,
    result: Option<CachedResult>,
    /// LRU stamp from the session's cache clock, touched on every lookup
    /// hit. An atomic so the warm read path can touch it under the
    /// statement map's shared **read** lock.
    last_used: AtomicU64,
}

impl Clone for CachedStatement {
    fn clone(&self) -> CachedStatement {
        CachedStatement {
            stmt: self.stmt.clone(),
            result: self.result.clone(),
            last_used: AtomicU64::new(self.last_used.load(Ordering::Relaxed)),
        }
    }
}

/// The lock-free interior of [`SessionStats`]: relaxed atomic counters, so
/// the warm serving path never takes an exclusive section to account for
/// itself.
#[derive(Debug, Default)]
struct AtomicStats {
    statements_prepared: AtomicU64,
    statement_hits: AtomicU64,
    result_hits: AtomicU64,
    partial_recomputes: AtomicU64,
    full_recomputes: AtomicU64,
    supported_patches: AtomicU64,
    support_misses: AtomicU64,
    topk_fallbacks: AtomicU64,
    index_builds: AtomicU64,
    deltas_applied: AtomicU64,
    wal_appends: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    batched_commits: AtomicU64,
    batched_events: AtomicU64,
    statements_evicted: AtomicU64,
}

impl AtomicStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SessionStats {
        SessionStats {
            statements_prepared: self.statements_prepared.load(Ordering::Relaxed),
            statement_hits: self.statement_hits.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            partial_recomputes: self.partial_recomputes.load(Ordering::Relaxed),
            full_recomputes: self.full_recomputes.load(Ordering::Relaxed),
            supported_patches: self.supported_patches.load(Ordering::Relaxed),
            support_misses: self.support_misses.load(Ordering::Relaxed),
            topk_fallbacks: self.topk_fallbacks.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            batched_commits: self.batched_commits.load(Ordering::Relaxed),
            batched_events: self.batched_events.load(Ordering::Relaxed),
            statements_evicted: self.statements_evicted.load(Ordering::Relaxed),
        }
    }
}

impl From<SessionStats> for AtomicStats {
    fn from(s: SessionStats) -> AtomicStats {
        AtomicStats {
            statements_prepared: AtomicU64::new(s.statements_prepared),
            statement_hits: AtomicU64::new(s.statement_hits),
            result_hits: AtomicU64::new(s.result_hits),
            partial_recomputes: AtomicU64::new(s.partial_recomputes),
            full_recomputes: AtomicU64::new(s.full_recomputes),
            supported_patches: AtomicU64::new(s.supported_patches),
            support_misses: AtomicU64::new(s.support_misses),
            topk_fallbacks: AtomicU64::new(s.topk_fallbacks),
            index_builds: AtomicU64::new(s.index_builds),
            deltas_applied: AtomicU64::new(s.deltas_applied),
            wal_appends: AtomicU64::new(s.wal_appends),
            checkpoints: AtomicU64::new(s.checkpoints),
            checkpoint_failures: AtomicU64::new(s.checkpoint_failures),
            batched_commits: AtomicU64::new(s.batched_commits),
            batched_events: AtomicU64::new(s.batched_events),
            statements_evicted: AtomicU64::new(s.statements_evicted),
        }
    }
}

/// The dirty-block history writers maintain for result patching: one entry
/// per committed write batch, `(epoch after the batch, blocks it changed)`,
/// oldest first. Results cached at an epoch `< log_floor` predate the
/// retained (gap-free) history and must recompute in full.
///
/// The log is a [`VecDeque`]: eviction past
/// [`SessionOptions::dirty_log_cap`] pops the oldest entry from the front in
/// `O(1)` (a `Vec::remove(0)` here used to shift the whole capacity on every
/// write of a long-lived session).
#[derive(Clone, Debug, Default)]
struct Maintenance {
    dirty_log: VecDeque<(u64, Vec<DirtyBlock>)>,
    log_floor: u64,
}

/// Serving-layer tunables, distinct from the evaluation-level
/// [`EngineOptions`]: these shape how the session maintains cached state,
/// never what an answer is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionOptions {
    /// Upper bound on retained dirty write batches (the patch history).
    /// Results cached before the oldest retained batch fall back to a full
    /// recompute — still correct, just not differential — which re-caches
    /// them at the reader's epoch. `0` disables patching entirely.
    pub dirty_log_cap: usize,
    /// Upper bound on cached prepared statements. The cache used to grow
    /// without bound (keyed by normalized SQL); at the cap the
    /// least-recently-used statement is evicted, together with its cached
    /// result — eviction never changes answers, only forces the evicted
    /// statement to re-prepare and recompute when it next runs. `0`
    /// disables statement (and therefore result) caching entirely.
    pub statement_cache_cap: usize,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            dirty_log_cap: 128,
            statement_cache_cap: 256,
        }
    }
}

/// A stateful, thread-safe SQL serving session: catalog + engine options +
/// an immutable snapshot chain (instance, block index, epoch), plus cached
/// derived state (prepared statements, versioned results).
///
/// `Session` is `Send + Sync`; see the [crate docs](self) for the
/// concurrency contract and the identical-answers guarantee.
pub struct Session {
    catalog: Catalog,
    options: EngineOptions,
    session_options: SessionOptions,
    /// The swap point: readers share the read lock to clone the `Arc` out
    /// of a short critical section; the writer takes the write lock only
    /// for the final pointer swap.
    current: RwLock<Arc<Snapshot>>,
    /// Serialises writers; never taken by the read path.
    writer: Mutex<()>,
    /// Prepared statements and their versioned results, keyed by normalized
    /// SQL. Readers share the read lock on the serving path.
    statements: RwLock<HashMap<String, CachedStatement>>,
    /// Dirty-block history for result patching.
    maintenance: Mutex<Maintenance>,
    /// Monotonic LRU clock for the bounded statement cache: bumped on every
    /// statement touch, stored into the touched entry's `last_used`.
    cache_clock: AtomicU64,
    /// The durability layer, when the session was opened over storage
    /// ([`Session::open`] and friends); `None` for in-memory sessions. Only
    /// ever locked while holding [`Session::writer`] (commits) or briefly
    /// from observability accessors — never on the read/serving path.
    wal: Mutex<Option<Wal>>,
    stats: AtomicStats,
}

impl Clone for Session {
    fn clone(&self) -> Session {
        // Hold the writer lock across the capture: no successor snapshot can
        // be published mid-clone, so the captured snapshot and statement
        // results stay mutually consistent — a result cached at an epoch the
        // *original* session reaches later must never ride into the clone,
        // whose same-numbered epoch can hold different data.
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        Session {
            catalog: self.catalog.clone(),
            options: self.options,
            session_options: self.session_options,
            // The snapshot itself is immutable and safely shared; the clone
            // diverges from here through its own writers.
            current: RwLock::new(self.snapshot()),
            writer: Mutex::new(()),
            statements: RwLock::new(self.read_statements().clone()),
            maintenance: Mutex::new(self.lock_maintenance().clone()),
            cache_clock: AtomicU64::new(self.cache_clock.load(Ordering::Relaxed)),
            // The clone is in-memory: two sessions diverging through one
            // write-ahead log would interleave incompatible histories, so
            // durability stays with the original.
            wal: Mutex::new(None),
            stats: AtomicStats::from(self.stats()),
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("Session")
            .field("facts", &snapshot.db.len())
            .field("options", &self.options)
            .field("epoch", &snapshot.epoch)
            .field("statements", &self.read_statements().len())
            .field("index_cached", &snapshot.index.get().is_some())
            .finish()
    }
}

impl Session {
    /// Opens a session over an empty instance of the catalog's schema.
    pub fn new(catalog: Catalog) -> Session {
        let db = DatabaseInstance::new(catalog.schema());
        Session::with_instance(catalog, db)
    }

    /// Opens a session over an existing instance (whose schema should be the
    /// catalog's lowering). Accepts an owned instance or an `Arc` — sharing
    /// an `Arc` with another session is cheap and safe, since snapshots are
    /// copy-on-write.
    pub fn with_instance(catalog: Catalog, db: impl Into<Arc<DatabaseInstance>>) -> Session {
        Session::assemble(catalog, db.into(), 0, None)
    }

    fn assemble(
        catalog: Catalog,
        db: Arc<DatabaseInstance>,
        epoch: u64,
        wal: Option<Wal>,
    ) -> Session {
        Session {
            catalog,
            options: EngineOptions::default(),
            session_options: SessionOptions::default(),
            current: RwLock::new(Arc::new(Snapshot {
                db,
                index: OnceLock::new(),
                epoch,
            })),
            writer: Mutex::new(()),
            statements: RwLock::new(HashMap::new()),
            maintenance: Mutex::new(Maintenance::default()),
            cache_clock: AtomicU64::new(0),
            wal: Mutex::new(wal),
            stats: AtomicStats::default(),
        }
    }

    /// Opens a **durable** session over the WAL directory `dir` with default
    /// [`WalOptions`] (fsync on every commit, checkpoint every 1024 epochs),
    /// recovering whatever state a previous process left there: the newest
    /// valid checkpoint plus a replay of the log tail through the same
    /// delta-application machinery live commits use.
    ///
    /// A crash mid-append leaves a torn tail, which recovery truncates; any
    /// *interior* damage (a bad record before the tail, a broken epoch
    /// chain) is refused as [`SessionError::Wal`] rather than guessed
    /// around. An empty or missing directory opens an empty session at
    /// epoch 0.
    pub fn open(catalog: Catalog, dir: impl AsRef<Path>) -> Result<Session, SessionError> {
        Session::open_with(catalog, dir, WalOptions::default())
    }

    /// [`Session::open`] with explicit [`WalOptions`] (fsync policy,
    /// checkpoint cadence, checkpoint retention).
    pub fn open_with(
        catalog: Catalog,
        dir: impl AsRef<Path>,
        options: WalOptions,
    ) -> Result<Session, SessionError> {
        let storage = FsStorage::open(dir.as_ref())?;
        Session::open_storage(catalog, Box::new(storage), options)
    }

    /// [`Session::open`] over any [`WalStorage`] implementation — the seam
    /// the crash-recovery tests use to run real recoveries against
    /// in-memory and deterministically failing storage.
    pub fn open_storage(
        catalog: Catalog,
        storage: Box<dyn WalStorage>,
        options: WalOptions,
    ) -> Result<Session, SessionError> {
        let (wal, recovery) = Wal::open(storage, options)?;
        let mut db = DatabaseInstance::new(catalog.schema());
        for fact in recovery.checkpoint_facts {
            if !db.insert(fact)? {
                return Err(SessionError::Wal(WalError::Corrupt {
                    file: rcqa_wal::checkpoint_name(recovery.checkpoint_epoch),
                    offset: 0,
                    detail: "checkpoint contains a duplicate fact".to_string(),
                }));
            }
        }
        // Every logged event was *effective* when committed (the session
        // only logs effective deltas), so each must be effective on replay
        // too; a no-op means the checkpoint and the log disagree.
        for batch in &recovery.batches {
            for event in &batch.events {
                if db.apply(event.clone())?.is_none() {
                    return Err(SessionError::Wal(WalError::Corrupt {
                        file: rcqa_wal::checkpoint_name(recovery.checkpoint_epoch),
                        offset: 0,
                        detail: format!(
                            "replaying the log over the checkpoint: the event at \
                             epoch {} is a no-op, so checkpoint and log disagree",
                            batch.epoch
                        ),
                    }));
                }
            }
        }
        Ok(Session::assemble(
            catalog,
            Arc::new(db),
            recovery.epoch,
            Some(wal),
        ))
    }

    /// Overrides the engine options (exact-fallback policy, repair budget,
    /// executor worker count).
    ///
    /// Cached statements embed the options they were prepared with, so the
    /// statement (and result) caches are cleared; the snapshot chain — and
    /// with it the cached index — is options-independent and survives.
    pub fn with_options(mut self, options: EngineOptions) -> Session {
        self.options = options;
        self.statements
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self
    }

    /// Overrides the serving-layer options. Unlike [`Session::with_options`]
    /// this never invalidates *current* prepared statements gratuitously —
    /// the tunables shape cache maintenance, not answers. A shrunken
    /// dirty-log cap takes effect immediately: over-budget history is
    /// evicted (flooring the patch horizon), so results older than the new
    /// cap full-recompute. A shrunken statement-cache cap likewise evicts
    /// the least-recently-used statements down to the new capacity.
    pub fn with_session_options(mut self, options: SessionOptions) -> Session {
        self.session_options = options;
        {
            let maintenance = self
                .maintenance
                .get_mut()
                .unwrap_or_else(|e| e.into_inner());
            while maintenance.dirty_log.len() > options.dirty_log_cap {
                let dropped = maintenance
                    .dirty_log
                    .pop_front()
                    .expect("len > cap implies non-empty");
                maintenance.log_floor = dropped.0;
            }
        }
        {
            let statements = self.statements.get_mut().unwrap_or_else(|e| e.into_inner());
            while statements.len() > options.statement_cache_cap {
                Self::evict_lru(statements, &self.stats);
            }
        }
        self
    }

    /// Evicts the least-recently-used statement (with its cached result)
    /// from the map. Callers guarantee the map is non-empty.
    fn evict_lru(statements: &mut HashMap<String, CachedStatement>, stats: &AtomicStats) {
        let coldest = statements
            .iter()
            .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
            .map(|(key, _)| key.clone())
            .expect("eviction requires a non-empty cache");
        statements.remove(&coldest);
        AtomicStats::bump(&stats.statements_evicted);
    }

    /// Bumps the LRU clock and stamps the entry as just-used.
    fn touch(&self, entry: &CachedStatement) {
        let stamp = self.cache_clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(stamp, Ordering::Relaxed);
    }

    /// The session's serving-layer options.
    pub fn session_options(&self) -> SessionOptions {
        self.session_options
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current database instance (the latest snapshot's). The returned
    /// `Arc` stays valid — and immutable — while writers move the session
    /// forward.
    pub fn database(&self) -> Arc<DatabaseInstance> {
        self.snapshot().db.clone()
    }

    /// The session's engine options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// The serving-layer counters.
    pub fn stats(&self) -> SessionStats {
        self.stats.snapshot()
    }

    /// The current epoch: effective mutations since the session opened.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Pins the current snapshot: one `Arc` clone inside a short critical
    /// section. Everything evaluated against the returned snapshot is
    /// isolated from concurrent writers.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    // Lock poisoning is not propagated anywhere in the session: every piece
    // of guarded state is either rebuildable from a snapshot (index, caches)
    // or monotonic bookkeeping (stats, dirty log), so a reader that panicked
    // mid-update cannot leave them semantically torn.
    fn read_statements(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, CachedStatement>> {
        self.statements.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_statements(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<String, CachedStatement>> {
        self.statements.write().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_maintenance(&self) -> MutexGuard<'_, Maintenance> {
        self.maintenance.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_wal(&self) -> MutexGuard<'_, Option<Wal>> {
        self.wal.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the session persists commits to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.lock_wal().is_some()
    }

    /// The last epoch known durable on storage (covered by an fsync or a
    /// checkpoint), or `None` for an in-memory session. Equals
    /// [`Session::epoch`] whenever the sync policy is
    /// [`SyncPolicy::Always`]; under `EveryN`/`Never` it may trail it.
    pub fn durable_epoch(&self) -> Option<u64> {
        self.lock_wal().as_ref().map(|w| w.durable_epoch())
    }

    /// Forces an fsync of the write-ahead log, making every committed batch
    /// durable regardless of the sync policy. A no-op on in-memory sessions.
    pub fn sync(&self) -> Result<(), SessionError> {
        match self.lock_wal().as_mut() {
            Some(wal) => Ok(wal.sync()?),
            None => Ok(()),
        }
    }

    /// Commits one write batch: derives the successor instance from the base
    /// snapshot's **shared structure** (untouched relations are pointer
    /// bumps; mutated relations are path-copied), replays the delta into a
    /// structurally-shared copy of the base index (when the base snapshot
    /// has one), records the dirty blocks for result patching, and atomically
    /// publishes the successor. The whole batch costs
    /// `O(|dirty relations| + |delta|)`, never `O(|db|)` — there is no batch
    /// size past which replay degrades, so every committed batch (bulk loads
    /// included) publishes with a warm index and a gap-free dirty log.
    ///
    /// Writers serialise on [`Session::writer`]; readers are never blocked
    /// for longer than the final pointer swap. If `mutate` fails, nothing is
    /// published — batches are all-or-nothing.
    ///
    /// For a durable session the batch is appended to the write-ahead log —
    /// and fsynced per the [`SyncPolicy`] — **before** the successor is
    /// published: no reader can ever observe state the log might not
    /// remember. If the append fails, the commit fails, nothing is
    /// published, and the session keeps serving (and accepting reads of)
    /// the last committed snapshot — durability failures degrade writes,
    /// never reads.
    fn commit<T>(
        &self,
        mutate: impl FnOnce(&mut DatabaseInstance) -> Result<(Vec<DeltaEvent>, T), SessionError>,
    ) -> Result<T, SessionError> {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.snapshot();
        // Cheap: per-relation Arc bumps. `mutate` copies only what it writes.
        let mut db = (*base.db).clone();
        let (events, out) = mutate(&mut db)?;
        if events.is_empty() {
            return Ok(out);
        }
        let epoch = base.epoch + events.len() as u64;
        {
            let mut wal = self.lock_wal();
            if let Some(wal) = wal.as_mut() {
                wal.append(epoch, &events)?;
                AtomicStats::bump(&self.stats.wal_appends);
            }
        }
        let snapshot = Snapshot {
            db: Arc::new(db),
            index: OnceLock::new(),
            epoch,
        };
        match base.index.get() {
            Some(base_index) => {
                // Cheap again: the clone shares every relation's index with
                // the base; `apply_delta` path-copies the dirty ones.
                let mut index = (**base_index).clone();
                let dirty = index.apply_delta(&events);
                snapshot
                    .index
                    .set(Arc::new(index))
                    .expect("freshly created cell is empty");
                self.stats
                    .deltas_applied
                    .fetch_add(events.len() as u64, Ordering::Relaxed);
                let mut maintenance = self.lock_maintenance();
                maintenance.dirty_log.push_back((epoch, dirty));
                while maintenance.dirty_log.len() > self.session_options.dirty_log_cap {
                    let dropped = maintenance
                        .dirty_log
                        .pop_front()
                        .expect("len > cap implies non-empty");
                    maintenance.log_floor = dropped.0;
                }
            }
            None => {
                // No base index to derive from (never built, or mid-build):
                // floor the log *before* publishing so no reader of the
                // successor can patch across the gap.
                let mut maintenance = self.lock_maintenance();
                maintenance.dirty_log.clear();
                maintenance.log_floor = epoch;
            }
        }
        let snapshot = Arc::new(snapshot);
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snapshot.clone();
        // Checkpoint *after* publishing: the batch is already durable on the
        // log, so a checkpoint failure cannot fail the commit — it only
        // postpones log truncation (and is retried at the next commit).
        let mut wal = self.lock_wal();
        if let Some(wal) = wal.as_mut() {
            if wal.checkpoint_due() {
                match wal.checkpoint(epoch, snapshot.db.facts()) {
                    Ok(()) => AtomicStats::bump(&self.stats.checkpoints),
                    Err(_) => AtomicStats::bump(&self.stats.checkpoint_failures),
                }
            }
        }
        Ok(out)
    }

    /// Applies a batch of change events as **one atomic commit** — one
    /// successor snapshot, one dirty-log entry, and (on a durable session)
    /// at most one WAL append for the whole batch. Returns one effectiveness
    /// flag per event, in order: `true` when the event changed the instance
    /// (the inserted fact was new / the deleted fact was present). No-op
    /// events cost nothing downstream — only effective events are logged
    /// and replayed into the index.
    ///
    /// This is the single write path of the session: [`Session::insert`],
    /// [`Session::insert_all`], and [`Session::delete`] are thin wrappers,
    /// and the sharded front-end's group-commit coordinator submits its
    /// coalesced batches here — single-node and sharded writers share one
    /// commit implementation. If any event's fact violates the schema the
    /// whole batch fails and nothing is published.
    pub fn apply_batch(&self, events: &[DeltaEvent]) -> Result<Vec<bool>, SessionError> {
        let flags = self.commit(|db| {
            let mut effective = Vec::new();
            let mut flags = Vec::with_capacity(events.len());
            for event in events {
                let applied = db.apply(event.clone())?;
                flags.push(applied.is_some());
                effective.extend(applied);
            }
            Ok((effective, flags))
        })?;
        if events.len() > 1 {
            AtomicStats::bump(&self.stats.batched_commits);
            self.stats
                .batched_events
                .fetch_add(events.len() as u64, Ordering::Relaxed);
        }
        Ok(flags)
    }

    /// Inserts one fact. Returns `true` if the fact was new.
    pub fn insert(&self, fact: Fact) -> Result<bool, SessionError> {
        let flags = self.apply_batch(&[DeltaEvent::insert(fact)])?;
        Ok(flags[0])
    }

    /// Inserts many facts as **one atomic batch**: either every fact is
    /// applied and a single successor snapshot is published, or — if any
    /// fact violates the schema — nothing changes.
    pub fn insert_all(&self, facts: impl IntoIterator<Item = Fact>) -> Result<(), SessionError> {
        let events: Vec<DeltaEvent> = facts.into_iter().map(DeltaEvent::insert).collect();
        self.apply_batch(&events).map(drop)
    }

    /// Deletes one fact. Returns `true` if it was present.
    ///
    /// A deletion cannot violate the schema, but on a durable session the
    /// commit can still fail at the durability layer — hence the `Result`
    /// (this used to `expect`, which would have turned a full disk into a
    /// panic).
    pub fn delete(&self, fact: &Fact) -> Result<bool, SessionError> {
        let flags = self.apply_batch(&[DeltaEvent::delete(fact.clone())])?;
        Ok(flags[0])
    }

    /// Normalizes SQL text into its statement-cache key: whitespace runs
    /// *outside* string literals collapse to a single space, text outside
    /// literals is case-folded to uppercase (the parser is case-insensitive
    /// there), surrounding whitespace is trimmed, and one trailing statement
    /// terminator (`;`) is dropped. Literal contents — including
    /// doubled-quote escapes — are preserved verbatim.
    ///
    /// Delegates to [`rcqa_query::normalize_sql`], which lives next to the
    /// tokenizer so the cache key and the parser share one definition of
    /// where string literals begin and end.
    pub fn normalize_sql(sql: &str) -> String {
        rcqa_query::normalize_sql(sql)
    }

    /// Parses, classifies, and plans a SQL statement, caching it by
    /// normalized SQL; subsequent [`Session::execute`] / [`Session::explain`]
    /// calls with the same (normalized) text reuse the preparation.
    pub fn prepare(&self, sql: &str) -> Result<Arc<PreparedStatement>, SessionError> {
        let snapshot = self.snapshot();
        self.prepare_at(&snapshot, sql)
    }

    fn prepare_at(
        &self,
        snapshot: &Snapshot,
        sql: &str,
    ) -> Result<Arc<PreparedStatement>, SessionError> {
        let key = Self::normalize_sql(sql);
        if let Some(entry) = self.read_statements().get(&key) {
            let stmt = entry.stmt.clone();
            self.touch(entry);
            AtomicStats::bump(&self.stats.statement_hits);
            return Ok(stmt);
        }
        // Parse, classify, and plan outside every lock: concurrent
        // preparations of the same statement are idempotent and the first
        // one to publish wins.
        let translated = parse_sql(&key, &self.catalog)?;
        let schema = self.catalog.schema();
        let mut engines = Vec::with_capacity(translated.aggregates.len());
        for agg in &translated.aggregates {
            engines.push(
                RangeCqa::new(agg, &schema)?
                    .with_predicates(translated.predicates.clone())?
                    .with_options(self.options),
            );
        }
        let domain = snapshot.db.numeric_domain();
        let classification = engines[0].classification(domain);
        // The statement's support is the merge over every aggregate engine's
        // plan (they share one body and one predicate set, so the patterns
        // coincide; the merge only widens to exhaustive when any bound of
        // any aggregate enumerates repairs). The numeric domain is fixed at
        // instance construction, so the support — like the plan — is static
        // for the statement's lifetime.
        let support = engines
            .iter()
            .skip(1)
            .fold(engines[0].row_support(domain), |acc, engine| {
                acc.merge(engine.row_support(domain))
            });
        let stmt = Arc::new(PreparedStatement {
            sql: key.clone(),
            query: Arc::new(translated.query),
            columns: translated.output_columns,
            engines,
            visible_aggregates: translated.visible_aggregates,
            having: translated.having,
            order_by: translated.order_by,
            limit: translated.limit,
            unsatisfiable: translated.unsatisfiable,
            classification: Arc::new(classification),
            support,
        });
        let cap = self.session_options.statement_cache_cap;
        if cap == 0 {
            // Caching disabled: the statement (and any result it computes)
            // lives only for this call.
            AtomicStats::bump(&self.stats.statements_prepared);
            return Ok(stmt);
        }
        let mut statements = self.write_statements();
        match statements.entry(key) {
            Entry::Occupied(entry) => {
                let racing = entry.get();
                let stmt = racing.stmt.clone();
                self.touch(racing);
                AtomicStats::bump(&self.stats.statement_hits);
                Ok(stmt)
            }
            Entry::Vacant(slot) => {
                let entry = CachedStatement {
                    stmt: stmt.clone(),
                    result: None,
                    last_used: AtomicU64::new(0),
                };
                self.touch(&entry);
                slot.insert(entry);
                while statements.len() > cap {
                    Self::evict_lru(&mut statements, &self.stats);
                }
                AtomicStats::bump(&self.stats.statements_prepared);
                Ok(stmt)
            }
        }
    }

    /// The snapshot's index, building it (exactly once per snapshot, across
    /// all racing readers) on first use. Writers pre-populate successor
    /// snapshots by delta replay, so a serving session cold-builds once.
    fn pinned_index(&self, snapshot: &Snapshot) -> Arc<DbIndex> {
        snapshot
            .index
            .get_or_init(|| {
                AtomicStats::bump(&self.stats.index_builds);
                Arc::new(DbIndex::new(&snapshot.db))
            })
            .clone()
    }

    /// The dirty blocks accumulated over `(from, to]`, or `None` if the
    /// retained history does not reach back to `from` (the log was floored
    /// by a cold rebuild or a bulk write in between).
    fn dirty_since(&self, from: u64, to: u64) -> Option<Vec<DirtyBlock>> {
        let maintenance = self.lock_maintenance();
        if from < maintenance.log_floor {
            return None;
        }
        Some(
            maintenance
                .dirty_log
                .iter()
                .filter(|(e, _)| *e > from && *e <= to)
                .flat_map(|(_, blocks)| blocks.iter().cloned())
                .collect(),
        )
    }

    /// Merges two row lists with disjoint, sorted group keys into one sorted
    /// list.
    fn merge_rows(kept: Vec<GroupRange>, fresh: Vec<GroupRange>) -> Vec<GroupRange> {
        let mut out = Vec::with_capacity(kept.len() + fresh.len());
        let mut kept = kept.into_iter().peekable();
        let mut fresh = fresh.into_iter().peekable();
        loop {
            match (kept.peek(), fresh.peek()) {
                (Some(a), Some(b)) => {
                    if a.key < b.key {
                        out.push(kept.next().expect("peeked"));
                    } else {
                        out.push(fresh.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.push(kept.next().expect("peeked")),
                (None, Some(_)) => out.push(fresh.next().expect("peeked")),
                (None, None) => break,
            }
        }
        out
    }

    fn outcome(stmt: &PreparedStatement, rows: CachedRows, epoch: u64) -> QueryOutcome {
        QueryOutcome {
            query: stmt.query.clone(),
            classification: stmt.classification.clone(),
            columns: stmt.columns.to_vec(),
            rows: rows.rows,
            more_aggregates: rows.more,
            having: rows.having,
            epoch,
            shards: 1,
        }
    }

    /// Evaluates every aggregate engine of one statement over one pinned
    /// snapshot, returning the raw per-aggregate group rows — key-aligned,
    /// in sorted group-key order, before HAVING / ORDER BY post-processing.
    /// These are what the result cache keeps as the patch basis.
    fn raw_rows(
        stmt: &PreparedStatement,
        db: &DatabaseInstance,
        index: &DbIndex,
    ) -> Result<Vec<Vec<GroupRange>>, SessionError> {
        // A statically contradictory WHERE clause needs no engine run: no
        // repair has a satisfying embedding, so a grouped statement has no
        // possible answer rows, while a closed statement answers its single
        // `[⊥, ⊥]` row. The synthetic rows still flow through the normal
        // HAVING / ORDER BY pipeline below (a comparison against `⊥` is
        // `Possible`; a `⊥` row is never certainly in a top-k).
        let per_agg: Vec<Vec<GroupRange>> = if stmt.unsatisfiable {
            let rows = if stmt.query.body.free_vars().is_empty() {
                let bottom = Some(BoundAnswer {
                    value: None,
                    method: Method::Rewriting,
                });
                vec![GroupRange {
                    key: Vec::new(),
                    glb: bottom,
                    lub: bottom,
                }]
            } else {
                Vec::new()
            };
            stmt.engines.iter().map(|_| rows.clone()).collect()
        } else {
            let mut per_agg = Vec::with_capacity(stmt.engines.len());
            for engine in &stmt.engines {
                per_agg.push(engine.range_with_index(db, index)?);
            }
            per_agg
        };
        let primary = &per_agg[0];
        debug_assert!(
            per_agg.iter().all(|rows| {
                rows.len() == primary.len()
                    && rows.iter().zip(primary.iter()).all(|(a, b)| a.key == b.key)
            }),
            "aggregates share body and predicates, so group keys must align"
        );
        Ok(per_agg)
    }

    /// HAVING trichotomy per raw row (empty when the statement has no HAVING
    /// clause).
    fn having_statuses(stmt: &PreparedStatement, per_agg: &[Vec<GroupRange>]) -> Vec<HavingStatus> {
        if stmt.having.is_empty() {
            return Vec::new();
        }
        (0..per_agg[0].len())
            .map(|i| {
                having_status_all(stmt.having.iter().map(|c| {
                    let row = &per_agg[c.agg_index][i];
                    having_status(
                        row.glb.and_then(|b| b.value),
                        row.lub.and_then(|b| b.value),
                        c.op,
                        c.threshold,
                    )
                }))
            })
            .collect()
    }

    /// Raw-row indices surviving HAVING. `Violated` rows are certainly
    /// absent in every repair and are dropped.
    fn kept_indices(statuses: &[HavingStatus], len: usize) -> Vec<usize> {
        (0..len)
            .filter(|&i| statuses.is_empty() || statuses[i] != HavingStatus::Violated)
            .collect()
    }

    /// Projects the selected raw-row indices into the presented row block:
    /// SELECT-clause aggregates, row-aligned HAVING statuses.
    fn present(
        stmt: &PreparedStatement,
        per_agg: &[Vec<GroupRange>],
        statuses: &[HavingStatus],
        selected: &[usize],
    ) -> CachedRows {
        let project = |agg: usize| -> Vec<GroupRange> {
            selected.iter().map(|&i| per_agg[agg][i].clone()).collect()
        };
        let rows = project(0);
        let more: Vec<Arc<[GroupRange]>> = (1..stmt.visible_aggregates)
            .map(|a| project(a).into())
            .collect();
        let having: Vec<HavingStatus> = if statuses.is_empty() {
            Vec::new()
        } else {
            selected.iter().map(|&i| statuses[i]).collect()
        };
        CachedRows {
            rows: rows.into(),
            more,
            having: having.into(),
        }
    }

    /// Full post-processing of one statement's raw rows: HAVING trichotomy
    /// (dropping `Violated` rows), then ORDER BY (presentation order) /
    /// LIMIT (certain top-k) over the sort-key aggregate's intervals of the
    /// surviving rows, then SELECT-clause projection. The parser guarantees
    /// LIMIT implies ORDER BY.
    fn post_process(stmt: &PreparedStatement, per_agg: &[Vec<GroupRange>]) -> CachedRows {
        let statuses = Self::having_statuses(stmt, per_agg);
        let kept = Self::kept_indices(&statuses, per_agg[0].len());
        let selected: Vec<usize> = match stmt.order_by {
            Some(spec) => {
                let sort_rows: Vec<GroupRange> = kept
                    .iter()
                    .map(|&i| per_agg[spec.agg_index][i].clone())
                    .collect();
                let picked = match stmt.limit {
                    Some(k) => certain_topk(&sort_rows, k, spec.descending),
                    None => order_rows(&sort_rows, spec.descending),
                };
                picked.into_iter().map(|j| kept[j]).collect()
            }
            None => kept,
        };
        Self::present(stmt, per_agg, &statuses, &selected)
    }

    /// The full evaluation pipeline of one statement over one pinned
    /// snapshot, producing both the presentation and the raw patch basis.
    fn compute_result(
        stmt: &PreparedStatement,
        db: &DatabaseInstance,
        index: &DbIndex,
        epoch: u64,
    ) -> Result<CachedResult, SessionError> {
        let raw = Self::raw_rows(stmt, db, index)?;
        let rows = Self::post_process(stmt, &raw);
        Ok(CachedResult {
            epoch,
            raw: Arc::new(raw),
            rows,
        })
    }

    /// Attempts to bring a stale cached result up to `epoch` by
    /// support-tracked differential maintenance. Returns `None` — fall back
    /// to a full recompute — when the support is exhaustive, the dirty
    /// history no longer reaches back to the cached epoch, or the affected
    /// key set is so large that one full pass is cheaper than per-key
    /// pinned joins.
    ///
    /// The affected key set is the union of (a) cached rows whose
    /// instantiated support patterns intersect the dirty blocks — covering
    /// value changes and retractions, since a destroyed embedding belonged
    /// to a cached row — and (b) the candidate keys the dirty blocks can
    /// newly derive ([`RangeCqa::dirty_candidate_keys`]) — covering births.
    /// Affected keys are then over-deleted and re-derived DRed-style via
    /// [`RangeCqa::range_for_groups`]: keys whose embeddings vanished stay
    /// gone, new keys appear, everything else keeps its cached row
    /// unexamined.
    fn try_patch(
        &self,
        stmt: &PreparedStatement,
        snapshot: &Snapshot,
        index: &DbIndex,
        cached: &CachedResult,
        epoch: u64,
    ) -> Result<Option<CachedResult>, SessionError> {
        let restamped = || {
            Some(CachedResult {
                epoch,
                raw: cached.raw.clone(),
                rows: cached.rows.clone(),
            })
        };
        // A statically contradictory WHERE clause is answered independently
        // of the data: the cached synthetic rows hold at every epoch.
        if stmt.unsatisfiable {
            return Ok(restamped());
        }
        if stmt.support().is_exhaustive() {
            return Ok(None);
        }
        let Some(dirty) = self.dirty_since(cached.epoch, epoch) else {
            return Ok(None);
        };
        let support = stmt.support();
        let raw = &*cached.raw;
        let mut affected: BTreeSet<Vec<Value>> = raw[0]
            .iter()
            .filter(|row| {
                dirty
                    .iter()
                    .any(|b| support.hits(&row.key, &b.relation, &b.key))
            })
            .map(|row| row.key.clone())
            .collect();
        affected.extend(stmt.engine().dirty_candidate_keys(index, &dirty));
        if affected.is_empty() {
            // Nothing cached can change and nothing can be born: the result
            // is untouched by the whole delta range.
            return Ok(restamped());
        }
        if raw[0].len() >= 16 && affected.len() * 2 > raw[0].len() {
            return Ok(None);
        }
        let mut new_raw = Vec::with_capacity(stmt.engines.len());
        for (engine, old) in stmt.engines.iter().zip(raw.iter()) {
            let fresh = engine.range_for_groups(&snapshot.db, index, &affected)?;
            let kept: Vec<GroupRange> = old
                .iter()
                .filter(|r| !affected.contains(&r.key))
                .cloned()
                .collect();
            new_raw.push(Self::merge_rows(kept, fresh));
        }
        if new_raw == *raw {
            // Re-derivation confirmed every affected row unchanged, so the
            // cached presentation (HAVING, selection included) is still
            // exact.
            return Ok(restamped());
        }
        let rows = match (stmt.order_by, stmt.limit) {
            (Some(spec), Some(_)) => {
                // Certain top-k membership is a function of the pairwise
                // possibly-precedes relation over the HAVING survivors. When
                // the patch provably preserved that relation, the cached
                // selection's keys still name exactly the certain rows —
                // re-presented with their fresh intervals in the fresh
                // deterministic order. Otherwise membership could change:
                // recompute the selection honestly (the rows themselves stay
                // patched — only the selection re-runs).
                let old_statuses = Self::having_statuses(stmt, raw);
                let old_kept = Self::kept_indices(&old_statuses, raw[0].len());
                let new_statuses = Self::having_statuses(stmt, &new_raw);
                let new_kept = Self::kept_indices(&new_statuses, new_raw[0].len());
                let old_sort: Vec<GroupRange> = old_kept
                    .iter()
                    .map(|&i| raw[spec.agg_index][i].clone())
                    .collect();
                let new_sort: Vec<GroupRange> = new_kept
                    .iter()
                    .map(|&i| new_raw[spec.agg_index][i].clone())
                    .collect();
                if topk_selection_preserved(&old_sort, &new_sort, spec.descending) {
                    let members: BTreeSet<&[Value]> =
                        cached.rows.rows.iter().map(|r| r.key.as_slice()).collect();
                    let selected: Vec<usize> = order_rows(&new_sort, spec.descending)
                        .into_iter()
                        .filter(|&j| members.contains(new_sort[j].key.as_slice()))
                        .map(|j| new_kept[j])
                        .collect();
                    Self::present(stmt, &new_raw, &new_statuses, &selected)
                } else {
                    AtomicStats::bump(&self.stats.topk_fallbacks);
                    Self::post_process(stmt, &new_raw)
                }
            }
            _ => Self::post_process(stmt, &new_raw),
        };
        Ok(Some(CachedResult {
            epoch,
            raw: Arc::new(new_raw),
            rows,
        }))
    }

    /// The cache-aware execution path shared by [`Session::execute`],
    /// [`Session::execute_many`], and the sharded front-end's fan-out,
    /// against one pinned snapshot: statement lookup, then result hit /
    /// support-tracked patch / full pipeline, in that order. Returns the
    /// full [`CachedResult`] — the post-processed presentation *and* the
    /// raw per-aggregate rows, which a sharded merge re-post-processes
    /// globally. No session-wide lock is held while the plan executes.
    fn fetch_result_at(
        &self,
        snapshot: &Snapshot,
        sql: &str,
    ) -> Result<(Arc<PreparedStatement>, CachedResult), SessionError> {
        let stmt = self.prepare_at(snapshot, sql)?;
        let epoch = snapshot.epoch;

        // Hot path: a result computed at exactly this snapshot's epoch
        // answers without touching the engine or the index.
        {
            let statements = self.read_statements();
            if let Some(entry) = statements.get(stmt.sql()) {
                if let Some(result) = &entry.result {
                    if result.epoch == epoch {
                        let result = result.clone();
                        drop(statements);
                        AtomicStats::bump(&self.stats.result_hits);
                        return Ok((stmt, result));
                    }
                }
            }
        }

        let index = self.pinned_index(snapshot);
        // A stale result (an epoch *behind* this snapshot) is the patch
        // basis; results from epochs ahead of the pinned snapshot are
        // useless to this reader and are left in place for current ones.
        let cached: Option<CachedResult> = self
            .read_statements()
            .get(stmt.sql())
            .and_then(|entry| entry.result.clone());

        enum Path {
            Patch,
            Full,
        }
        let (path, result) = match cached {
            Some(cached) if cached.epoch < epoch => {
                match self.try_patch(&stmt, snapshot, &index, &cached, epoch)? {
                    Some(result) => (Path::Patch, result),
                    None => {
                        AtomicStats::bump(&self.stats.support_misses);
                        (
                            Path::Full,
                            Self::compute_result(&stmt, &snapshot.db, &index, epoch)?,
                        )
                    }
                }
            }
            _ => (
                Path::Full,
                Self::compute_result(&stmt, &snapshot.db, &index, epoch)?,
            ),
        };
        match path {
            Path::Patch => {
                AtomicStats::bump(&self.stats.partial_recomputes);
                AtomicStats::bump(&self.stats.supported_patches);
            }
            Path::Full => AtomicStats::bump(&self.stats.full_recomputes),
        }
        // Publish the result for this epoch — unless a reader pinned to a
        // newer snapshot stored theirs first (never regress the cache).
        {
            let mut statements = self.write_statements();
            if let Some(entry) = statements.get_mut(stmt.sql()) {
                let newer = matches!(&entry.result, Some(r) if r.epoch > epoch);
                if !newer {
                    entry.result = Some(result.clone());
                }
            }
        }
        Ok((stmt, result))
    }

    /// [`Session::fetch_result_at`] reduced to the presented outcome.
    fn execute_at(&self, snapshot: &Snapshot, sql: &str) -> Result<QueryOutcome, SessionError> {
        let (stmt, result) = self.fetch_result_at(snapshot, sql)?;
        Ok(Self::outcome(&stmt, result.rows, snapshot.epoch))
    }

    /// Executes a SQL aggregation query: classification plus one
    /// `[glb, lub]` interval per group. The query is evaluated against the
    /// snapshot current at call time, with no session-wide lock held during
    /// plan execution; statement, index, and (when current) result come from
    /// the session caches, and answers are always identical to a cold
    /// session's over the pinned snapshot.
    pub fn execute(&self, sql: &str) -> Result<QueryOutcome, SessionError> {
        let snapshot = self.snapshot();
        self.execute_at(&snapshot, sql)
    }

    /// Executes a batch of SQL queries against **one pinned snapshot**,
    /// returning one outcome per statement in order: the batch is mutually
    /// consistent even while writers commit concurrently. Fails on the first
    /// erroring statement.
    pub fn execute_many<S: AsRef<str>>(
        &self,
        sqls: impl IntoIterator<Item = S>,
    ) -> Result<Vec<QueryOutcome>, SessionError> {
        let snapshot = self.snapshot();
        sqls.into_iter()
            .map(|sql| self.execute_at(&snapshot, sql.as_ref()))
            .collect()
    }

    /// An `EXPLAIN`-style rendering of the physical plan [`Session::execute`]
    /// would run for this SQL query (served from the statement cache). The
    /// per-aggregate plan — including the chosen access path with its
    /// statistics estimate — is followed by the session-level post-processing
    /// steps (HAVING trichotomy, ORDER BY, certain top-k).
    pub fn explain(&self, sql: &str) -> Result<String, SessionError> {
        let snapshot = self.snapshot();
        let stmt = self.prepare_at(&snapshot, sql)?;
        let index = self.pinned_index(&snapshot);
        let mut out = String::new();
        if stmt.unsatisfiable {
            out.push_str(
                "contradictory WHERE clause: no repair satisfies it; answered statically\n",
            );
            return Ok(out);
        }
        for (i, engine) in stmt.engines.iter().enumerate() {
            if stmt.engines.len() > 1 {
                out.push_str(&format!(
                    "aggregate #{i}{}: {}\n",
                    if i >= stmt.visible_aggregates {
                        " (hidden: HAVING/ORDER BY only)"
                    } else {
                        ""
                    },
                    engine.prepared().original.agg,
                ));
            }
            out.push_str(&engine.explain_with_index(&snapshot.db, &index));
        }
        for cond in &stmt.having {
            out.push_str(&format!(
                "post-process: HAVING aggregate #{} {} {} -> certain/possible kept, violated dropped\n",
                cond.agg_index, cond.op, cond.threshold,
            ));
        }
        if let Some(spec) = stmt.order_by {
            let dir = if spec.descending { "DESC" } else { "ASC" };
            match stmt.limit {
                Some(k) => out.push_str(&format!(
                    "post-process: certain top-{k} by aggregate #{} {dir} (rows certainly in the top {k} of every repair)\n",
                    spec.agg_index,
                )),
                None => out.push_str(&format!(
                    "post-process: ORDER BY aggregate #{} {dir} (presentation order over intervals)\n",
                    spec.agg_index,
                )),
            }
        }
        Ok(out)
    }
}

// The serving contract: one session shared across client threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<PreparedStatement>();
    assert_send_sync::<QueryOutcome>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_core::engine::Method;
    use rcqa_data::{fact, rat};
    use rcqa_query::TableDef;

    fn stock_session() -> Session {
        let catalog = Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            );
        let session = Session::new(catalog);
        session
            .insert_all([
                fact!("Dealers", "Smith", "Boston"),
                fact!("Dealers", "Smith", "New York"),
                fact!("Dealers", "James", "Boston"),
                fact!("Stock", "Tesla X", "Boston", 35),
                fact!("Stock", "Tesla X", "Boston", 40),
                fact!("Stock", "Tesla Y", "Boston", 35),
                fact!("Stock", "Tesla Y", "New York", 95),
                fact!("Stock", "Tesla Y", "New York", 96),
            ])
            .unwrap();
        session
    }

    #[test]
    fn grouped_sql_end_to_end() {
        let session = stock_session();
        let outcome = session
            .execute(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        assert_eq!(outcome.columns, vec!["Name".to_string(), "SUM".to_string()]);
        assert!(outcome.classification.attack_graph_acyclic);
        assert_eq!(outcome.rows.len(), 2);
        // Sorted group order: James before Smith.
        assert_eq!(outcome.rows[0].key[0].to_string(), "James");
        assert_eq!(outcome.rows[0].glb.unwrap().value, Some(rat(70)));
        assert_eq!(outcome.rows[0].lub.unwrap().value, Some(rat(75)));
        assert_eq!(outcome.rows[1].key[0].to_string(), "Smith");
        assert_eq!(outcome.rows[1].glb.unwrap().value, Some(rat(70)));
        assert_eq!(outcome.rows[1].lub.unwrap().value, Some(rat(96)));
        assert_eq!(outcome.rows[1].glb.unwrap().method, Method::Rewriting);
        let table = outcome.to_table();
        assert!(table.contains("James"), "{table}");
        assert!(table.contains("96"), "{table}");
    }

    #[test]
    fn session_respects_thread_option() {
        for threads in [1, 2, 8] {
            let session = stock_session().with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
            let outcome = session
                .execute(
                    "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                     WHERE D.Town = S.Town GROUP BY D.Name",
                )
                .unwrap();
            assert_eq!(outcome.rows.len(), 2);
            assert_eq!(outcome.rows[1].lub.unwrap().value, Some(rat(96)));
        }
    }

    #[test]
    fn explain_shows_the_physical_pipeline() {
        let session = stock_session();
        let plan = session
            .explain(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        for op in [
            "RangeMerge",
            "AggregateBound",
            "ForallCheck",
            "PartitionByGroup",
            "Join",
            "Scan",
        ] {
            assert!(plan.contains(op), "missing {op} in:\n{plan}");
        }
    }

    #[test]
    fn errors_are_reported() {
        let session = stock_session();
        assert!(matches!(
            session.execute("SELECT SUM(S.Qty) FROM Nope AS S"),
            Err(SessionError::Query(_))
        ));
        assert!(matches!(
            session.execute("not even sql"),
            Err(SessionError::Query(_))
        ));
        // Schema-violating fact.
        let session = stock_session();
        assert!(matches!(
            session.insert(fact!("Dealers", "only-one-arg")),
            Err(SessionError::Data(_))
        ));
    }

    #[test]
    fn insert_all_batches_are_atomic() {
        let session = stock_session();
        let epoch = session.epoch();
        let before = session.database().len();
        // The second fact violates the schema: the whole batch must roll
        // back — no new snapshot, no partial insert.
        let result = session.insert_all([
            fact!("Dealers", "Lopez", "Chicago"),
            fact!("Dealers", "bad-arity"),
        ]);
        assert!(matches!(result, Err(SessionError::Data(_))));
        assert_eq!(session.epoch(), epoch);
        assert_eq!(session.database().len(), before);
        assert!(!session
            .database()
            .contains(&fact!("Dealers", "Lopez", "Chicago")));
    }

    #[test]
    fn normalization_collapses_whitespace_and_case_outside_literals() {
        assert_eq!(
            Session::normalize_sql("  select   sum(S.Qty)\n\tFROM Stock AS S ; "),
            "SELECT SUM(S.QTY) FROM STOCK AS S"
        );
        // Literal interiors (and doubled-quote escapes) survive untouched,
        // whitespace and case included.
        assert_eq!(
            Session::normalize_sql("SELECT  X FROM T WHERE A = 'New  York;' AND b = 'O''x  y'"),
            "SELECT X FROM T WHERE A = 'New  York;' AND B = 'O''x  y'"
        );
        // Only ONE trailing terminator is dropped; the parser rejects the
        // rest, so `…;;` normalizes to `…;` and still errors.
        assert_eq!(Session::normalize_sql("SELECT X;;"), "SELECT X;");
    }

    #[test]
    fn statement_cache_hits_by_normalized_sql() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let first = session.execute(sql).unwrap();
        // Re-spelled with different whitespace, different keyword and
        // identifier case, and a trailing terminator.
        let respelled = "  select D.name,   max(S.Qty) from Dealers AS D, Stock AS S \
                         WHERE D.Town = S.Town GROUP BY D.Name ; ";
        let second = session.execute(respelled).unwrap();
        assert_eq!(first.rows, second.rows);
        let stats = session.stats();
        assert_eq!(stats.statements_prepared, 1);
        assert_eq!(stats.statement_hits, 1);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.index_builds, 1);
        // prepare() exposes the cached statement; output columns report the
        // catalog's spelling even though the cache key is case-folded.
        let stmt = session.prepare(sql).unwrap();
        assert_eq!(stmt.columns(), ["Name", "MAX"]);
        assert!(!stmt.support().is_exhaustive());
        assert_eq!(stmt.sql(), Session::normalize_sql(respelled));
    }

    #[test]
    fn mutations_invalidate_results_and_patch_dirty_groups() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let before = session.execute(sql).unwrap();
        assert_eq!(before.rows.len(), 2);

        // A third dealer appears: the query must see it immediately.
        session
            .insert(fact!("Dealers", "Lopez", "New York"))
            .unwrap();
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows.len(), 3);
        assert_eq!(after.rows[1].key[0].to_string(), "Lopez");
        assert_eq!(after.rows[1].lub.unwrap().value, Some(rat(96)));
        // Untouched groups kept their rows; only the new group was computed.
        assert_eq!(after.rows[0], before.rows[0]);
        assert_eq!(after.rows[2], before.rows[1]);
        let stats = session.stats();
        assert_eq!(stats.partial_recomputes, 1);
        assert_eq!(stats.index_builds, 1, "the delta path must not rebuild");

        // Deleting the dealer again restores the original answer — and the
        // whole exchange must agree with a cold session at 1 and 4 threads.
        assert!(session
            .delete(&fact!("Dealers", "Lopez", "New York"))
            .unwrap());
        let restored = session.execute(sql).unwrap();
        assert_eq!(restored.rows, before.rows);
        for threads in [1, 4] {
            let cold = Session::with_instance(session.catalog().clone(), session.database())
                .with_options(EngineOptions {
                    threads,
                    ..EngineOptions::default()
                });
            assert_eq!(cold.execute(sql).unwrap().rows, restored.rows);
        }
    }

    #[test]
    fn non_key_group_mutations_are_patched_via_support() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        session.execute(sql).unwrap();
        // The group key (Name) is not determined by Stock's block key, so
        // the old level-0 locality certificate rejected this statement; the
        // support patterns still localise the dirty Stock block to the
        // groups whose towns it can join with, and both Boston dealers are
        // re-derived — with the correct new answer.
        session
            .insert(fact!("Stock", "Tesla Z", "Boston", 500))
            .unwrap();
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows[0].lub.unwrap().value, Some(rat(500)));
        let stats = session.stats();
        assert_eq!(stats.partial_recomputes, 1);
        assert_eq!(stats.supported_patches, 1);
        assert_eq!(stats.support_misses, 0);
        assert_eq!(stats.full_recomputes, 1);
        assert_eq!(stats.index_builds, 1);
        // Byte-identical to a cold session over the same data.
        let cold = Session::with_instance(session.catalog().clone(), session.database());
        assert_eq!(cold.execute(sql).unwrap().rows, after.rows);
    }

    #[test]
    fn over_budget_dirty_history_full_recomputes_correctly() {
        let session = stock_session().with_session_options(SessionOptions {
            dirty_log_cap: 2,
            ..Default::default()
        });
        assert_eq!(session.session_options().dirty_log_cap, 2);
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        session.execute(sql).unwrap();
        // Three single-fact commits: the first batch's dirty blocks are
        // evicted past the cap, so the cached result predates the retained
        // history and cannot be patched — it must answer via an honest full
        // recompute, still correctly.
        for i in 0..3 {
            session
                .insert(fact!("Dealers", format!("d{i}"), "Boston"))
                .unwrap();
        }
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows.len(), 5);
        let stats = session.stats();
        assert_eq!(stats.partial_recomputes, 0);
        assert_eq!(stats.supported_patches, 0);
        assert_eq!(stats.support_misses, 1);
        assert_eq!(stats.full_recomputes, 2);
        let cold = Session::with_instance(session.catalog().clone(), session.database());
        assert_eq!(cold.execute(sql).unwrap().rows, after.rows);

        // A zero cap disables patching outright: every commit floors the
        // log, so even a one-commit-stale result recomputes in full.
        let session = stock_session().with_session_options(SessionOptions {
            dirty_log_cap: 0,
            ..Default::default()
        });
        session.execute(sql).unwrap();
        session.insert(fact!("Dealers", "Lopez", "Boston")).unwrap();
        session.execute(sql).unwrap();
        let stats = session.stats();
        assert_eq!(stats.supported_patches, 0);
        assert_eq!(stats.support_misses, 1);
        assert_eq!(stats.full_recomputes, 2);
    }

    #[test]
    fn execute_many_amortises_one_snapshot() {
        let session = stock_session();
        let sqls = [
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
            "SELECT D.Name, MIN(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
            // Repeat of the first: a result hit inside the batch.
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
        ];
        let outcomes = session.execute_many(sqls).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].rows, outcomes[2].rows);
        // One pinned snapshot: every outcome carries the same epoch.
        assert!(outcomes.iter().all(|o| o.epoch == outcomes[0].epoch));
        let stats = session.stats();
        assert_eq!(stats.statements_prepared, 2);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.index_builds, 1);
        // An error anywhere surfaces as the batch error.
        assert!(session
            .execute_many(["SELECT SUM(S.Qty) FROM Nope AS S"])
            .is_err());
    }

    #[test]
    fn clone_and_with_options_keep_answers_identical() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let warm = session.execute(sql).unwrap();
        // A clone carries the caches along.
        let cloned = session.clone();
        assert_eq!(cloned.execute(sql).unwrap().rows, warm.rows);
        assert_eq!(cloned.stats().result_hits, 1);
        // A clone diverges through its own writers without touching the
        // original's snapshot chain.
        cloned.insert(fact!("Dealers", "Lopez", "Boston")).unwrap();
        assert_eq!(cloned.epoch(), session.epoch() + 1);
        assert!(!session
            .database()
            .contains(&fact!("Dealers", "Lopez", "Boston")));
        // with_options invalidates statements (they embed options) but keeps
        // the snapshot chain and its index.
        let reopt = session.with_options(EngineOptions {
            threads: 2,
            ..EngineOptions::default()
        });
        assert_eq!(reopt.execute(sql).unwrap().rows, warm.rows);
        let stats = reopt.stats();
        assert_eq!(stats.statements_prepared, 2, "statement cache was cleared");
        assert_eq!(stats.index_builds, 1, "index survives re-option");
    }

    #[test]
    fn snapshots_pin_a_version_while_writers_advance() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let before = session.execute(sql).unwrap();
        let pinned = session.snapshot();
        assert_eq!(pinned.epoch(), before.epoch);

        session
            .insert(fact!("Dealers", "Lopez", "New York"))
            .unwrap();
        // The live session sees the write; the pinned snapshot does not.
        assert_eq!(session.execute(sql).unwrap().rows.len(), 3);
        assert_eq!(pinned.db().len(), 8);
        assert_eq!(session.database().len(), 9);
        assert_eq!(session.epoch(), pinned.epoch() + 1);
        // A cold session over the pinned instance reproduces the pinned-era
        // answer exactly.
        let cold = Session::with_instance(session.catalog().clone(), pinned.db().clone());
        assert_eq!(cold.execute(sql).unwrap().rows, before.rows);
    }

    #[test]
    fn concurrent_readers_and_writer_agree_with_cold_sessions() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let baseline = session.execute(sql).unwrap();
        let writes = 6u64;
        std::thread::scope(|scope| {
            let session = &session;
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..12 {
                        let outcome = session.execute(sql).unwrap();
                        // Reads are snapshot-isolated: 2 base rows plus one
                        // per committed write at the pinned epoch.
                        assert_eq!(
                            outcome.rows.len() as u64,
                            2 + outcome.epoch - baseline.epoch
                        );
                    }
                });
            }
            scope.spawn(move || {
                for i in 0..writes {
                    session
                        .insert(fact!("Dealers", format!("w{i}"), "Boston"))
                        .unwrap();
                }
            });
        });
        assert_eq!(session.epoch(), baseline.epoch + writes);
        let final_rows = session.execute(sql).unwrap().rows;
        let cold = Session::with_instance(session.catalog().clone(), session.database());
        assert_eq!(cold.execute(sql).unwrap().rows, final_rows);
    }

    #[test]
    fn statement_cache_evicts_lru_and_eviction_never_changes_answers() {
        let session = stock_session().with_session_options(SessionOptions {
            statement_cache_cap: 2,
            ..Default::default()
        });
        let statements = [
            "SELECT MAX(S.Qty) FROM Stock AS S",
            "SELECT MIN(S.Qty) FROM Stock AS S",
            "SELECT SUM(S.Qty) FROM Stock AS S",
            "SELECT S.Town, MAX(S.Qty) FROM Stock AS S GROUP BY S.Town",
        ];
        // Answers with an unbounded cache are the reference.
        let unbounded = stock_session();
        let reference: Vec<_> = statements
            .iter()
            .map(|sql| unbounded.execute(sql).unwrap())
            .collect();
        // Thrash the bounded cache in an order that evicts every statement
        // several times, interleaving writes so evicted statements lose
        // their cached results too.
        for round in 0..3u64 {
            let transient = fact!("Stock", format!("P{round}"), "Boston", round as i64);
            session.insert(transient.clone()).unwrap();
            for sql in statements.iter().chain(statements.iter().rev()) {
                session.execute(sql).unwrap();
            }
            session.delete(&transient).unwrap();
        }
        let stats = session.stats();
        assert!(
            stats.statements_evicted > 0,
            "cap 2 with 4 statements must evict: {stats:?}"
        );
        assert!(
            session.read_statements().len() <= 2,
            "cache stays within its cap"
        );
        for (sql, expect) in statements.iter().zip(&reference) {
            let out = session.execute(sql).unwrap();
            assert_eq!(out.rows, expect.rows, "{sql}");
            assert_eq!(out.having, expect.having, "{sql}");
        }
    }

    #[test]
    fn statement_cache_cap_zero_disables_caching_but_not_answers() {
        let session = stock_session().with_session_options(SessionOptions {
            statement_cache_cap: 0,
            ..Default::default()
        });
        let sql = "SELECT S.Town, MAX(S.Qty) FROM Stock AS S GROUP BY S.Town";
        let first = session.execute(sql).unwrap();
        let second = session.execute(sql).unwrap();
        assert_eq!(first.rows, second.rows);
        assert_eq!(session.read_statements().len(), 0);
        let stats = session.stats();
        assert_eq!(stats.statement_hits, 0);
        assert_eq!(stats.result_hits, 0);
        assert_eq!(stats.statements_prepared, 2, "every execution re-prepares");
    }

    #[test]
    fn shrinking_the_statement_cache_cap_evicts_down_to_capacity() {
        let session = stock_session();
        for sql in [
            "SELECT MAX(S.Qty) FROM Stock AS S",
            "SELECT MIN(S.Qty) FROM Stock AS S",
            "SELECT SUM(S.Qty) FROM Stock AS S",
        ] {
            session.execute(sql).unwrap();
        }
        assert_eq!(session.read_statements().len(), 3);
        let hot = "SELECT MAX(S.Qty) FROM Stock AS S";
        session.execute(hot).unwrap();
        let session = session.with_session_options(SessionOptions {
            statement_cache_cap: 1,
            ..Default::default()
        });
        assert_eq!(session.read_statements().len(), 1);
        assert_eq!(session.stats().statements_evicted, 2);
        // The survivor is the most recently used statement, still serving
        // the correct (cached) answer.
        assert!(session
            .read_statements()
            .contains_key(&Session::normalize_sql(hot)));
        let cold = Session::with_instance(session.catalog().clone(), session.database());
        assert_eq!(
            session.execute(hot).unwrap().rows,
            cold.execute(hot).unwrap().rows
        );
    }
}
