//! # rcqa-session
//!
//! The SQL serving layer of the workspace: a **stateful** session that owns a
//! named-column [`Catalog`], a [`DatabaseInstance`], [`EngineOptions`], and —
//! unlike a one-shot evaluation — the derived state a server needs to answer
//! the same queries over a slowly-changing instance without rebuilding the
//! world per call:
//!
//! * a **prepared-statement cache**: [`Session::prepare`] parses, classifies,
//!   and plans a SQL string once; `execute`/`explain` look statements up by
//!   *normalized* SQL (whitespace collapsed outside string literals, one
//!   trailing `;` stripped), so textual re-submissions of the same query
//!   never re-parse, never re-run attack-graph classification, and never
//!   re-plan;
//! * a **cached block index**: the session owns one `DbIndex` over its
//!   instance; [`Session::insert`], [`Session::insert_all`], and
//!   [`Session::delete`] record [`DeltaEvent`]s and the index is maintained
//!   by block-level replay (`DbIndex::apply_delta`) instead of wholesale
//!   invalidation — repeated `execute` calls build **one** index total
//!   (only a bulk mutation batch large relative to the instance falls back
//!   to a rebuild, which is cheaper than replaying it);
//! * a **per-statement result cache with dirty-group maintenance**: answers
//!   are cached against the session's data version; after mutations, a
//!   statement whose GROUP BY keys are block-key-determined
//!   ([`rcqa_core::engine::GroupLocality`]) recomputes only the groups whose
//!   level-0 blocks changed and keeps every other cached row;
//! * a **batch API**: [`Session::execute_many`] answers a batch under one
//!   index acquisition.
//!
//! ## Identical-answers guarantee
//!
//! Caching is transparent: every successful `execute` returns rows
//! byte-identical to what a cold session over the same catalog, instance, and
//! options would return, at every executor thread count. The incrementally
//! maintained index is structurally identical to a cold rebuild
//! (`DbIndex::apply_delta` keeps facts and blocks at their cold-scan sorted
//! positions), and dirty-group recomputation is only used when the engine
//! certifies locality — every GROUP BY variable is bound at a key position of
//! the level-0 atom, so blocks of untouched keys can never influence another
//! group's answer. `tests/serving_cache.rs` and `tests/session_sql.rs` assert
//! both halves of the guarantee.
//!
//! Every consumer — the experiment harness, the examples, and the
//! integration tests — goes through this one path, so the SQL parser, the
//! logical/physical planner, and the (parallel) plan executor are exercised
//! together end to end:
//!
//! ```text
//! SQL string
//!   └─ normalize → statement cache        rcqa-session
//!      └─ parse_sql (catalog-driven)      rcqa-query      (cold only)
//!         └─ classify_with_domain         rcqa-core::classify
//!         └─ LogicalPlan → PhysicalPlan   rcqa-core::plan
//!            └─ execute (worker pool)     rcqa-core::plan::exec
//!               └─ Vec<GroupRange>        range-consistent answers
//! ```
//!
//! ## Quick example
//!
//! ```
//! use rcqa_data::fact;
//! use rcqa_query::{Catalog, TableDef};
//! use rcqa_session::Session;
//!
//! let catalog = Catalog::new()
//!     .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
//!     .with_table(
//!         TableDef::new("Stock")
//!             .key_column("Product")
//!             .key_column("Town")
//!             .numeric_column("Qty"),
//!     );
//! let mut session = Session::new(catalog);
//! session
//!     .insert_all([
//!         fact!("Dealers", "Smith", "Boston"),
//!         fact!("Dealers", "Smith", "New York"),
//!         fact!("Stock", "Tesla X", "Boston", 35),
//!         fact!("Stock", "Tesla Y", "New York", 95),
//!     ])
//!     .unwrap();
//! let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
//!            WHERE D.Town = S.Town AND D.Name = 'Smith'";
//! let outcome = session.execute(sql).unwrap();
//! assert_eq!(outcome.rows.len(), 1);
//! assert!(outcome.classification.attack_graph_acyclic);
//! // The repeat is served from the statement + result caches.
//! let again = session.execute(sql).unwrap();
//! assert_eq!(again.rows, outcome.rows);
//! assert_eq!(session.stats().result_hits, 1);
//! ```

#![warn(missing_docs)]

use rcqa_core::classify::Classification;
use rcqa_core::engine::{EngineOptions, GroupLocality, GroupRange, RangeCqa};
use rcqa_core::index::{DbIndex, DirtyBlock};
use rcqa_core::CoreError;
use rcqa_data::{DataError, DatabaseInstance, DeltaEvent, Fact, Rational};
use rcqa_query::{parse_sql, AggQuery, Catalog, QueryError};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Errors raised by a [`Session`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// SQL parsing / translation failed.
    Query(QueryError),
    /// The engine rejected or failed to evaluate the query.
    Core(CoreError),
    /// A fact violated the catalog's schema.
    Data(DataError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Query(e) => write!(f, "SQL error: {e}"),
            SessionError::Core(e) => write!(f, "engine error: {e}"),
            SessionError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<QueryError> for SessionError {
    fn from(e: QueryError) -> SessionError {
        SessionError::Query(e)
    }
}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> SessionError {
        SessionError::Core(e)
    }
}

impl From<DataError> for SessionError {
    fn from(e: DataError) -> SessionError {
        SessionError::Data(e)
    }
}

/// The result of executing one SQL query in a session.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The translated AGGR\[sjfBCQ\] query.
    pub query: AggQuery,
    /// The rewriting/complexity classification of the query over the
    /// session instance's numeric domain.
    pub classification: Classification,
    /// Output column names: one per GROUP BY column, then the aggregate.
    pub columns: Vec<String>,
    /// One `[glb, lub]` interval per group, in sorted group-key order.
    pub rows: Vec<GroupRange>,
}

fn fmt_bound(v: Option<Rational>) -> String {
    match v {
        Some(r) => r.to_string(),
        None => "⊥".to_string(),
    }
}

impl QueryOutcome {
    /// Renders the answer as a plain-text table (group key columns, then
    /// `glb` and `lub`), for reports and examples.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let key_cols = self.columns.len().saturating_sub(1);
        for c in &self.columns[..key_cols] {
            out.push_str(&format!("{c:<14} "));
        }
        out.push_str(&format!("{:>12} {:>12}\n", "glb", "lub"));
        for row in &self.rows {
            for value in &row.key {
                out.push_str(&format!("{:<14} ", value.to_string()));
            }
            let bound = |b: &Option<rcqa_core::engine::BoundAnswer>| {
                b.as_ref()
                    .map(|b| fmt_bound(b.value))
                    .unwrap_or_else(|| "-".to_string())
            };
            out.push_str(&format!(
                "{:>12} {:>12}\n",
                bound(&row.glb),
                bound(&row.lub)
            ));
        }
        out
    }
}

/// A SQL statement prepared once and cached by the session: the parsed and
/// translated [`AggQuery`], its output column names, the fully prepared
/// [`RangeCqa`] engine (attack graph, level structure, interned variable
/// slots, logical→physical plan choice), the [`Classification`] for the
/// session instance's numeric domain, and — when the engine certifies it —
/// the [`GroupLocality`] that licenses dirty-group result maintenance.
///
/// Statements are keyed by *normalized* SQL ([`Session::normalize_sql`]):
/// whitespace runs outside string literals collapse to one space and a single
/// trailing statement terminator is dropped, so `SELECT  X ;` and `SELECT X`
/// share one cache entry while literals like `'New  York'` stay distinct.
/// Preparation is immutable after construction; per-statement *results* are
/// cached separately inside the session, versioned by its data epoch.
#[derive(Debug)]
pub struct PreparedStatement {
    sql: String,
    query: AggQuery,
    columns: Vec<String>,
    engine: RangeCqa,
    classification: Classification,
    locality: Option<GroupLocality>,
}

impl PreparedStatement {
    /// The normalized SQL text this statement is cached under.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The translated AGGR\[sjfBCQ\] query.
    pub fn query(&self) -> &AggQuery {
        &self.query
    }

    /// Output column names: one per GROUP BY column, then the aggregate.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The classification of the query over the session instance's numeric
    /// domain (computed once at preparation).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The statement's group locality, if its GROUP BY keys are
    /// block-key-determined (the licence for dirty-group maintenance).
    pub fn locality(&self) -> Option<&GroupLocality> {
        self.locality.as_ref()
    }
}

/// Serving-layer counters, for tests, benchmarks, and observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements parsed, classified, and planned (cache misses).
    pub statements_prepared: u64,
    /// Executions that found their statement already prepared.
    pub statement_hits: u64,
    /// Executions answered entirely from a current cached result.
    pub result_hits: u64,
    /// Executions that recomputed only dirty groups and kept the rest.
    pub partial_recomputes: u64,
    /// Executions that ran the full pipeline.
    pub full_recomputes: u64,
    /// Cold index constructions (should stay at 1 for a serving session).
    pub index_builds: u64,
    /// Delta events replayed into the cached index.
    pub deltas_applied: u64,
}

/// One cached statement plus its last computed result (if any), versioned by
/// the session epoch the result was computed at.
#[derive(Clone, Debug)]
struct CachedStatement {
    stmt: Arc<PreparedStatement>,
    result: Option<(u64, Vec<GroupRange>)>,
}

/// The serving state behind the session's interior mutability: everything
/// derived from the instance that `execute(&self)` maintains lazily.
#[derive(Clone, Debug, Default)]
struct ServingState {
    /// The cached block index, built on first use.
    index: Option<DbIndex>,
    /// Effective mutations not yet replayed into `index`.
    pending: Vec<DeltaEvent>,
    /// Data version: number of effective mutations since the session opened.
    epoch: u64,
    /// Dirty history: `(epoch_after_batch, dirty blocks of the batch)`, one
    /// entry per replayed pending batch, oldest first.
    dirty_log: Vec<(u64, Vec<DirtyBlock>)>,
    /// Results cached at an epoch `< log_floor` predate the retained history
    /// and must recompute in full.
    log_floor: u64,
    /// Prepared statements keyed by normalized SQL.
    statements: HashMap<String, CachedStatement>,
    stats: SessionStats,
}

/// Upper bound on retained dirty batches; older results fall back to a full
/// recompute, which re-caches them at the current epoch.
const DIRTY_LOG_CAP: usize = 128;

/// A stateful SQL serving session: catalog + instance + engine options, plus
/// cached derived state (statements, block index, versioned results).
///
/// See the [crate docs](self) for the cache architecture and the
/// identical-answers guarantee.
pub struct Session {
    catalog: Catalog,
    db: DatabaseInstance,
    options: EngineOptions,
    state: Mutex<ServingState>,
}

impl Clone for Session {
    fn clone(&self) -> Session {
        Session {
            catalog: self.catalog.clone(),
            db: self.db.clone(),
            options: self.options,
            state: Mutex::new(self.lock().clone()),
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.lock();
        f.debug_struct("Session")
            .field("facts", &self.db.len())
            .field("options", &self.options)
            .field("epoch", &state.epoch)
            .field("statements", &state.statements.len())
            .field("index_cached", &state.index.is_some())
            .finish()
    }
}

impl Session {
    /// Opens a session over an empty instance of the catalog's schema.
    pub fn new(catalog: Catalog) -> Session {
        let db = DatabaseInstance::new(catalog.schema());
        Session::with_instance(catalog, db)
    }

    /// Opens a session over an existing instance (whose schema should be the
    /// catalog's lowering).
    pub fn with_instance(catalog: Catalog, db: DatabaseInstance) -> Session {
        Session {
            catalog,
            db,
            options: EngineOptions::default(),
            state: Mutex::new(ServingState::default()),
        }
    }

    /// Overrides the engine options (exact-fallback policy, repair budget,
    /// executor worker count).
    ///
    /// Cached statements embed the options they were prepared with, so the
    /// statement (and result) caches are cleared; the cached index is
    /// options-independent and survives.
    pub fn with_options(mut self, options: EngineOptions) -> Session {
        self.options = options;
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        state.statements.clear();
        self
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's database instance.
    pub fn database(&self) -> &DatabaseInstance {
        &self.db
    }

    /// The session's engine options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// The serving-layer counters.
    pub fn stats(&self) -> SessionStats {
        self.lock().stats
    }

    fn lock(&self) -> MutexGuard<'_, ServingState> {
        // A worker panic while holding the lock poisons it; the state is
        // rebuildable from `db`, so poisoning is not propagated.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one effective mutation: bumps the data version and queues the
    /// event for incremental index replay (nothing to maintain before the
    /// first index build).
    fn record(&mut self, event: DeltaEvent) {
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        state.epoch += 1;
        if state.index.is_some() {
            state.pending.push(event);
        }
    }

    /// Inserts one fact. Returns `true` if the fact was new.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, SessionError> {
        let new = self.db.insert(fact.clone())?;
        if new {
            self.record(DeltaEvent::insert(fact));
        }
        Ok(new)
    }

    /// Inserts many facts.
    pub fn insert_all(
        &mut self,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<(), SessionError> {
        for fact in facts {
            self.insert(fact)?;
        }
        Ok(())
    }

    /// Deletes one fact. Returns `true` if it was present.
    pub fn delete(&mut self, fact: &Fact) -> bool {
        let removed = self.db.remove(fact);
        if removed {
            self.record(DeltaEvent::delete(fact.clone()));
        }
        removed
    }

    /// Normalizes SQL text into its statement-cache key: whitespace runs
    /// *outside* string literals collapse to a single space, surrounding
    /// whitespace is trimmed, and one trailing statement terminator (`;`) is
    /// dropped. Literal contents — including doubled-quote escapes — are
    /// preserved verbatim.
    ///
    /// Delegates to [`rcqa_query::normalize_sql`], which lives next to the
    /// tokenizer so the cache key and the parser share one definition of
    /// where string literals begin and end.
    pub fn normalize_sql(sql: &str) -> String {
        rcqa_query::normalize_sql(sql)
    }

    /// Parses, classifies, and plans a SQL statement, caching it by
    /// normalized SQL; subsequent [`Session::execute`] / [`Session::explain`]
    /// calls with the same (normalized) text reuse the preparation.
    pub fn prepare(&self, sql: &str) -> Result<Arc<PreparedStatement>, SessionError> {
        let mut state = self.lock();
        Self::prepare_locked(&self.catalog, &self.db, self.options, &mut state, sql)
    }

    fn prepare_locked(
        catalog: &Catalog,
        db: &DatabaseInstance,
        options: EngineOptions,
        state: &mut ServingState,
        sql: &str,
    ) -> Result<Arc<PreparedStatement>, SessionError> {
        let key = Self::normalize_sql(sql);
        if let Some(entry) = state.statements.get(&key) {
            state.stats.statement_hits += 1;
            return Ok(entry.stmt.clone());
        }
        let translated = parse_sql(&key, catalog)?;
        let engine = RangeCqa::new(&translated.query, &catalog.schema())?.with_options(options);
        let classification = engine.classification(db.numeric_domain());
        let locality = engine.group_locality();
        let stmt = Arc::new(PreparedStatement {
            sql: key.clone(),
            query: translated.query,
            columns: translated.output_columns,
            engine,
            classification,
            locality,
        });
        state.statements.insert(
            key,
            CachedStatement {
                stmt: stmt.clone(),
                result: None,
            },
        );
        state.stats.statements_prepared += 1;
        Ok(stmt)
    }

    /// Brings the cached index up to the current epoch: a cold build on first
    /// use, block-level delta replay afterwards. Each replayed batch lands in
    /// the dirty log for result maintenance.
    fn acquire_index(db: &DatabaseInstance, state: &mut ServingState) {
        if state.index.is_none() {
            state.index = Some(DbIndex::new(db));
            state.pending.clear();
            state.dirty_log.clear();
            state.log_floor = state.epoch;
            state.stats.index_builds += 1;
            return;
        }
        if state.pending.is_empty() {
            return;
        }
        // Event-by-event replay renumbers block positions per structural
        // change, so a bulk batch approaching the instance size degrades to
        // O(events × blocks) — worse than the O(|db|) cold rebuild it exists
        // to avoid. Past a conservative threshold, rebuild instead; cached
        // results fall behind the log floor and recompute in full, answers
        // unaffected.
        if state.pending.len() > 16 && state.pending.len() > db.len() / 4 {
            state.index = Some(DbIndex::new(db));
            state.pending.clear();
            state.dirty_log.clear();
            state.log_floor = state.epoch;
            state.stats.index_builds += 1;
            return;
        }
        let events = std::mem::take(&mut state.pending);
        state.stats.deltas_applied += events.len() as u64;
        let dirty = state
            .index
            .as_mut()
            .expect("index cached")
            .apply_delta(&events);
        state.dirty_log.push((state.epoch, dirty));
        if state.dirty_log.len() > DIRTY_LOG_CAP {
            let dropped = state.dirty_log.remove(0);
            state.log_floor = dropped.0;
        }
    }

    /// The dirty blocks accumulated after `epoch`, or `None` if the retained
    /// history does not reach back that far.
    fn dirty_since(state: &ServingState, epoch: u64) -> Option<Vec<&DirtyBlock>> {
        if epoch < state.log_floor {
            return None;
        }
        Some(
            state
                .dirty_log
                .iter()
                .filter(|(e, _)| *e > epoch)
                .flat_map(|(_, blocks)| blocks.iter())
                .collect(),
        )
    }

    /// Merges two row lists with disjoint, sorted group keys into one sorted
    /// list.
    fn merge_rows(kept: Vec<GroupRange>, fresh: Vec<GroupRange>) -> Vec<GroupRange> {
        let mut out = Vec::with_capacity(kept.len() + fresh.len());
        let mut kept = kept.into_iter().peekable();
        let mut fresh = fresh.into_iter().peekable();
        loop {
            match (kept.peek(), fresh.peek()) {
                (Some(a), Some(b)) => {
                    if a.key < b.key {
                        out.push(kept.next().expect("peeked"));
                    } else {
                        out.push(fresh.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.push(kept.next().expect("peeked")),
                (None, Some(_)) => out.push(fresh.next().expect("peeked")),
                (None, None) => break,
            }
        }
        out
    }

    /// The cache-aware execution path shared by [`Session::execute`] and
    /// [`Session::execute_many`]: statement lookup, index acquisition, then
    /// result hit / dirty-group patch / full pipeline, in that order.
    fn execute_locked(
        catalog: &Catalog,
        db: &DatabaseInstance,
        options: EngineOptions,
        state: &mut ServingState,
        sql: &str,
    ) -> Result<QueryOutcome, SessionError> {
        let stmt = Self::prepare_locked(catalog, db, options, state, sql)?;
        Self::acquire_index(db, state);
        let epoch = state.epoch;
        let entry = state
            .statements
            .get(stmt.sql())
            .expect("statement cached above");

        // Hot path: a current result answers without touching the engine (one
        // row clone, no re-store).
        let is_hit = matches!(&entry.result, Some((e, _)) if *e == epoch);
        if is_hit {
            let rows = entry.result.as_ref().expect("hit checked").1.clone();
            state.stats.result_hits += 1;
            return Ok(QueryOutcome {
                query: stmt.query.clone(),
                classification: stmt.classification.clone(),
                columns: stmt.columns.to_vec(),
                rows,
            });
        }
        // Stale or absent: move the old result out rather than cloning it —
        // it is either consumed by the patch path or discarded, and the slot
        // is unconditionally re-filled below. (On an evaluation error the
        // stale result is dropped; the next call simply recomputes in full.)
        let cached = state
            .statements
            .get_mut(stmt.sql())
            .expect("statement cached above")
            .result
            .take();

        enum Path {
            Patch,
            Full,
        }
        let (path, rows) = match cached {
            Some((e, rows)) => {
                // The result is stale; patch it if every delta since is
                // confined to blocks this statement can localise to groups.
                let patch_keys = Self::dirty_since(state, e).and_then(|dirty| {
                    let locality = stmt.locality()?;
                    dirty
                        .iter()
                        .map(|b| {
                            (b.relation == locality.relation).then(|| locality.project(&b.key))
                        })
                        .collect::<Option<BTreeSet<_>>>()
                });
                let index = state.index.as_ref().expect("index acquired");
                match patch_keys {
                    Some(keys) => {
                        let fresh = stmt.engine.range_for_groups(db, index, &keys)?;
                        let kept: Vec<GroupRange> = rows
                            .into_iter()
                            .filter(|r| !keys.contains(&r.key))
                            .collect();
                        (Path::Patch, Self::merge_rows(kept, fresh))
                    }
                    None => (Path::Full, stmt.engine.range_with_index(db, index)?),
                }
            }
            None => {
                let index = state.index.as_ref().expect("index acquired");
                (Path::Full, stmt.engine.range_with_index(db, index)?)
            }
        };
        match path {
            Path::Patch => state.stats.partial_recomputes += 1,
            Path::Full => state.stats.full_recomputes += 1,
        }
        state
            .statements
            .get_mut(stmt.sql())
            .expect("statement cached above")
            .result = Some((epoch, rows.clone()));
        Ok(QueryOutcome {
            query: stmt.query.clone(),
            classification: stmt.classification.clone(),
            columns: stmt.columns.to_vec(),
            rows,
        })
    }

    /// Executes a SQL aggregation query: classification plus one
    /// `[glb, lub]` interval per group. Statement, index, and (when current)
    /// result come from the session caches; answers are always identical to a
    /// cold session's.
    pub fn execute(&self, sql: &str) -> Result<QueryOutcome, SessionError> {
        let mut state = self.lock();
        Self::execute_locked(&self.catalog, &self.db, self.options, &mut state, sql)
    }

    /// Executes a batch of SQL queries under a single cache/lock/index
    /// acquisition, returning one outcome per statement in order. Fails on
    /// the first erroring statement.
    pub fn execute_many<S: AsRef<str>>(
        &self,
        sqls: impl IntoIterator<Item = S>,
    ) -> Result<Vec<QueryOutcome>, SessionError> {
        let mut state = self.lock();
        sqls.into_iter()
            .map(|sql| {
                Self::execute_locked(
                    &self.catalog,
                    &self.db,
                    self.options,
                    &mut state,
                    sql.as_ref(),
                )
            })
            .collect()
    }

    /// An `EXPLAIN`-style rendering of the physical plan [`Session::execute`]
    /// would run for this SQL query (served from the statement cache).
    pub fn explain(&self, sql: &str) -> Result<String, SessionError> {
        let stmt = self.prepare(sql)?;
        Ok(stmt.engine.explain(&self.db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_core::engine::Method;
    use rcqa_data::{fact, rat};
    use rcqa_query::TableDef;

    fn stock_session() -> Session {
        let catalog = Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            );
        let mut session = Session::new(catalog);
        session
            .insert_all([
                fact!("Dealers", "Smith", "Boston"),
                fact!("Dealers", "Smith", "New York"),
                fact!("Dealers", "James", "Boston"),
                fact!("Stock", "Tesla X", "Boston", 35),
                fact!("Stock", "Tesla X", "Boston", 40),
                fact!("Stock", "Tesla Y", "Boston", 35),
                fact!("Stock", "Tesla Y", "New York", 95),
                fact!("Stock", "Tesla Y", "New York", 96),
            ])
            .unwrap();
        session
    }

    #[test]
    fn grouped_sql_end_to_end() {
        let session = stock_session();
        let outcome = session
            .execute(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        assert_eq!(outcome.columns, vec!["Name".to_string(), "SUM".to_string()]);
        assert!(outcome.classification.attack_graph_acyclic);
        assert_eq!(outcome.rows.len(), 2);
        // Sorted group order: James before Smith.
        assert_eq!(outcome.rows[0].key[0].to_string(), "James");
        assert_eq!(outcome.rows[0].glb.unwrap().value, Some(rat(70)));
        assert_eq!(outcome.rows[0].lub.unwrap().value, Some(rat(75)));
        assert_eq!(outcome.rows[1].key[0].to_string(), "Smith");
        assert_eq!(outcome.rows[1].glb.unwrap().value, Some(rat(70)));
        assert_eq!(outcome.rows[1].lub.unwrap().value, Some(rat(96)));
        assert_eq!(outcome.rows[1].glb.unwrap().method, Method::Rewriting);
        let table = outcome.to_table();
        assert!(table.contains("James"), "{table}");
        assert!(table.contains("96"), "{table}");
    }

    #[test]
    fn session_respects_thread_option() {
        for threads in [1, 2, 8] {
            let session = stock_session().with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
            let outcome = session
                .execute(
                    "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                     WHERE D.Town = S.Town GROUP BY D.Name",
                )
                .unwrap();
            assert_eq!(outcome.rows.len(), 2);
            assert_eq!(outcome.rows[1].lub.unwrap().value, Some(rat(96)));
        }
    }

    #[test]
    fn explain_shows_the_physical_pipeline() {
        let session = stock_session();
        let plan = session
            .explain(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        for op in [
            "RangeMerge",
            "AggregateBound",
            "ForallCheck",
            "PartitionByGroup",
            "Join",
            "Scan",
        ] {
            assert!(plan.contains(op), "missing {op} in:\n{plan}");
        }
    }

    #[test]
    fn errors_are_reported() {
        let session = stock_session();
        assert!(matches!(
            session.execute("SELECT SUM(S.Qty) FROM Nope AS S"),
            Err(SessionError::Query(_))
        ));
        assert!(matches!(
            session.execute("not even sql"),
            Err(SessionError::Query(_))
        ));
        // Schema-violating fact.
        let mut session = stock_session();
        assert!(matches!(
            session.insert(fact!("Dealers", "only-one-arg")),
            Err(SessionError::Data(_))
        ));
    }

    #[test]
    fn normalization_collapses_whitespace_outside_literals() {
        assert_eq!(
            Session::normalize_sql("  SELECT   SUM(S.Qty)\n\tFROM Stock AS S ; "),
            "SELECT SUM(S.Qty) FROM Stock AS S"
        );
        // Literal interiors (and doubled-quote escapes) survive untouched.
        assert_eq!(
            Session::normalize_sql("SELECT  X FROM T WHERE A = 'New  York;' AND B = 'O''x  y'"),
            "SELECT X FROM T WHERE A = 'New  York;' AND B = 'O''x  y'"
        );
        // Only ONE trailing terminator is dropped; the parser rejects the
        // rest, so `…;;` normalizes to `…;` and still errors.
        assert_eq!(Session::normalize_sql("SELECT X;;"), "SELECT X;");
    }

    #[test]
    fn statement_cache_hits_by_normalized_sql() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let first = session.execute(sql).unwrap();
        // Re-spelled with different whitespace and a trailing terminator.
        let respelled = "  SELECT D.Name,   MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                         WHERE D.Town = S.Town GROUP BY D.Name ; ";
        let second = session.execute(respelled).unwrap();
        assert_eq!(first.rows, second.rows);
        let stats = session.stats();
        assert_eq!(stats.statements_prepared, 1);
        assert_eq!(stats.statement_hits, 1);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.index_builds, 1);
        // prepare() exposes the cached statement.
        let stmt = session.prepare(sql).unwrap();
        assert_eq!(stmt.columns(), ["Name", "MAX"]);
        assert!(stmt.locality().is_some());
        assert_eq!(stmt.sql(), Session::normalize_sql(respelled));
    }

    #[test]
    fn mutations_invalidate_results_and_patch_dirty_groups() {
        let mut session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let before = session.execute(sql).unwrap();
        assert_eq!(before.rows.len(), 2);

        // A third dealer appears: the query must see it immediately.
        session
            .insert(fact!("Dealers", "Lopez", "New York"))
            .unwrap();
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows.len(), 3);
        assert_eq!(after.rows[1].key[0].to_string(), "Lopez");
        assert_eq!(after.rows[1].lub.unwrap().value, Some(rat(96)));
        // Untouched groups kept their rows; only the new group was computed.
        assert_eq!(after.rows[0], before.rows[0]);
        assert_eq!(after.rows[2], before.rows[1]);
        let stats = session.stats();
        assert_eq!(stats.partial_recomputes, 1);
        assert_eq!(stats.index_builds, 1, "the delta path must not rebuild");

        // Deleting the dealer again restores the original answer — and the
        // whole exchange must agree with a cold session at 1 and 4 threads.
        assert!(session.delete(&fact!("Dealers", "Lopez", "New York")));
        let restored = session.execute(sql).unwrap();
        assert_eq!(restored.rows, before.rows);
        for threads in [1, 4] {
            let cold =
                Session::with_instance(session.catalog().clone(), session.database().clone())
                    .with_options(EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    });
            assert_eq!(cold.execute(sql).unwrap().rows, restored.rows);
        }
    }

    #[test]
    fn non_local_mutations_fall_back_to_full_recompute() {
        let mut session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        session.execute(sql).unwrap();
        // Stock is not the statement's locality relation (Dealers is), so
        // this delta forces a full recompute — with the correct new answer.
        session
            .insert(fact!("Stock", "Tesla Z", "Boston", 500))
            .unwrap();
        let after = session.execute(sql).unwrap();
        assert_eq!(after.rows[0].lub.unwrap().value, Some(rat(500)));
        let stats = session.stats();
        assert_eq!(stats.partial_recomputes, 0);
        assert_eq!(stats.full_recomputes, 2);
        assert_eq!(stats.index_builds, 1);
    }

    #[test]
    fn execute_many_amortises_one_acquisition() {
        let session = stock_session();
        let sqls = [
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
            "SELECT D.Name, MIN(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
            // Repeat of the first: a result hit inside the batch.
            "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
        ];
        let outcomes = session.execute_many(sqls).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].rows, outcomes[2].rows);
        let stats = session.stats();
        assert_eq!(stats.statements_prepared, 2);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.index_builds, 1);
        // An error anywhere surfaces as the batch error.
        assert!(session
            .execute_many(["SELECT SUM(S.Qty) FROM Nope AS S"])
            .is_err());
    }

    #[test]
    fn clone_and_with_options_keep_answers_identical() {
        let session = stock_session();
        let sql = "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Name";
        let warm = session.execute(sql).unwrap();
        // A clone carries the caches along.
        let cloned = session.clone();
        assert_eq!(cloned.execute(sql).unwrap().rows, warm.rows);
        assert_eq!(cloned.stats().result_hits, 1);
        // with_options invalidates statements (they embed options) but keeps
        // the index.
        let reopt = session.with_options(EngineOptions {
            threads: 2,
            ..EngineOptions::default()
        });
        assert_eq!(reopt.execute(sql).unwrap().rows, warm.rows);
        let stats = reopt.stats();
        assert_eq!(stats.statements_prepared, 2, "statement cache was cleared");
        assert_eq!(stats.index_builds, 1, "index survives re-option");
    }
}
