//! # rcqa-session
//!
//! The SQL session facade of the workspace: one object that owns a
//! named-column [`Catalog`], a [`DatabaseInstance`], and [`EngineOptions`],
//! and answers SQL strings with a [`Classification`] plus per-group
//! [`GroupRange`] intervals.
//!
//! Every consumer — the experiment harness, the examples, and the
//! integration tests — goes through this one path, so the SQL parser, the
//! logical/physical planner, and the (parallel) plan executor are exercised
//! together end to end:
//!
//! ```text
//! SQL string
//!   └─ parse_sql (catalog-driven)        rcqa-query
//!      └─ classify_with_domain           rcqa-core::classify
//!      └─ LogicalPlan → PhysicalPlan     rcqa-core::plan
//!         └─ execute (worker pool)       rcqa-core::plan::exec
//!            └─ Vec<GroupRange>          range-consistent answers
//! ```
//!
//! ## Quick example
//!
//! ```
//! use rcqa_data::fact;
//! use rcqa_query::{Catalog, TableDef};
//! use rcqa_session::Session;
//!
//! let catalog = Catalog::new()
//!     .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
//!     .with_table(
//!         TableDef::new("Stock")
//!             .key_column("Product")
//!             .key_column("Town")
//!             .numeric_column("Qty"),
//!     );
//! let mut session = Session::new(catalog);
//! session
//!     .insert_all([
//!         fact!("Dealers", "Smith", "Boston"),
//!         fact!("Dealers", "Smith", "New York"),
//!         fact!("Stock", "Tesla X", "Boston", 35),
//!         fact!("Stock", "Tesla Y", "New York", 95),
//!     ])
//!     .unwrap();
//! let outcome = session
//!     .execute(
//!         "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
//!          WHERE D.Town = S.Town AND D.Name = 'Smith'",
//!     )
//!     .unwrap();
//! assert_eq!(outcome.rows.len(), 1);
//! assert!(outcome.classification.attack_graph_acyclic);
//! ```

#![warn(missing_docs)]

use rcqa_core::classify::Classification;
use rcqa_core::engine::{EngineOptions, GroupRange, RangeCqa};
use rcqa_core::CoreError;
use rcqa_data::{DataError, DatabaseInstance, Fact, Rational};
use rcqa_query::{parse_sql, AggQuery, Catalog, QueryError};
use std::fmt;

/// Errors raised by a [`Session`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// SQL parsing / translation failed.
    Query(QueryError),
    /// The engine rejected or failed to evaluate the query.
    Core(CoreError),
    /// A fact violated the catalog's schema.
    Data(DataError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Query(e) => write!(f, "SQL error: {e}"),
            SessionError::Core(e) => write!(f, "engine error: {e}"),
            SessionError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<QueryError> for SessionError {
    fn from(e: QueryError) -> SessionError {
        SessionError::Query(e)
    }
}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> SessionError {
        SessionError::Core(e)
    }
}

impl From<DataError> for SessionError {
    fn from(e: DataError) -> SessionError {
        SessionError::Data(e)
    }
}

/// The result of executing one SQL query in a session.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The translated AGGR\[sjfBCQ\] query.
    pub query: AggQuery,
    /// The rewriting/complexity classification of the query over the
    /// session instance's numeric domain.
    pub classification: Classification,
    /// Output column names: one per GROUP BY column, then the aggregate.
    pub columns: Vec<String>,
    /// One `[glb, lub]` interval per group, in sorted group-key order.
    pub rows: Vec<GroupRange>,
}

fn fmt_bound(v: Option<Rational>) -> String {
    match v {
        Some(r) => r.to_string(),
        None => "⊥".to_string(),
    }
}

impl QueryOutcome {
    /// Renders the answer as a plain-text table (group key columns, then
    /// `glb` and `lub`), for reports and examples.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let key_cols = self.columns.len().saturating_sub(1);
        for c in &self.columns[..key_cols] {
            out.push_str(&format!("{c:<14} "));
        }
        out.push_str(&format!("{:>12} {:>12}\n", "glb", "lub"));
        for row in &self.rows {
            for value in &row.key {
                out.push_str(&format!("{:<14} ", value.to_string()));
            }
            let bound = |b: &Option<rcqa_core::engine::BoundAnswer>| {
                b.as_ref()
                    .map(|b| fmt_bound(b.value))
                    .unwrap_or_else(|| "-".to_string())
            };
            out.push_str(&format!(
                "{:>12} {:>12}\n",
                bound(&row.glb),
                bound(&row.lub)
            ));
        }
        out
    }
}

/// A SQL session: a catalog, a database instance, and engine options.
#[derive(Clone, Debug)]
pub struct Session {
    catalog: Catalog,
    db: DatabaseInstance,
    options: EngineOptions,
}

impl Session {
    /// Opens a session over an empty instance of the catalog's schema.
    pub fn new(catalog: Catalog) -> Session {
        let db = DatabaseInstance::new(catalog.schema());
        Session {
            catalog,
            db,
            options: EngineOptions::default(),
        }
    }

    /// Opens a session over an existing instance (whose schema should be the
    /// catalog's lowering).
    pub fn with_instance(catalog: Catalog, db: DatabaseInstance) -> Session {
        Session {
            catalog,
            db,
            options: EngineOptions::default(),
        }
    }

    /// Overrides the engine options (exact-fallback policy, repair budget,
    /// executor worker count).
    pub fn with_options(mut self, options: EngineOptions) -> Session {
        self.options = options;
        self
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's database instance.
    pub fn database(&self) -> &DatabaseInstance {
        &self.db
    }

    /// The session's engine options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Inserts one fact. Returns `true` if the fact was new.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, SessionError> {
        Ok(self.db.insert(fact)?)
    }

    /// Inserts many facts.
    pub fn insert_all(
        &mut self,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<(), SessionError> {
        Ok(self.db.insert_all(facts)?)
    }

    /// Parses a SQL aggregation query and prepares its engine, without
    /// executing it.
    fn prepare(&self, sql: &str) -> Result<(AggQuery, Vec<String>, RangeCqa), SessionError> {
        let translated = parse_sql(sql, &self.catalog)?;
        let engine =
            RangeCqa::new(&translated.query, &self.catalog.schema())?.with_options(self.options);
        Ok((translated.query, translated.output_columns, engine))
    }

    /// Executes a SQL aggregation query: classification plus one
    /// `[glb, lub]` interval per group.
    pub fn execute(&self, sql: &str) -> Result<QueryOutcome, SessionError> {
        let (query, columns, engine) = self.prepare(sql)?;
        // Classification reuses the engine's prepared query (attack graph
        // included) — the SQL hot path prepares exactly once.
        let classification = engine.classification(self.db.numeric_domain());
        let rows = engine.range(&self.db)?;
        Ok(QueryOutcome {
            query,
            classification,
            columns,
            rows,
        })
    }

    /// An `EXPLAIN`-style rendering of the physical plan [`Session::execute`]
    /// would run for this SQL query.
    pub fn explain(&self, sql: &str) -> Result<String, SessionError> {
        let (_, _, engine) = self.prepare(sql)?;
        Ok(engine.explain(&self.db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_core::engine::Method;
    use rcqa_data::{fact, rat};
    use rcqa_query::TableDef;

    fn stock_session() -> Session {
        let catalog = Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            );
        let mut session = Session::new(catalog);
        session
            .insert_all([
                fact!("Dealers", "Smith", "Boston"),
                fact!("Dealers", "Smith", "New York"),
                fact!("Dealers", "James", "Boston"),
                fact!("Stock", "Tesla X", "Boston", 35),
                fact!("Stock", "Tesla X", "Boston", 40),
                fact!("Stock", "Tesla Y", "Boston", 35),
                fact!("Stock", "Tesla Y", "New York", 95),
                fact!("Stock", "Tesla Y", "New York", 96),
            ])
            .unwrap();
        session
    }

    #[test]
    fn grouped_sql_end_to_end() {
        let session = stock_session();
        let outcome = session
            .execute(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        assert_eq!(outcome.columns, vec!["Name".to_string(), "SUM".to_string()]);
        assert!(outcome.classification.attack_graph_acyclic);
        assert_eq!(outcome.rows.len(), 2);
        // Sorted group order: James before Smith.
        assert_eq!(outcome.rows[0].key[0].to_string(), "James");
        assert_eq!(outcome.rows[0].glb.unwrap().value, Some(rat(70)));
        assert_eq!(outcome.rows[0].lub.unwrap().value, Some(rat(75)));
        assert_eq!(outcome.rows[1].key[0].to_string(), "Smith");
        assert_eq!(outcome.rows[1].glb.unwrap().value, Some(rat(70)));
        assert_eq!(outcome.rows[1].lub.unwrap().value, Some(rat(96)));
        assert_eq!(outcome.rows[1].glb.unwrap().method, Method::Rewriting);
        let table = outcome.to_table();
        assert!(table.contains("James"), "{table}");
        assert!(table.contains("96"), "{table}");
    }

    #[test]
    fn session_respects_thread_option() {
        for threads in [1, 2, 8] {
            let session = stock_session().with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
            let outcome = session
                .execute(
                    "SELECT D.Name, MAX(S.Qty) FROM Dealers AS D, Stock AS S \
                     WHERE D.Town = S.Town GROUP BY D.Name",
                )
                .unwrap();
            assert_eq!(outcome.rows.len(), 2);
            assert_eq!(outcome.rows[1].lub.unwrap().value, Some(rat(96)));
        }
    }

    #[test]
    fn explain_shows_the_physical_pipeline() {
        let session = stock_session();
        let plan = session
            .explain(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        for op in [
            "RangeMerge",
            "AggregateBound",
            "ForallCheck",
            "PartitionByGroup",
            "Join",
            "Scan",
        ] {
            assert!(plan.contains(op), "missing {op} in:\n{plan}");
        }
    }

    #[test]
    fn errors_are_reported() {
        let session = stock_session();
        assert!(matches!(
            session.execute("SELECT SUM(S.Qty) FROM Nope AS S"),
            Err(SessionError::Query(_))
        ));
        assert!(matches!(
            session.execute("not even sql"),
            Err(SessionError::Query(_))
        ));
        // Schema-violating fact.
        let mut session = stock_session();
        assert!(matches!(
            session.insert(fact!("Dealers", "only-one-arg")),
            Err(SessionError::Data(_))
        ));
    }
}
