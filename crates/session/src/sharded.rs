//! A sharded serving front-end: N inner [`Session`] shards behind one
//! session-shaped API, with deterministic fan-out/merge reads and
//! group-commit batched writes.
//!
//! ## Partitioning rule
//!
//! Every fact is routed by a stable FNV-1a hash of its **level-0 block
//! key** — the relation name plus the fact's primary-key prefix
//! ([`Fact::key`]) — modulo the shard count. The block is the unit of repair
//! choice (a repair picks exactly one fact per block), so this rule keeps
//! each block, and with it each repair decision, entirely inside one shard:
//! shard-local repairs compose into exactly the global repairs and nothing
//! else. Per-shard instances are built the same way as the unsharded
//! instance ([`DatabaseInstance::new`]), so the numeric domain — and
//! therefore the classification and the chosen plan — is identical on every
//! shard and on the mirror.
//!
//! ## Read routing and the correctness argument
//!
//! A prepared statement carries the [`RowSupport`] of its rows (see
//! `rcqa_core::plan::exec`): instantiating the support's atom patterns with
//! a row's group key over-approximates every `(relation, block key)` pair
//! that row's evaluation may consult, and — the soundness property the
//! differential maintenance layer already relies on — **a row is a function
//! of its covered blocks alone**: births, deaths, and values are all
//! unchanged by edits to (or absence of) any uncovered block. Routes are
//! certificates over that support:
//!
//! * **Fan-out** — the support is a single atom whose key slots are all
//!   `Const` or `Group` (with at least one `Group`). Each row's instantiated
//!   pattern then names exactly one block, which the routing hash places on
//!   exactly one shard. Evaluating the statement on a shard equals
//!   evaluating it on the global instance with every other shard's blocks
//!   deleted — deletions that, by the support property, cannot affect any
//!   row whose block lives here, and cannot *produce* a row whose block
//!   lives elsewhere. Per-shard row sets are therefore disjoint, globally
//!   correct, and their union is the global raw row set. Raw rows are
//!   emitted in group-key **value order** (`sorted_groups` orders by
//!   `ValueInterner::cmp_id_tuples`, which is materialised [`Value`] order),
//!   so a k-way merge by `Vec<Value>` order reproduces the global row order
//!   byte-for-byte. Post-processing that is *per-row* (the HAVING
//!   trichotomy over each group's `[glb, lub]`) would be safe per shard,
//!   but certain top-k and ORDER BY/LIMIT compare rows **across** shards —
//!   so the front-end merges first and re-runs the statement's full
//!   post-processing ([`Session::post_process`], built on the `interval`
//!   primitives) over the merged rows, exactly as the unsharded session
//!   does.
//! * **Designated shard** — every key slot of the single support atom is
//!   `Const`: all blocks the statement can ever consult live on one
//!   computable shard, so that shard's answer *is* the global answer
//!   (again: all other shards' blocks are uncovered). Statements with a
//!   contradictory WHERE clause are answered statically and data-
//!   independently, so they are designated to shard 0.
//! * **Cross-shard combine** — everything else: exhaustive supports (the
//!   exact-enumeration fallback inspects whole-instance repairs), joins
//!   (two or more support atoms: the same group key hashes to different
//!   shards under different relation names), and patterns with an `Any`
//!   slot (one row may consult blocks on several shards). These are
//!   answered **honestly, never silently wrong**, on the *mirror*: a full
//!   in-memory unsharded [`Session`] that the front-end keeps at the shards'
//!   union state by replaying every effective event. The mirror answer is
//!   the unsharded answer by definition.
//!
//! Merged outcomes are re-stamped with the front-end's global epoch (the
//! number of effective operations applied since open, which equals the sum
//! of the shard epochs) and with the number of shards consulted
//! ([`QueryOutcome::shards`]).
//!
//! ## Write path: group commit
//!
//! [`ShardedSession::insert`] / [`ShardedSession::delete`] enqueue the event
//! on its shard's commit coordinator and then contend for that shard's
//! leader lock. Whoever wins drains the whole queue, commits it through
//! [`Session::apply_batch`] — one snapshot publish and at most one WAL
//! append for every event that piled up while the previous commit was in
//! flight — and distributes per-event results to the waiting submitters.
//! Under a durable shard with [`SyncPolicy::EveryN`], coalescing multiplies
//! directly into fewer fsyncs. Inserts are pre-validated individually
//! (schema and numeric domain are static), so one ill-typed event fails
//! alone without poisoning the batch it happened to share a leader with;
//! only a durability (I/O) failure fails a whole batch, and it fails every
//! submitter in it with the same error.
//!
//! [`ShardedSession::insert_all`] / [`ShardedSession::apply_batch`] span
//! shards: the batch is pre-validated in full (schema violations reject the
//! whole batch up front, matching the unsharded contract), split by routing,
//! and committed per shard under an exclusive *frontier* lock that readers
//! share — so no reader can pin a set of shard snapshots that contains one
//! slice of a cross-shard batch but not another. Each per-shard slice is
//! atomic on its shard and on its WAL; after a crash mid-batch, recovery is
//! honest about the remaining torn edge: a prefix of the per-shard slices
//! may be durable without the rest (per-shard WALs cannot promise more),
//! which the docs of [`ShardedSession::open`] spell out.
//!
//! ## Durability layout and recovery
//!
//! A durable front-end lays out `dir/SHARDS` (the shard count, refused on
//! mismatch — re-sharding a directory is not resharding the data) and one
//! WAL directory `dir/shard-NNN` per shard. [`ShardedSession::open`]
//! recovers every shard independently, **verifies the cross-shard frontier**
//! — every recovered fact must route to the shard that holds it — and
//! rebuilds the mirror from the recovered union.

use crate::{
    CachedResult, PreparedStatement, QueryOutcome, Session, SessionError, SessionOptions,
    SessionStats, Snapshot, WalOptions,
};
use rcqa_core::engine::{EngineOptions, GroupRange};
use rcqa_core::SupportSlot;
use rcqa_data::{codec, DatabaseInstance, DeltaEvent, DeltaOp, Fact, Value};
use rcqa_query::Catalog;
use rcqa_wal::WalError;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Same poisoning stance as the session: every piece of guarded state is
    // rebuildable or monotonic, so a panicked holder cannot leave it torn.
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The stable routing hash: FNV-1a over the relation name and the canonical
/// byte encoding ([`codec::encode_value`]) of each block-key value, with
/// separators so `("AB", ["C"])` and `("A", ["BC"])` cannot collide
/// structurally. Collisions only skew the *distribution* across shards,
/// never correctness — every fact of a block still lands on one shard.
fn shard_of(relation: &str, block_key: &[Value], shards: usize) -> usize {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = BASIS;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    };
    for byte in relation.bytes() {
        eat(byte);
    }
    eat(0xff);
    let mut buf = Vec::new();
    for value in block_key {
        buf.clear();
        codec::encode_value(value, &mut buf);
        for &byte in &buf {
            eat(byte);
        }
        eat(0xfe);
    }
    (hash % shards as u64) as usize
}

/// The read route certified by a statement's [`RowSupport`] — see the
/// module docs for why each route is answer-preserving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Route {
    /// Evaluate on every shard in parallel, merge raw rows by group key,
    /// re-run global post-processing.
    Fanout,
    /// Every block the statement can consult lives on this shard.
    Designated(usize),
    /// Evaluate on the synced mirror (support is not shard-local).
    Combine,
}

/// One waiting writer's slot in a group-commit batch.
struct Ticket {
    done: Mutex<Option<Result<bool, SessionError>>>,
}

/// Per-shard commit coordinator: submitters enqueue, then race for the
/// leader lock; the winner drains and commits the whole queue. There is no
/// condition variable — followers block on the leader lock itself, and a
/// follower whose ticket was fulfilled by the previous leader returns
/// without committing anything (the previous leader fulfilled every drained
/// ticket *before* releasing the lock the follower just acquired).
#[derive(Default)]
struct Coordinator {
    queue: Mutex<Vec<(DeltaEvent, Arc<Ticket>)>>,
    leader: Mutex<()>,
}

/// Route and coalescing counters of the front-end itself (the per-shard
/// [`SessionStats`] live in the shards).
#[derive(Default)]
struct FrontStats {
    fanout_queries: AtomicU64,
    designated_queries: AtomicU64,
    combine_queries: AtomicU64,
    group_commits: AtomicU64,
    group_commit_events: AtomicU64,
    mirror_syncs: AtomicU64,
    mirror_events: AtomicU64,
}

/// A consistent cut across the front-end: one pinned snapshot per shard,
/// the mirror pinned at the matching union state, and the global epoch —
/// taken while the frontier and every shard's leader lock were held, so no
/// write was mid-commit anywhere.
struct Pinned {
    snaps: Vec<Arc<Snapshot>>,
    mirror: Arc<Snapshot>,
    epoch: u64,
}

/// Aggregated observability of a [`ShardedSession`]: per-shard counters,
/// their field-wise total, the mirror's counters, the per-shard epoch
/// frontier, and the front-end's own route/coalescing counters.
#[derive(Clone, Debug)]
pub struct ShardedStats {
    /// Each shard's serving-layer counters, in shard order.
    pub shards: Vec<SessionStats>,
    /// Field-wise sum over `shards` — patch/miss behaviour stays observable
    /// under sharding through the same fields as a single session.
    pub totals: SessionStats,
    /// The mirror session's counters (cross-shard combines evaluate here;
    /// its `deltas_applied` counts replayed events).
    pub mirror: SessionStats,
    /// Each shard's epoch (effective operations committed to it). The
    /// front-end epoch is the sum of this vector.
    pub epoch_frontier: Vec<u64>,
    /// Grouped statements fanned out across every shard and merged.
    pub fanout_queries: u64,
    /// Statements answered entirely by one designated shard.
    pub designated_queries: u64,
    /// Statements answered by the cross-shard combine (mirror) route.
    pub combine_queries: u64,
    /// Leader-drained batches that coalesced more than one concurrent
    /// writer into a single shard commit.
    pub group_commits: u64,
    /// Events carried by those coalesced batches.
    pub group_commit_events: u64,
    /// Mirror catch-up rounds that replayed at least one pending event.
    pub mirror_syncs: u64,
    /// Events replayed into the mirror by those rounds.
    pub mirror_events: u64,
}

/// A partitioned serving front-end over N inner [`Session`] shards.
///
/// The API mirrors [`Session`] — insert/delete/insert_all, prepare/execute/
/// execute_many/explain, stats/epoch/sync — and every answer is
/// **byte-identical** to the same statement on one unsharded session holding
/// the same facts (`tests/session_sharded.rs` asserts this property across
/// random interleavings, shard counts, thread counts, and crash recovery).
/// See the [module docs](self) for the routing rule, the per-route
/// correctness argument, and the group-commit write path.
pub struct ShardedSession {
    shards: Vec<Session>,
    coordinators: Vec<Coordinator>,
    /// A full in-memory unsharded session kept at the shards' union state:
    /// statements prepare here (preparation is data-independent — schema
    /// and numeric domain are fixed at construction and identical
    /// everywhere), and cross-shard combine queries are answered here.
    mirror: Session,
    /// Effective events committed to shards but not yet replayed into the
    /// mirror. Pushed under the committing shard's leader lock (same-block
    /// events are therefore pushed in commit order; cross-shard events
    /// touch disjoint blocks and commute), drained under `mirror_sync`.
    mirror_pending: Mutex<Vec<DeltaEvent>>,
    /// Serialises mirror catch-up so concurrent readers replay the pending
    /// queue exactly once and in order.
    mirror_sync: Mutex<()>,
    /// Cross-shard write frontier: readers share it while pinning their
    /// per-shard snapshot set; a cross-shard batch holds it exclusively
    /// across all its per-shard commits, so no reader ever observes a torn
    /// slice of an atomic batch.
    frontier: RwLock<()>,
    /// Effective operations applied through this front-end (initialised to
    /// the sum of recovered shard epochs on open) — the global epoch every
    /// outcome is stamped with.
    ops_applied: AtomicU64,
    stats: FrontStats,
}

impl std::fmt::Debug for ShardedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &self.shards.len())
            .field("epoch", &self.epoch())
            .field("frontier", &self.epoch_frontier())
            .finish()
    }
}

impl ShardedSession {
    /// Opens an in-memory front-end of `shards` empty shards over the
    /// catalog's schema.
    ///
    /// # Panics
    /// With zero shards (there is nowhere to route anything).
    pub fn new(catalog: Catalog, shards: usize) -> ShardedSession {
        assert!(shards > 0, "a sharded session needs at least one shard");
        let sessions = (0..shards).map(|_| Session::new(catalog.clone())).collect();
        let mirror = Session::new(catalog);
        ShardedSession::assemble(sessions, mirror, 0)
    }

    fn assemble(shards: Vec<Session>, mirror: Session, ops: u64) -> ShardedSession {
        let coordinators = (0..shards.len()).map(|_| Coordinator::default()).collect();
        ShardedSession {
            shards,
            coordinators,
            mirror,
            mirror_pending: Mutex::new(Vec::new()),
            mirror_sync: Mutex::new(()),
            frontier: RwLock::new(()),
            ops_applied: AtomicU64::new(ops),
            stats: FrontStats::default(),
        }
    }

    /// Opens a **durable** front-end over `dir` with default [`WalOptions`]:
    /// one write-ahead-log directory per shard (`dir/shard-NNN`) plus a
    /// `SHARDS` manifest pinning the shard count. Every shard is recovered
    /// independently, the cross-shard frontier is verified (each recovered
    /// fact must route to the shard holding it — a fact on the wrong shard
    /// means the directory was produced under a different layout and
    /// answers could silently drop it), and the mirror is rebuilt from the
    /// recovered union. Opening an existing directory with a different
    /// shard count is refused as [`SessionError::Wal`].
    ///
    /// Durability granularity is per shard: a single-shard commit is atomic
    /// on its WAL, and a crash between the per-shard slices of a
    /// cross-shard [`ShardedSession::insert_all`] can leave a durable
    /// prefix of those slices without the rest. Readers never observe that
    /// torn state live (the frontier lock excludes them); it is only
    /// reachable through crash recovery, and each surviving slice is still
    /// a valid per-shard state.
    pub fn open(
        catalog: Catalog,
        dir: impl AsRef<Path>,
        shards: usize,
    ) -> Result<ShardedSession, SessionError> {
        ShardedSession::open_with(catalog, dir, shards, WalOptions::default())
    }

    /// [`ShardedSession::open`] with explicit [`WalOptions`], applied to
    /// every shard's log (fsync policy, checkpoint cadence, retention).
    pub fn open_with(
        catalog: Catalog,
        dir: impl AsRef<Path>,
        shards: usize,
        options: WalOptions,
    ) -> Result<ShardedSession, SessionError> {
        assert!(shards > 0, "a sharded session needs at least one shard");
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join("SHARDS");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let recorded: usize = text.trim().parse().map_err(|_| {
                    SessionError::Wal(WalError::Corrupt {
                        file: "SHARDS".to_string(),
                        offset: 0,
                        detail: format!("unreadable shard count {text:?}"),
                    })
                })?;
                if recorded != shards {
                    return Err(SessionError::Wal(WalError::Corrupt {
                        file: "SHARDS".to_string(),
                        offset: 0,
                        detail: format!(
                            "directory is laid out for {recorded} shards, opened with \
                             {shards}; re-sharding requires migrating the data, not \
                             reinterpreting the logs"
                        ),
                    }));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(&manifest, format!("{shards}\n"))?;
            }
            Err(e) => return Err(e.into()),
        }
        let sessions: Vec<Session> = (0..shards)
            .map(|i| {
                Session::open_with(catalog.clone(), dir.join(format!("shard-{i:03}")), options)
            })
            .collect::<Result<_, _>>()?;
        // Verify the cross-shard frontier: every recovered fact routes to
        // the shard that holds it. (Within each shard the WAL already
        // verified itself; this is the *cross*-shard invariant that makes
        // the recovered union a faithful re-partitioning.)
        for (i, session) in sessions.iter().enumerate() {
            let db = session.database();
            for fact in db.facts() {
                let home = route_fact(&catalog, fact, shards);
                if home != i {
                    return Err(SessionError::Wal(WalError::Corrupt {
                        file: format!("shard-{i:03}"),
                        offset: 0,
                        detail: format!(
                            "recovered fact {fact} routes to shard {home}, not {i}: the \
                             directory was written under a different routing layout"
                        ),
                    }));
                }
            }
        }
        // Rebuild the mirror at the recovered union. Shards hold disjoint
        // facts (each fact lives only on its routed shard, just verified),
        // so plain insertion cannot conflict.
        let mut union = DatabaseInstance::new(catalog.schema());
        for session in &sessions {
            let db = session.database();
            for fact in db.facts() {
                union.insert(fact.clone())?;
            }
        }
        let mirror = Session::with_instance(catalog, union);
        let ops = sessions.iter().map(|s| s.epoch()).sum();
        Ok(ShardedSession::assemble(sessions, mirror, ops))
    }

    /// Overrides the engine options on every shard and on the mirror —
    /// identical options everywhere keep per-shard plans identical to the
    /// global plan (the byte-identity argument needs nothing more than the
    /// support property, but identical plans keep `explain` honest too).
    pub fn with_options(mut self, options: EngineOptions) -> ShardedSession {
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| s.with_options(options))
            .collect();
        // The mirror never carries a WAL, so a clone is an exact replica.
        self.mirror = self.mirror.clone().with_options(options);
        self
    }

    /// Overrides the serving-layer options (dirty-log retention, statement
    /// cache capacity) on every shard and on the mirror.
    pub fn with_session_options(mut self, options: SessionOptions) -> ShardedSession {
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| s.with_session_options(options))
            .collect();
        self.mirror = self.mirror.clone().with_session_options(options);
        self
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The front-end's catalog.
    pub fn catalog(&self) -> &Catalog {
        self.mirror.catalog()
    }

    /// The global epoch: effective operations applied through this
    /// front-end since (or before, via recovery) it opened. Equals the sum
    /// of [`ShardedSession::epoch_frontier`] whenever no commit is in
    /// flight.
    pub fn epoch(&self) -> u64 {
        self.ops_applied.load(Ordering::Relaxed)
    }

    /// The per-shard epoch frontier: each shard's effective-operation
    /// count, in shard order.
    pub fn epoch_frontier(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Whether the shards persist commits to write-ahead logs.
    pub fn is_durable(&self) -> bool {
        self.shards.iter().any(|s| s.is_durable())
    }

    /// The per-shard durable frontier (each shard's last fsync-covered
    /// epoch), or `None` for an in-memory front-end.
    pub fn durable_frontier(&self) -> Option<Vec<u64>> {
        self.shards.iter().map(|s| s.durable_epoch()).collect()
    }

    /// Forces an fsync of every shard's write-ahead log.
    pub fn sync(&self) -> Result<(), SessionError> {
        for shard in &self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Aggregated counters: per shard, their total, the mirror, the epoch
    /// frontier, and the front-end's route/coalescing counters.
    pub fn stats(&self) -> ShardedStats {
        let shards: Vec<SessionStats> = self.shards.iter().map(|s| s.stats()).collect();
        let totals = shards
            .iter()
            .fold(SessionStats::default(), |acc, s| acc.merge(*s));
        ShardedStats {
            shards,
            totals,
            mirror: self.mirror.stats(),
            epoch_frontier: self.epoch_frontier(),
            fanout_queries: self.stats.fanout_queries.load(Ordering::Relaxed),
            designated_queries: self.stats.designated_queries.load(Ordering::Relaxed),
            combine_queries: self.stats.combine_queries.load(Ordering::Relaxed),
            group_commits: self.stats.group_commits.load(Ordering::Relaxed),
            group_commit_events: self.stats.group_commit_events.load(Ordering::Relaxed),
            mirror_syncs: self.stats.mirror_syncs.load(Ordering::Relaxed),
            mirror_events: self.stats.mirror_events.load(Ordering::Relaxed),
        }
    }

    /// The union instance across all shards, at a consistent cut.
    pub fn database(&self) -> Result<Arc<DatabaseInstance>, SessionError> {
        Ok(self.pin()?.mirror.db.clone())
    }

    /// The shard a fact routes to.
    pub fn shard_for(&self, fact: &Fact) -> usize {
        route_fact(self.catalog(), fact, self.shards.len())
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Inserts one fact through its shard's group-commit coordinator.
    /// Returns `true` if the fact was new. Concurrent writers to the same
    /// shard coalesce into one commit (one snapshot publish, one WAL
    /// append) — see the module docs.
    pub fn insert(&self, fact: Fact) -> Result<bool, SessionError> {
        self.submit(DeltaEvent::insert(fact))
    }

    /// Deletes one fact through its shard's group-commit coordinator.
    /// Returns `true` if it was present.
    pub fn delete(&self, fact: &Fact) -> Result<bool, SessionError> {
        self.submit(DeltaEvent::delete(fact.clone()))
    }

    /// Inserts many facts as one cross-shard batch: the whole batch is
    /// validated up front (a schema violation rejects everything, matching
    /// [`Session::insert_all`]), then each shard's slice commits atomically
    /// under the exclusive frontier lock, so readers observe all slices or
    /// none.
    pub fn insert_all(&self, facts: impl IntoIterator<Item = Fact>) -> Result<(), SessionError> {
        let events: Vec<DeltaEvent> = facts.into_iter().map(DeltaEvent::insert).collect();
        self.apply_batch(&events).map(drop)
    }

    /// Applies a batch of change events across shards, returning one
    /// effectiveness flag per event in order. Validation is all-or-nothing;
    /// durability failures mid-batch are reported as errors after earlier
    /// shards' slices committed (per-shard WALs cannot promise cross-shard
    /// atomicity through a crash — see [`ShardedSession::open`]).
    pub fn apply_batch(&self, events: &[DeltaEvent]) -> Result<Vec<bool>, SessionError> {
        // Pre-validate the whole batch against the (static) schema and
        // numeric domain so rejection is atomic, before any shard commits.
        let schema_db = self.shards[0].database();
        for event in events {
            if event.op == DeltaOp::Insert {
                schema_db.validate(&event.fact)?;
            }
        }
        let mut slices: Vec<Vec<(usize, DeltaEvent)>> = vec![Vec::new(); self.shards.len()];
        for (position, event) in events.iter().enumerate() {
            slices[self.shard_for(&event.fact)].push((position, event.clone()));
        }
        let mut flags = vec![false; events.len()];
        let _frontier = self.frontier.write().unwrap_or_else(|e| e.into_inner());
        for (shard, slice) in slices.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            // Leader lock per shard: group-commit leaders push their mirror
            // events under it, so holding it here keeps the pending queue's
            // same-block ordering intact.
            let _leader = lock(&self.coordinators[shard].leader);
            let shard_events: Vec<DeltaEvent> = slice.iter().map(|(_, e)| e.clone()).collect();
            let shard_flags = self.shards[shard].apply_batch(&shard_events)?;
            let mut pending = lock(&self.mirror_pending);
            let mut effective = 0;
            for ((position, event), flag) in slice.iter().zip(&shard_flags) {
                flags[*position] = *flag;
                if *flag {
                    pending.push(event.clone());
                    effective += 1;
                }
            }
            drop(pending);
            self.ops_applied.fetch_add(effective, Ordering::Relaxed);
        }
        Ok(flags)
    }

    /// Enqueues one event on its shard's coordinator and waits for a leader
    /// (possibly this caller) to commit it.
    fn submit(&self, event: DeltaEvent) -> Result<bool, SessionError> {
        let shard = self.shard_for(&event.fact);
        let ticket = Arc::new(Ticket {
            done: Mutex::new(None),
        });
        lock(&self.coordinators[shard].queue).push((event, ticket.clone()));
        let _leader = lock(&self.coordinators[shard].leader);
        // Fulfilled while we waited: the previous leader drained our event
        // and filled the ticket before releasing the lock we now hold.
        if let Some(result) = lock(&ticket.done).take() {
            return result;
        }
        // We are the leader; our event is still queued (an unfulfilled
        // ticket cannot have been drained — leaders fulfil every drained
        // ticket before releasing the lock).
        let batch = std::mem::take(&mut *lock(&self.coordinators[shard].queue));
        self.commit_group(shard, batch);
        let result = lock(&ticket.done)
            .take()
            .expect("the leader fulfilled every drained ticket, its own included");
        result
    }

    /// Commits one leader-drained batch to `shard` (leader lock held by the
    /// caller). Inserts are pre-validated individually so an ill-typed
    /// event fails its own submitter without failing the batch; only
    /// durability failures fan the same error out to every valid submitter.
    fn commit_group(&self, shard: usize, batch: Vec<(DeltaEvent, Arc<Ticket>)>) {
        let schema_db = self.shards[shard].database();
        let mut valid: Vec<(DeltaEvent, Arc<Ticket>)> = Vec::with_capacity(batch.len());
        for (event, ticket) in batch {
            if event.op == DeltaOp::Insert {
                if let Err(error) = schema_db.validate(&event.fact) {
                    *lock(&ticket.done) = Some(Err(SessionError::Data(error)));
                    continue;
                }
            }
            valid.push((event, ticket));
        }
        if valid.is_empty() {
            return;
        }
        let events: Vec<DeltaEvent> = valid.iter().map(|(e, _)| e.clone()).collect();
        match self.shards[shard].apply_batch(&events) {
            Ok(shard_flags) => {
                let mut pending = lock(&self.mirror_pending);
                let mut effective = 0;
                for ((event, ticket), flag) in valid.iter().zip(&shard_flags) {
                    if *flag {
                        pending.push(event.clone());
                        effective += 1;
                    }
                    *lock(&ticket.done) = Some(Ok(*flag));
                }
                drop(pending);
                self.ops_applied.fetch_add(effective, Ordering::Relaxed);
                if events.len() > 1 {
                    bump(&self.stats.group_commits);
                    self.stats
                        .group_commit_events
                        .fetch_add(events.len() as u64, Ordering::Relaxed);
                }
            }
            Err(error) => {
                for (_, ticket) in &valid {
                    *lock(&ticket.done) = Some(Err(error.clone()));
                }
            }
        }
    }

    /// Replays every pending effective event into the mirror. Serialised so
    /// concurrent readers drain the queue exactly once, in push order.
    fn sync_mirror(&self) -> Result<(), SessionError> {
        let _sync = lock(&self.mirror_sync);
        let drained = std::mem::take(&mut *lock(&self.mirror_pending));
        if drained.is_empty() {
            return Ok(());
        }
        self.mirror.apply_batch(&drained)?;
        bump(&self.stats.mirror_syncs);
        self.stats
            .mirror_events
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Takes a consistent cut: with the frontier shared and every shard's
    /// leader lock held, no write is between its shard commit and its
    /// mirror-pending push, so after draining the queue the mirror equals
    /// the union of the pinned shard snapshots exactly. Lock order is
    /// frontier → leaders (ascending) → mirror machinery, the same order
    /// [`ShardedSession::apply_batch`] uses — no cycles.
    fn pin(&self) -> Result<Pinned, SessionError> {
        let _frontier = self.frontier.read().unwrap_or_else(|e| e.into_inner());
        let _leaders: Vec<MutexGuard<'_, ()>> =
            self.coordinators.iter().map(|c| lock(&c.leader)).collect();
        self.sync_mirror()?;
        Ok(Pinned {
            snaps: self.shards.iter().map(|s| s.snapshot()).collect(),
            mirror: self.mirror.snapshot(),
            epoch: self.ops_applied.load(Ordering::Relaxed),
        })
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Parses, classifies, and plans a SQL statement (on the mirror, whose
    /// schema and numeric domain — and therefore preparation — are
    /// identical to every shard's).
    pub fn prepare(&self, sql: &str) -> Result<Arc<PreparedStatement>, SessionError> {
        self.mirror.prepare(sql)
    }

    /// Executes a SQL aggregation query across the shards. The answer —
    /// rows, order, classification, HAVING statuses — is byte-identical to
    /// [`Session::execute`] on one unsharded session holding the same
    /// facts; [`QueryOutcome::shards`] reports how many shards the route
    /// consulted and [`QueryOutcome::epoch`] carries the front-end's global
    /// epoch.
    pub fn execute(&self, sql: &str) -> Result<QueryOutcome, SessionError> {
        let pinned = self.pin()?;
        self.execute_pinned(&pinned, sql)
    }

    /// Executes a batch of SQL queries against **one** consistent cut:
    /// outcomes are mutually consistent even while writers commit
    /// concurrently, whatever mix of routes the statements take.
    pub fn execute_many<S: AsRef<str>>(
        &self,
        sqls: impl IntoIterator<Item = S>,
    ) -> Result<Vec<QueryOutcome>, SessionError> {
        let pinned = self.pin()?;
        sqls.into_iter()
            .map(|sql| self.execute_pinned(&pinned, sql.as_ref()))
            .collect()
    }

    fn execute_pinned(&self, pinned: &Pinned, sql: &str) -> Result<QueryOutcome, SessionError> {
        let stmt = self.mirror.prepare(sql)?;
        match self.route(&stmt) {
            Route::Fanout => {
                bump(&self.stats.fanout_queries);
                self.execute_fanout(pinned, &stmt)
            }
            Route::Designated(shard) => {
                bump(&self.stats.designated_queries);
                let (shard_stmt, result) =
                    self.shards[shard].fetch_result_at(&pinned.snaps[shard], stmt.sql())?;
                // `outcome` stamps `shards: 1` — exactly right here.
                Ok(Session::outcome(&shard_stmt, result.rows, pinned.epoch))
            }
            Route::Combine => {
                bump(&self.stats.combine_queries);
                let mut out = self.mirror.execute_at(&pinned.mirror, stmt.sql())?;
                out.epoch = pinned.epoch;
                out.shards = self.shards.len();
                Ok(out)
            }
        }
    }

    /// The fan-out read: evaluate on every shard (in parallel per
    /// [`EngineOptions::threads`] conventions), k-way merge the disjoint
    /// per-aggregate raw rows by group key, and re-run the statement's
    /// global post-processing over the merged set.
    fn execute_fanout(
        &self,
        pinned: &Pinned,
        stmt: &PreparedStatement,
    ) -> Result<QueryOutcome, SessionError> {
        let sql = stmt.sql();
        let workers = self.mirror.options().resolve_threads();
        let fetched: Vec<Result<(Arc<PreparedStatement>, CachedResult), SessionError>> =
            if self.shards.len() > 1 && workers > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter()
                        .zip(&pinned.snaps)
                        .map(|(shard, snap)| scope.spawn(move || shard.fetch_result_at(snap, sql)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard evaluation panicked"))
                        .collect()
                })
            } else {
                self.shards
                    .iter()
                    .zip(&pinned.snaps)
                    .map(|(shard, snap)| shard.fetch_result_at(snap, sql))
                    .collect()
            };
        let mut parts: Vec<CachedResult> = Vec::with_capacity(fetched.len());
        for result in fetched {
            parts.push(result?.1);
        }
        let aggregates = parts[0].raw.len();
        let merged: Vec<Vec<GroupRange>> = (0..aggregates)
            .map(|agg| {
                let lists: Vec<&[GroupRange]> =
                    parts.iter().map(|part| part.raw[agg].as_slice()).collect();
                merge_by_key(&lists)
            })
            .collect();
        let rows = Session::post_process(stmt, &merged);
        let mut out = Session::outcome(stmt, rows, pinned.epoch);
        out.shards = self.shards.len();
        Ok(out)
    }

    /// An `EXPLAIN`-style rendering: the chosen shard route, then the
    /// mirror's plan rendering (identical to every shard's — same options,
    /// same schema, same domain).
    pub fn explain(&self, sql: &str) -> Result<String, SessionError> {
        let stmt = self.mirror.prepare(sql)?;
        let route = match self.route(&stmt) {
            Route::Fanout => format!(
                "route: fan-out across {} shards — per-shard raw rows merge by group key; \
                 HAVING / ORDER BY / certain top-k re-decided globally over the merged set\n",
                self.shards.len()
            ),
            Route::Designated(shard) => format!(
                "route: designated shard {shard} — every block the statement can consult \
                 lives there\n"
            ),
            Route::Combine => format!(
                "route: cross-shard combine on the mirror ({} shards synced) — the \
                 statement's support is not shard-local\n",
                self.shards.len()
            ),
        };
        Ok(format!("{route}{}", self.mirror.explain(sql)?))
    }

    /// The read route certified by the statement's support — see the module
    /// docs for the per-route correctness argument.
    fn route(&self, stmt: &PreparedStatement) -> Route {
        if stmt.unsatisfiable {
            // Answered statically, identically on any shard.
            return Route::Designated(0);
        }
        let support = stmt.support();
        if support.is_exhaustive() {
            return Route::Combine;
        }
        let [atom] = support.atoms() else {
            // Joins: the same group key hashes to different shards under
            // different relation names, so no single shard sees every block
            // a row may consult.
            return Route::Combine;
        };
        if atom.key.iter().any(|slot| matches!(slot, SupportSlot::Any)) {
            return Route::Combine;
        }
        if atom
            .key
            .iter()
            .all(|slot| matches!(slot, SupportSlot::Const(_)))
        {
            let key: Vec<Value> = atom
                .key
                .iter()
                .map(|slot| match slot {
                    SupportSlot::Const(value) => value.clone(),
                    _ => unreachable!("all slots are Const"),
                })
                .collect();
            return Route::Designated(shard_of(&atom.relation, &key, self.shards.len()));
        }
        // A single atom, every slot Const or Group, at least one Group:
        // each row's blocks live on exactly one (row-determined) shard.
        Route::Fanout
    }
}

/// Routes a fact by its level-0 block key (relation + primary-key prefix).
fn route_fact(catalog: &Catalog, fact: &Fact, shards: usize) -> usize {
    // Facts are validated against the schema, whose relation names are the
    // catalog's — an unknown relation only reaches here through `delete` of
    // a never-insertable fact, which is a no-op on any shard.
    let key_len = catalog
        .table(fact.relation())
        .map(|t| t.key_len())
        .unwrap_or(0);
    let key = &fact.args()[..key_len.min(fact.args().len())];
    shard_of(fact.relation(), key, shards)
}

/// K-way merge of per-shard raw row lists. Each list is sorted by group-key
/// value order and the key sets are pairwise disjoint (each group's block
/// lives on one shard), so a plain smallest-head merge reproduces the
/// global sorted order with no tie to break.
fn merge_by_key(lists: &[&[GroupRange]]) -> Vec<GroupRange> {
    let mut cursors = vec![0usize; lists.len()];
    let total = lists.iter().map(|l| l.len()).sum();
    let mut out: Vec<GroupRange> = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, list) in lists.iter().enumerate() {
            if cursors[i] >= list.len() {
                continue;
            }
            best = match best {
                Some(b) if lists[b][cursors[b]].key <= list[cursors[i]].key => Some(b),
                _ => Some(i),
            };
        }
        let Some(i) = best else {
            return out;
        };
        out.push(lists[i][cursors[i]].clone());
        cursors[i] += 1;
    }
}

// The whole point: one front-end shared across reader and writer threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedSession>();
    assert_send_sync::<ShardedStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::fact;
    use rcqa_query::TableDef;

    fn catalog() -> Catalog {
        Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            )
    }

    fn seed(s: &ShardedSession) {
        s.insert_all([
            fact!("Dealers", "Smith", "Boston"),
            fact!("Dealers", "Smith", "New York"),
            fact!("Dealers", "Jones", "Chicago"),
            fact!("Stock", "Tesla X", "Boston", 35),
            fact!("Stock", "Tesla X", "Boston", 40),
            fact!("Stock", "Tesla Y", "New York", 95),
            fact!("Stock", "Tesla Z", "Chicago", 12),
        ])
        .unwrap();
    }

    fn reference() -> Session {
        let session = Session::new(catalog());
        session
            .insert_all([
                fact!("Dealers", "Smith", "Boston"),
                fact!("Dealers", "Smith", "New York"),
                fact!("Dealers", "Jones", "Chicago"),
                fact!("Stock", "Tesla X", "Boston", 35),
                fact!("Stock", "Tesla X", "Boston", 40),
                fact!("Stock", "Tesla Y", "New York", 95),
                fact!("Stock", "Tesla Z", "Chicago", 12),
            ])
            .unwrap();
        session
    }

    fn assert_same(sharded: &ShardedSession, reference: &Session, sql: &str) {
        let a = sharded.execute(sql).unwrap();
        let b = reference.execute(sql).unwrap();
        assert_eq!(a.rows, b.rows, "{sql}");
        assert_eq!(a.more_aggregates, b.more_aggregates, "{sql}");
        assert_eq!(a.having, b.having, "{sql}");
        assert_eq!(a.columns, b.columns, "{sql}");
        assert_eq!(a.epoch, b.epoch, "{sql}");
    }

    #[test]
    fn facts_partition_across_shards_and_epochs_sum() {
        let sharded = ShardedSession::new(catalog(), 4);
        seed(&sharded);
        let per_shard: usize = sharded.shards.iter().map(|s| s.database().len()).sum();
        assert_eq!(per_shard, 7);
        assert_eq!(sharded.epoch(), 7);
        assert_eq!(sharded.epoch_frontier().iter().sum::<u64>(), 7);
        for (i, shard) in sharded.shards.iter().enumerate() {
            for fact in shard.database().facts() {
                assert_eq!(sharded.shard_for(fact), i);
            }
        }
    }

    #[test]
    fn grouped_query_fans_out_and_matches_unsharded() {
        let sharded = ShardedSession::new(catalog(), 4);
        seed(&sharded);
        let reference = reference();
        // Grouping by the *full* block key: every group's blocks live on one
        // shard, so the statement fans out.
        assert_same(
            &sharded,
            &reference,
            "SELECT S.Product, S.Town, MAX(S.Qty) FROM Stock AS S \
             GROUP BY S.Product, S.Town",
        );
        assert_eq!(sharded.stats().fanout_queries, 1);
        // Grouping by a proper subset of the key leaves an `Any` slot in the
        // support (one group's blocks scatter across shards), which must
        // route to the honest combine — and still match.
        assert_same(
            &sharded,
            &reference,
            "SELECT S.Product, MAX(S.Qty) FROM Stock AS S GROUP BY S.Product",
        );
        assert_eq!(sharded.stats().fanout_queries, 1);
        assert_eq!(sharded.stats().combine_queries, 1);
    }

    #[test]
    fn join_routes_to_combine_and_matches_unsharded() {
        let sharded = ShardedSession::new(catalog(), 4);
        seed(&sharded);
        let reference = reference();
        assert_same(
            &sharded,
            &reference,
            "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town GROUP BY D.Name",
        );
        assert!(sharded.stats().combine_queries >= 1);
    }

    #[test]
    fn constant_key_query_routes_to_one_designated_shard() {
        let sharded = ShardedSession::new(catalog(), 4);
        seed(&sharded);
        let reference = reference();
        let sql = "SELECT MAX(S.Qty) FROM Stock AS S \
                   WHERE S.Product = 'Tesla X' AND S.Town = 'Boston'";
        let out = sharded.execute(sql).unwrap();
        let expect = reference.execute(sql).unwrap();
        assert_eq!(out.rows, expect.rows);
        assert_eq!(out.shards, 1);
        assert_eq!(sharded.stats().designated_queries, 1);
    }

    #[test]
    fn group_commit_coalesces_concurrent_writers() {
        let sharded = Arc::new(ShardedSession::new(catalog(), 1));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let front = sharded.clone();
                std::thread::spawn(move || {
                    front
                        .insert(fact!("Stock", format!("P{i}"), "Boston", i))
                        .unwrap()
                })
            })
            .collect();
        for t in threads {
            assert!(t.join().unwrap());
        }
        assert_eq!(sharded.epoch(), 8);
        let stats = sharded.stats();
        // Coalescing is timing-dependent, but every event must land in a
        // shard commit exactly once.
        assert_eq!(stats.epoch_frontier.iter().sum::<u64>(), 8);
        let out = sharded.execute("SELECT COUNT(*) FROM Stock AS S").unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(sharded.database().unwrap().len(), 8);
    }

    #[test]
    fn invalid_insert_fails_alone_and_batch_rejects_atomically() {
        let sharded = ShardedSession::new(catalog(), 2);
        // Single op: schema violation errors the caller, nothing commits.
        assert!(sharded.insert(fact!("Stock", "P", "Boston")).is_err());
        assert_eq!(sharded.epoch(), 0);
        // Cross-shard batch: one bad event rejects the whole batch.
        let err = sharded.insert_all([
            fact!("Stock", "P1", "Boston", 5),
            fact!("Nope", "X"),
            fact!("Stock", "P2", "Boston", 6),
        ]);
        assert!(err.is_err());
        assert_eq!(sharded.epoch(), 0);
        assert_eq!(sharded.database().unwrap().len(), 0);
    }

    #[test]
    fn unsatisfiable_where_designates_shard_zero() {
        let sharded = ShardedSession::new(catalog(), 4);
        seed(&sharded);
        let reference = reference();
        let sql = "SELECT MAX(S.Qty) FROM Stock AS S WHERE S.Qty = 5 AND S.Qty < 3";
        assert_same(&sharded, &reference, sql);
        assert_eq!(sharded.stats().designated_queries, 1);
    }

    #[test]
    fn explain_names_the_route() {
        let sharded = ShardedSession::new(catalog(), 4);
        seed(&sharded);
        let fanout = sharded
            .explain(
                "SELECT S.Product, S.Town, MAX(S.Qty) FROM Stock AS S \
                 GROUP BY S.Product, S.Town",
            )
            .unwrap();
        assert!(
            fanout.starts_with("route: fan-out across 4 shards"),
            "{fanout}"
        );
        let combine = sharded
            .explain(
                "SELECT D.Name, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                 WHERE D.Town = S.Town GROUP BY D.Name",
            )
            .unwrap();
        assert!(
            combine.starts_with("route: cross-shard combine"),
            "{combine}"
        );
    }
}
