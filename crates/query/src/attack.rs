//! Attack graphs for self-join-free conjunctive queries.
//!
//! The attack graph (Section 3, after [Koutris & Wijsen, TODS 2017]) is the
//! central tool of the paper: `CERTAINTY(q)` is in FO iff the attack graph of
//! `q` is acyclic (Theorem 3.2), and the separation theorem for aggregation
//! queries (Theorem 1.1) hinges on the same acyclicity condition.
//!
//! Free variables of the query are treated as constants (Section 6.2).

use crate::ast::{Atom, ConjunctiveQuery, Var};
use crate::fd::FdSet;
use rcqa_data::Schema;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The complexity of `CERTAINTY(q)` according to the trichotomy of
/// Koutris and Wijsen (see Section 2 and Section 8 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertaintyComplexity {
    /// Attack graph acyclic: expressible in first-order logic.
    FirstOrder,
    /// Attack graph cyclic but all cycles weak: solvable in polynomial time
    /// (L-complete).
    PolynomialTime,
    /// Attack graph contains a strong cycle: coNP-complete.
    CoNpComplete,
}

impl fmt::Display for CertaintyComplexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertaintyComplexity::FirstOrder => write!(f, "FO"),
            CertaintyComplexity::PolynomialTime => write!(f, "P (L-complete)"),
            CertaintyComplexity::CoNpComplete => write!(f, "coNP-complete"),
        }
    }
}

/// The attack graph of a self-join-free conjunctive query.
#[derive(Clone, Debug)]
pub struct AttackGraph {
    atoms: Vec<Atom>,
    key_lens: Vec<usize>,
    frozen: BTreeSet<Var>,
    /// `F^{+,q}` for each atom.
    plus: Vec<BTreeSet<Var>>,
    /// Variables attacked by each atom.
    attacked_vars: Vec<BTreeSet<Var>>,
    /// Adjacency: `edges[i]` contains `j` iff atom `i` attacks atom `j`.
    edges: Vec<BTreeSet<usize>>,
    /// `weak[(i, j)]` records whether the attack `i ⇝ j` is weak.
    weak: BTreeMap<(usize, usize), bool>,
}

impl AttackGraph {
    /// Builds the attack graph of `query` with key positions taken from
    /// `schema`. Relations missing from the schema are treated as full-key.
    pub fn new(query: &ConjunctiveQuery, schema: &Schema) -> AttackGraph {
        let atoms: Vec<Atom> = query.atoms().to_vec();
        let frozen: BTreeSet<Var> = query.free_vars().iter().cloned().collect();
        let key_lens: Vec<usize> = atoms
            .iter()
            .map(|a| {
                schema
                    .signature(a.relation())
                    .map(|s| s.key_len())
                    .unwrap_or(a.arity())
            })
            .collect();
        let n = atoms.len();

        let full_fds = FdSet::keys_of(query, schema);

        // F^{+,q} = closure of Key(F) under K(q \ {F}).
        let mut plus: Vec<BTreeSet<Var>> = Vec::with_capacity(n);
        for i in 0..n {
            let without = query.without_atom(atoms[i].relation());
            let fds = FdSet::keys_of(&without, schema);
            let key: BTreeSet<Var> = atoms[i]
                .key_vars(key_lens[i])
                .into_iter()
                .filter(|v| !frozen.contains(v))
                .collect();
            plus.push(fds.closure(&key));
        }

        // Variable co-occurrence adjacency (restricted later per atom).
        let all_vars: BTreeSet<Var> = query
            .vars()
            .into_iter()
            .filter(|v| !frozen.contains(v))
            .collect();
        let mut cooccur: BTreeMap<Var, BTreeSet<Var>> = all_vars
            .iter()
            .map(|v| (v.clone(), BTreeSet::new()))
            .collect();
        for atom in &atoms {
            let vars: Vec<Var> = atom
                .vars()
                .into_iter()
                .filter(|v| !frozen.contains(v))
                .collect();
            for a in &vars {
                for b in &vars {
                    if a != b {
                        cooccur.get_mut(a).unwrap().insert(b.clone());
                    }
                }
            }
        }

        // Attacked variables per atom: BFS from notKey(F) \ F^{+,q} over
        // variables outside F^{+,q}.
        let mut attacked_vars: Vec<BTreeSet<Var>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut reached: BTreeSet<Var> = BTreeSet::new();
            let mut queue: VecDeque<Var> = VecDeque::new();
            for v in atoms[i].non_key_vars(key_lens[i]) {
                if !frozen.contains(&v) && !plus[i].contains(&v) && reached.insert(v.clone()) {
                    queue.push_back(v);
                }
            }
            while let Some(v) = queue.pop_front() {
                if let Some(neigh) = cooccur.get(&v) {
                    for w in neigh {
                        if !plus[i].contains(w) && reached.insert(w.clone()) {
                            queue.push_back(w.clone());
                        }
                    }
                }
            }
            attacked_vars.push(reached);
        }

        // Edges and weakness.
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut weak: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let target_vars = atoms[j].vars();
                if target_vars.iter().any(|v| attacked_vars[i].contains(v)) {
                    edges[i].insert(j);
                    let key_i: BTreeSet<Var> = atoms[i]
                        .key_vars(key_lens[i])
                        .into_iter()
                        .filter(|v| !frozen.contains(v))
                        .collect();
                    let key_j: BTreeSet<Var> = atoms[j]
                        .key_vars(key_lens[j])
                        .into_iter()
                        .filter(|v| !frozen.contains(v))
                        .collect();
                    weak.insert((i, j), full_fds.implies(&key_i, &key_j));
                }
            }
        }

        AttackGraph {
            atoms,
            key_lens,
            frozen,
            plus,
            attacked_vars,
            edges,
            weak,
        }
    }

    /// Number of atoms (vertices).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom at index `i`.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// All atoms, in query order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The key length of atom `i`.
    pub fn key_len(&self, i: usize) -> usize {
        self.key_lens[i]
    }

    /// `F^{+,q}` of atom `i`.
    pub fn plus(&self, i: usize) -> &BTreeSet<Var> {
        &self.plus[i]
    }

    /// Variables treated as constants (free variables of the query).
    pub fn frozen(&self) -> &BTreeSet<Var> {
        &self.frozen
    }

    /// Returns `true` if atom `i` attacks variable `v`.
    pub fn attacks_var(&self, i: usize, v: &Var) -> bool {
        self.attacked_vars[i].contains(v)
    }

    /// Returns `true` if variable `v` is unattacked (no atom attacks it).
    pub fn is_unattacked_var(&self, v: &Var) -> bool {
        !self.attacked_vars.iter().any(|s| s.contains(v))
    }

    /// Returns `true` if atom `i` attacks atom `j`.
    pub fn attacks(&self, i: usize, j: usize) -> bool {
        self.edges[i].contains(&j)
    }

    /// The outgoing edges of atom `i`.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges[i].iter().copied()
    }

    /// All edges `(i, j)` of the graph.
    pub fn edge_list(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, succ) in self.edges.iter().enumerate() {
            for &j in succ {
                out.push((i, j));
            }
        }
        out
    }

    /// Returns `true` if the attack `i ⇝ j` exists and is weak, i.e.
    /// `K(q) ⊨ Key(F_i) → Key(F_j)`.
    pub fn is_weak_attack(&self, i: usize, j: usize) -> bool {
        self.weak.get(&(i, j)).copied().unwrap_or(false)
    }

    /// Returns `true` if the attack graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// Returns a topological sort of the atoms (indices into [`Self::atoms`])
    /// if the graph is acyclic, `None` otherwise.
    ///
    /// The sort is deterministic: among available vertices the smallest index
    /// is taken first (Lemma 4.2 shows that the choice of topological sort
    /// does not matter for ∀embeddings).
    pub fn topological_sort(&self) -> Option<Vec<usize>> {
        let n = self.atoms.len();
        let mut indegree = vec![0usize; n];
        for succ in &self.edges {
            for &j in succ {
                indegree[j] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut available: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(&i) = available.iter().next() {
            available.remove(&i);
            order.push(i);
            for &j in &self.edges[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    available.insert(j);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Strongly connected components (Tarjan), returned as lists of atom
    /// indices.
    pub fn strongly_connected_components(&self) -> Vec<Vec<usize>> {
        struct State {
            index: usize,
            indices: Vec<Option<usize>>,
            lowlink: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            components: Vec<Vec<usize>>,
        }
        fn strongconnect(v: usize, edges: &[BTreeSet<usize>], st: &mut State) {
            st.indices[v] = Some(st.index);
            st.lowlink[v] = st.index;
            st.index += 1;
            st.stack.push(v);
            st.on_stack[v] = true;
            for &w in &edges[v] {
                if st.indices[w].is_none() {
                    strongconnect(w, edges, st);
                    st.lowlink[v] = st.lowlink[v].min(st.lowlink[w]);
                } else if st.on_stack[w] {
                    st.lowlink[v] = st.lowlink[v].min(st.indices[w].unwrap());
                }
            }
            if st.lowlink[v] == st.indices[v].unwrap() {
                let mut comp = Vec::new();
                loop {
                    let w = st.stack.pop().unwrap();
                    st.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                st.components.push(comp);
            }
        }
        let n = self.atoms.len();
        let mut st = State {
            index: 0,
            indices: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            components: Vec::new(),
        };
        for v in 0..n {
            if st.indices[v].is_none() {
                strongconnect(v, &self.edges, &mut st);
            }
        }
        st.components
    }

    /// Returns `true` if some cycle of the attack graph contains a strong
    /// attack.
    pub fn contains_strong_cycle(&self) -> bool {
        let sccs = self.strongly_connected_components();
        let mut comp_of = vec![usize::MAX; self.atoms.len()];
        for (c, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v] = c;
            }
        }
        for (c, comp) in sccs.iter().enumerate() {
            if comp.len() < 2 {
                continue;
            }
            for &i in comp {
                for &j in &self.edges[i] {
                    if comp_of[j] == c && !self.is_weak_attack(i, j) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// The complexity of `CERTAINTY(q)` implied by the attack graph
    /// (Koutris–Wijsen trichotomy).
    pub fn certainty_complexity(&self) -> CertaintyComplexity {
        if self.is_acyclic() {
            CertaintyComplexity::FirstOrder
        } else if !self.contains_strong_cycle() {
            CertaintyComplexity::PolynomialTime
        } else {
            CertaintyComplexity::CoNpComplete
        }
    }

    /// Renders the graph in Graphviz DOT format (for documentation/debugging).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph attack {\n");
        for (i, a) in self.atoms.iter().enumerate() {
            s.push_str(&format!("  n{i} [label=\"{a}\"];\n"));
        }
        for (i, j) in self.edge_list() {
            let style = if self.is_weak_attack(i, j) {
                "solid"
            } else {
                "bold"
            };
            s.push_str(&format!("  n{i} -> n{j} [style={style}];\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use rcqa_data::Signature;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars.iter().map(|v| Term::var(*v)))
    }

    /// The query q0 of Example 3.1 / Fig. 2:
    /// R(x, y), S(y, z, u), T(y, z, w), N(u, v, r), M(u, w)
    /// with keys R:{x}, S:{y,z}, T:{y,z}, N:{u,v}, M:{u,w} (full key).
    fn example_3_1() -> (ConjunctiveQuery, Schema) {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, []).unwrap())
            .with_relation("T", Signature::new(3, 2, []).unwrap())
            .with_relation("N", Signature::new(3, 2, []).unwrap())
            .with_relation("M", Signature::new(2, 2, []).unwrap());
        let q = ConjunctiveQuery::boolean([
            atom("R", &["x", "y"]),
            atom("S", &["y", "z", "u"]),
            atom("T", &["y", "z", "w"]),
            atom("N", &["u", "v", "r"]),
            atom("M", &["u", "w"]),
        ]);
        (q, schema)
    }

    fn index_of(g: &AttackGraph, rel: &str) -> usize {
        (0..g.len()).find(|&i| g.atom(i).relation() == rel).unwrap()
    }

    fn vset(names: &[&str]) -> BTreeSet<Var> {
        names.iter().map(Var::new).collect()
    }

    #[test]
    fn example_3_1_plus_sets() {
        let (q, schema) = example_3_1();
        let g = AttackGraph::new(&q, &schema);
        assert_eq!(g.plus(index_of(&g, "R")), &vset(&["x"]));
        assert_eq!(g.plus(index_of(&g, "T")), &vset(&["y", "z", "u"]));
        assert_eq!(g.plus(index_of(&g, "S")), &vset(&["y", "z", "w"]));
        assert_eq!(g.plus(index_of(&g, "M")), &vset(&["u", "w"]));
        assert_eq!(g.plus(index_of(&g, "N")), &vset(&["u", "v"]));
    }

    #[test]
    fn example_3_1_attacks() {
        let (q, schema) = example_3_1();
        let g = AttackGraph::new(&q, &schema);
        let (r, s, t, n, m) = (
            index_of(&g, "R"),
            index_of(&g, "S"),
            index_of(&g, "T"),
            index_of(&g, "N"),
            index_of(&g, "M"),
        );
        // R attacks everything reachable from y.
        assert!(g.attacks(r, s));
        assert!(g.attacks(r, t));
        assert!(g.attacks(r, n));
        assert!(g.attacks(r, m));
        // S attacks N and M through u.
        assert!(g.attacks(s, n));
        assert!(g.attacks(s, m));
        assert!(!g.attacks(s, r));
        assert!(!g.attacks(s, t));
        // T attacks M through w.
        assert!(g.attacks(t, m));
        assert!(!g.attacks(t, n));
        // N and M attack nothing.
        assert!(g.successors(n).count() == 0);
        assert!(g.successors(m).count() == 0);
        // The graph is acyclic; a valid topological sort starts with R.
        assert!(g.is_acyclic());
        let sort = g.topological_sort().unwrap();
        assert_eq!(sort[0], r);
        assert_eq!(g.certainty_complexity(), CertaintyComplexity::FirstOrder);
    }

    #[test]
    fn example_3_1_instantiated_stays_acyclic() {
        // Fig. 2 (right): initialising x to b and y to c keeps the graph acyclic.
        let (q, schema) = example_3_1();
        let mut subst = BTreeMap::new();
        subst.insert(Var::new("x"), Term::constant("b"));
        subst.insert(Var::new("y"), Term::constant("c"));
        let q2 = q.substitute(&subst);
        let g = AttackGraph::new(&q2, &schema);
        assert!(g.is_acyclic());
    }

    #[test]
    fn fig3_query_single_attack() {
        // R(x, y), S(y, z, d, r): single attack from R to S (Section 6.1).
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap());
        let q = ConjunctiveQuery::boolean([
            atom("R", &["x", "y"]),
            Atom::new(
                "S",
                vec![
                    Term::var("y"),
                    Term::var("z"),
                    Term::constant("d"),
                    Term::var("r"),
                ],
            ),
        ]);
        let g = AttackGraph::new(&q, &schema);
        assert_eq!(g.edge_list(), vec![(0, 1)]);
        assert!(g.is_acyclic());
        assert_eq!(g.topological_sort().unwrap(), vec![0, 1]);
    }

    #[test]
    fn weak_cycle_is_ptime() {
        // R(x, y), S(y, x): classic weak cycle, CERTAINTY is L-complete.
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(2, 1, []).unwrap());
        let q = ConjunctiveQuery::boolean([atom("R", &["x", "y"]), atom("S", &["y", "x"])]);
        let g = AttackGraph::new(&q, &schema);
        assert!(!g.is_acyclic());
        assert!(g.attacks(0, 1));
        assert!(g.attacks(1, 0));
        assert!(g.is_weak_attack(0, 1));
        assert!(g.is_weak_attack(1, 0));
        assert!(!g.contains_strong_cycle());
        assert_eq!(
            g.certainty_complexity(),
            CertaintyComplexity::PolynomialTime
        );
        assert_eq!(g.topological_sort(), None);
    }

    #[test]
    fn strong_cycle_is_conp() {
        // R(x, y), S(z, y): strong cycle, CERTAINTY is coNP-complete.
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(2, 1, []).unwrap());
        let q = ConjunctiveQuery::boolean([atom("R", &["x", "y"]), atom("S", &["z", "y"])]);
        let g = AttackGraph::new(&q, &schema);
        assert!(!g.is_acyclic());
        assert!(!g.is_weak_attack(0, 1));
        assert!(g.contains_strong_cycle());
        assert_eq!(g.certainty_complexity(), CertaintyComplexity::CoNpComplete);
    }

    #[test]
    fn free_variables_treated_as_constants() {
        // Body R(x, y), S(y, x) is a weak cycle, but grouping by y breaks it:
        // with y frozen both atoms become key-determined.
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(2, 1, []).unwrap());
        let q = ConjunctiveQuery::with_free_vars(
            [atom("R", &["x", "y"]), atom("S", &["y", "x"])],
            [Var::new("y")],
        );
        let g = AttackGraph::new(&q, &schema);
        assert!(g.is_acyclic());
    }

    #[test]
    fn single_atom_and_dot_output() {
        let schema = Schema::new().with_relation("R", Signature::new(2, 1, []).unwrap());
        let q = ConjunctiveQuery::boolean([atom("R", &["x", "y"])]);
        let g = AttackGraph::new(&q, &schema);
        assert!(g.is_acyclic());
        assert!(g.edge_list().is_empty());
        assert!(g.is_unattacked_var(&Var::new("x")));
        // y is attacked by R itself (it reaches itself), but that creates no edge.
        assert!(g.attacks_var(0, &Var::new("y")));
        let dot = g.to_dot();
        assert!(dot.contains("digraph attack"));
        assert!(dot.contains("R(x, y)"));
    }
}
