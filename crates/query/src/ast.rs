//! Abstract syntax of conjunctive queries and aggregation queries
//! (the class AGGR\[sjfBCQ\] of Definition 5.4).

use crate::error::QueryError;
use rcqa_data::{AggFunc, Rational, Schema, Value};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A comparison operator from the SQL surface. Both spellings of "not equal"
/// (`<>` and `!=`) normalise to the single [`CmpOp::Ne`] node at parse time,
/// so downstream layers never see the surface spelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>` / `!=`
    Ne,
}

impl CmpOp {
    /// Parses a surface spelling (`=`, `<`, `<=`, `>`, `>=`, `<>`, `!=`).
    pub fn parse(op: &str) -> Option<CmpOp> {
        match op {
            "=" => Some(CmpOp::Eq),
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            "<>" | "!=" => Some(CmpOp::Ne),
            _ => None,
        }
    }

    /// The canonical spelling (`Ne` renders as `<>`).
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "<>",
        }
    }

    /// Whether `lhs OP rhs` holds given `lhs.cmp(&rhs)`.
    pub fn holds(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }

    /// Whether the satisfying set `{x : x OP c}` is contiguous in the total
    /// value order (everything except `Ne`) — the precondition for answering
    /// the predicate with one ordered range seek instead of a filter scan.
    pub fn is_contiguous(&self) -> bool {
        !matches!(self, CmpOp::Ne)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A comparison predicate `v OP c` over a body variable, produced by the SQL
/// front-end for non-equality WHERE conditions (equality conditions are
/// applied by unification instead and never appear here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarPredicate {
    /// The body variable being constrained.
    pub var: Var,
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal the variable is compared against.
    pub value: Value,
}

impl VarPredicate {
    /// Whether a concrete value satisfies the predicate, in the engine's
    /// total value order (numbers before text).
    pub fn holds_value(&self, v: &Value) -> bool {
        self.op.holds(v.cmp(&self.value))
    }
}

impl fmt::Display for VarPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Value::Text(s) => write!(f, "{} {} '{s}'", self.var, self.op),
            other => write!(f, "{} {} {other}", self.var, self.op),
        }
    }
}

/// A variable.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Var {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Var::new(name))
    }

    /// Creates a constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Returns the variable, if this term is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Returns `true` if this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Text(s)) => write!(f, "'{s}'"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

/// An atom `R(u1, ..., un)` whose terms are variables or constants.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    relation: Arc<str>,
    terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl AsRef<str>, terms: impl IntoIterator<Item = Term>) -> Atom {
        Atom {
            relation: Arc::from(relation.as_ref()),
            terms: terms.into_iter().collect(),
        }
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The terms of the atom, in positional order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The term at position `p`.
    pub fn term(&self, p: usize) -> &Term {
        &self.terms[p]
    }

    /// All variables of the atom (`vars(F)`).
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms
            .iter()
            .filter_map(|t| t.as_var().cloned())
            .collect()
    }

    /// The variables occurring at primary-key positions (`Key(F)`), given the
    /// key length from the schema.
    pub fn key_vars(&self, key_len: usize) -> BTreeSet<Var> {
        self.terms
            .iter()
            .take(key_len)
            .filter_map(|t| t.as_var().cloned())
            .collect()
    }

    /// `notKey(F) := vars(F) \ Key(F)`.
    pub fn non_key_vars(&self, key_len: usize) -> BTreeSet<Var> {
        let key = self.key_vars(key_len);
        self.vars().difference(&key).cloned().collect()
    }

    /// The positions (0-based) at which a given variable occurs.
    pub fn positions_of(&self, var: &Var) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_var() == Some(var))
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies a substitution of variables by terms, returning a new atom.
    pub fn substitute(&self, subst: &BTreeMap<Var, Term>) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
                    Term::Const(_) => t.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// The body of a query: a conjunction of atoms, together with the set of
/// variables that are treated as *free* (Section 6.2: free variables are
/// handled as if they were constants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
    free_vars: Vec<Var>,
}

impl ConjunctiveQuery {
    /// Creates a Boolean conjunctive query (no free variables).
    pub fn boolean(atoms: impl IntoIterator<Item = Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            atoms: atoms.into_iter().collect(),
            free_vars: Vec::new(),
        }
    }

    /// Creates a conjunctive query with the given free variables.
    pub fn with_free_vars(
        atoms: impl IntoIterator<Item = Atom>,
        free_vars: impl IntoIterator<Item = Var>,
    ) -> ConjunctiveQuery {
        ConjunctiveQuery {
            atoms: atoms.into_iter().collect(),
            free_vars: free_vars.into_iter().collect(),
        }
    }

    /// The atoms of the body.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The free variables (GROUP BY variables for aggregation queries).
    pub fn free_vars(&self) -> &[Var] {
        &self.free_vars
    }

    /// All variables occurring in the body.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// The bound (existentially quantified) variables.
    pub fn bound_vars(&self) -> BTreeSet<Var> {
        let free: BTreeSet<&Var> = self.free_vars.iter().collect();
        self.vars()
            .into_iter()
            .filter(|v| !free.contains(v))
            .collect()
    }

    /// Returns `true` if no two distinct atoms share a relation name.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms
            .iter()
            .all(|a| seen.insert(a.relation().to_string()))
    }

    /// Returns the unique atom with the given relation name, if any.
    pub fn atom_for(&self, relation: &str) -> Option<&Atom> {
        self.atoms.iter().find(|a| a.relation() == relation)
    }

    /// Returns a new query without the given atom.
    pub fn without_atom(&self, relation: &str) -> ConjunctiveQuery {
        ConjunctiveQuery {
            atoms: self
                .atoms
                .iter()
                .filter(|a| a.relation() != relation)
                .cloned()
                .collect(),
            free_vars: self.free_vars.clone(),
        }
    }

    /// Applies a substitution to every atom (free variables are untouched
    /// unless mentioned in the substitution).
    pub fn substitute(&self, subst: &BTreeMap<Var, Term>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            atoms: self.atoms.iter().map(|a| a.substitute(subst)).collect(),
            free_vars: self.free_vars.clone(),
        }
    }

    /// Validates the query against a schema: every relation must be declared,
    /// arities must match, constants at numerical positions must be numeric,
    /// and the query must be self-join-free. Free variables must occur in the
    /// body.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        if !self.is_self_join_free() {
            let mut seen = BTreeSet::new();
            for a in &self.atoms {
                if !seen.insert(a.relation().to_string()) {
                    return Err(QueryError::SelfJoin(a.relation().to_string()));
                }
            }
        }
        for atom in &self.atoms {
            let sig = schema
                .signature(atom.relation())
                .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
            if atom.arity() != sig.arity() {
                return Err(QueryError::ArityMismatch {
                    relation: atom.relation().to_string(),
                    expected: sig.arity(),
                    found: atom.arity(),
                });
            }
            for &p in sig.numeric_positions() {
                if let Term::Const(c) = atom.term(p) {
                    if !c.is_num() {
                        return Err(QueryError::NonNumericTerm {
                            relation: atom.relation().to_string(),
                            position: p,
                        });
                    }
                }
            }
        }
        let body_vars = self.vars();
        for v in &self.free_vars {
            if !body_vars.contains(v) {
                return Err(QueryError::FreeVariableNotInBody(v.name().to_string()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// The term being aggregated: either a numeric variable of the body or a
/// constant rational number (as in `SUM(1)` for COUNT).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggTerm {
    /// Aggregate over the values bound to a variable.
    Var(Var),
    /// Aggregate over a constant (every embedding contributes this value).
    Const(Rational),
}

impl fmt::Display for AggTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggTerm::Var(v) => write!(f, "{v}"),
            AggTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An aggregation query `(x̄, AGG(r)) ← q(x̄, ȳ)` in the class AGGR\[sjfBCQ\]
/// (Definition 5.4 and Section 6.2).
///
/// The free variables `x̄` of the body play the role of SQL's `GROUP BY`
/// columns; when there are none the query is a *numerical query* `g()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggQuery {
    /// The aggregate symbol.
    pub agg: AggFunc,
    /// The aggregated term `r`.
    pub term: AggTerm,
    /// The body `q(x̄, ȳ)`.
    pub body: ConjunctiveQuery,
}

impl AggQuery {
    /// Creates an aggregation query.
    pub fn new(agg: AggFunc, term: AggTerm, body: ConjunctiveQuery) -> AggQuery {
        AggQuery { agg, term, body }
    }

    /// Convenience constructor for a closed query aggregating a variable.
    pub fn closed(agg: AggFunc, var: impl AsRef<str>, body: ConjunctiveQuery) -> AggQuery {
        AggQuery {
            agg,
            term: AggTerm::Var(Var::new(var)),
            body,
        }
    }

    /// The GROUP BY (free) variables.
    pub fn group_by(&self) -> &[Var] {
        self.body.free_vars()
    }

    /// Returns `true` if the query has no free variables (a numerical query
    /// `g()` in the paper's terminology).
    pub fn is_closed(&self) -> bool {
        self.body.free_vars().is_empty()
    }

    /// Validates the query against a schema. On top of the body validation,
    /// the aggregated variable (if any) must occur in the body at some
    /// numerical position.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        self.body.validate(schema)?;
        if let AggTerm::Var(v) = &self.term {
            if !self.body.vars().contains(v) {
                return Err(QueryError::AggregatedVariableNotInBody(
                    v.name().to_string(),
                ));
            }
            let mut numeric = false;
            for atom in self.body.atoms() {
                if let Some(sig) = schema.signature(atom.relation()) {
                    for &p in sig.numeric_positions() {
                        if atom.term(p).as_var() == Some(v) {
                            numeric = true;
                        }
                    }
                }
            }
            if !numeric {
                return Err(QueryError::AggregatedVariableNotNumeric(
                    v.name().to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Normalises a COUNT query into the equivalent `SUM(1)` query used by the
    /// paper's positive result (Theorem 6.1). Other queries are returned
    /// unchanged.
    pub fn normalise_count(&self) -> AggQuery {
        if self.agg == AggFunc::Count {
            AggQuery {
                agg: AggFunc::Sum,
                term: AggTerm::Const(Rational::ONE),
                body: self.body.clone(),
            }
        } else {
            self.clone()
        }
    }
}

impl fmt::Display for AggQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.group_by().is_empty() {
            write!(f, "{}({}) <- {}", self.agg, self.term, self.body)
        } else {
            write!(f, "(")?;
            for v in self.group_by() {
                write!(f, "{v}, ")?;
            }
            write!(f, "{}({})) <- {}", self.agg, self.term, self.body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::Signature;

    fn stock_schema() -> Schema {
        Schema::new()
            .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
            .with_relation("Stock", Signature::new(3, 2, [2]).unwrap())
    }

    fn g0() -> AggQuery {
        // SUM(y) <- Dealers('Smith', t), Stock(p, t, y)
        let dealers = Atom::new("Dealers", vec![Term::constant("Smith"), Term::var("t")]);
        let stock = Atom::new(
            "Stock",
            vec![Term::var("p"), Term::var("t"), Term::var("y")],
        );
        AggQuery::closed(
            AggFunc::Sum,
            "y",
            ConjunctiveQuery::boolean([dealers, stock]),
        )
    }

    #[test]
    fn atom_vars_and_keys() {
        let stock = Atom::new(
            "Stock",
            vec![Term::var("p"), Term::var("t"), Term::var("y")],
        );
        assert_eq!(stock.vars().len(), 3);
        let key = stock.key_vars(2);
        assert!(key.contains(&Var::new("p")) && key.contains(&Var::new("t")));
        let nonkey = stock.non_key_vars(2);
        assert_eq!(nonkey.into_iter().collect::<Vec<_>>(), vec![Var::new("y")]);
        assert_eq!(stock.positions_of(&Var::new("t")), vec![1]);
    }

    #[test]
    fn substitute() {
        let stock = Atom::new(
            "Stock",
            vec![Term::var("p"), Term::var("t"), Term::var("y")],
        );
        let mut subst = BTreeMap::new();
        subst.insert(Var::new("t"), Term::constant("Boston"));
        let s2 = stock.substitute(&subst);
        assert_eq!(s2.term(1), &Term::constant("Boston"));
        assert_eq!(s2.term(0), &Term::var("p"));
    }

    #[test]
    fn query_validation() {
        let schema = stock_schema();
        let q = g0();
        assert!(q.validate(&schema).is_ok());
        assert!(q.is_closed());

        // Self-join is rejected.
        let a1 = Atom::new("Dealers", vec![Term::var("x"), Term::var("t")]);
        let a2 = Atom::new("Dealers", vec![Term::var("y"), Term::var("t")]);
        let sj = ConjunctiveQuery::boolean([a1, a2]);
        assert!(matches!(sj.validate(&schema), Err(QueryError::SelfJoin(_))));

        // Arity mismatch.
        let bad = ConjunctiveQuery::boolean([Atom::new("Dealers", vec![Term::var("x")])]);
        assert!(matches!(
            bad.validate(&schema),
            Err(QueryError::ArityMismatch { .. })
        ));

        // Unknown relation.
        let bad = ConjunctiveQuery::boolean([Atom::new("Nope", vec![Term::var("x")])]);
        assert!(matches!(
            bad.validate(&schema),
            Err(QueryError::UnknownRelation(_))
        ));

        // Aggregated variable must be numeric somewhere.
        let q = AggQuery::closed(
            AggFunc::Sum,
            "t",
            ConjunctiveQuery::boolean([Atom::new(
                "Dealers",
                vec![Term::constant("Smith"), Term::var("t")],
            )]),
        );
        assert!(matches!(
            q.validate(&schema),
            Err(QueryError::AggregatedVariableNotNumeric(_))
        ));

        // Aggregated variable must occur in the body.
        let q = AggQuery::closed(
            AggFunc::Sum,
            "zzz",
            ConjunctiveQuery::boolean([Atom::new(
                "Dealers",
                vec![Term::constant("Smith"), Term::var("t")],
            )]),
        );
        assert!(matches!(
            q.validate(&schema),
            Err(QueryError::AggregatedVariableNotInBody(_))
        ));
    }

    #[test]
    fn free_variables() {
        let schema = stock_schema();
        let dealers = Atom::new("Dealers", vec![Term::var("x"), Term::var("t")]);
        let stock = Atom::new(
            "Stock",
            vec![Term::var("p"), Term::var("t"), Term::var("y")],
        );
        let body = ConjunctiveQuery::with_free_vars([dealers, stock], [Var::new("x")]);
        let q = AggQuery::closed(AggFunc::Sum, "y", body);
        assert!(q.validate(&schema).is_ok());
        assert!(!q.is_closed());
        assert_eq!(q.group_by(), &[Var::new("x")]);
        assert_eq!(q.body.bound_vars().len(), 3);

        let bad = ConjunctiveQuery::with_free_vars(
            [Atom::new("Dealers", vec![Term::var("a"), Term::var("b")])],
            [Var::new("zzz")],
        );
        assert!(matches!(
            bad.validate(&schema),
            Err(QueryError::FreeVariableNotInBody(_))
        ));
    }

    #[test]
    fn count_normalisation() {
        let q = AggQuery::new(
            AggFunc::Count,
            AggTerm::Const(Rational::ONE),
            g0().body.clone(),
        );
        let n = q.normalise_count();
        assert_eq!(n.agg, AggFunc::Sum);
        assert_eq!(n.term, AggTerm::Const(Rational::ONE));
        let sum = g0();
        assert_eq!(sum.normalise_count(), sum);
    }

    #[test]
    fn display() {
        let q = g0();
        assert_eq!(
            q.to_string(),
            "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        );
    }
}
