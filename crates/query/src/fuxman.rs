//! Fuxman graphs and the classes Cforest / Caggforest (Appendix N of the
//! paper, after Fuxman's PhD thesis [21]).
//!
//! These classes underlie the ConQuer system and are used in Section 7.3 of
//! the paper, which refutes the claim that every query in Caggforest admits a
//! correct aggregate rewriting once negative numbers are allowed.

use crate::ast::{AggQuery, AggTerm, ConjunctiveQuery, Var};
use rcqa_data::{AggFunc, Schema};
use std::collections::BTreeSet;

/// The Fuxman graph of a self-join-free conjunctive query.
#[derive(Clone, Debug)]
pub struct FuxmanGraph {
    /// Adjacency: `edges[i]` contains `j` iff there is a directed edge from
    /// atom `i` to atom `j`.
    edges: Vec<BTreeSet<usize>>,
    /// For every edge `(i, j)`, whether the *full-join* condition
    /// `Key(S) \ free ⊆ notKey(R)` holds.
    full_join: Vec<Vec<bool>>,
    n: usize,
}

impl FuxmanGraph {
    /// Builds the Fuxman graph of `query` (key positions from `schema`).
    pub fn new(query: &ConjunctiveQuery, schema: &Schema) -> FuxmanGraph {
        let atoms = query.atoms();
        let n = atoms.len();
        let free: BTreeSet<Var> = query.free_vars().iter().cloned().collect();
        let key_len = |i: usize| {
            schema
                .signature(atoms[i].relation())
                .map(|s| s.key_len())
                .unwrap_or(atoms[i].arity())
        };
        let mut edges = vec![BTreeSet::new(); n];
        let mut full_join = vec![vec![false; n]; n];
        for i in 0..n {
            let non_key_bound: BTreeSet<Var> = atoms[i]
                .non_key_vars(key_len(i))
                .into_iter()
                .filter(|v| !free.contains(v))
                .collect();
            for j in 0..n {
                if i == j {
                    continue;
                }
                let shares = atoms[j].vars().iter().any(|v| non_key_bound.contains(v));
                if shares {
                    edges[i].insert(j);
                    let key_j_minus_free: BTreeSet<Var> = atoms[j]
                        .key_vars(key_len(j))
                        .into_iter()
                        .filter(|v| !free.contains(v))
                        .collect();
                    full_join[i][j] = key_j_minus_free.is_subset(&non_key_bound);
                }
            }
        }
        FuxmanGraph {
            edges,
            full_join,
            n,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns `true` if there is an edge from atom `i` to atom `j`.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.edges[i].contains(&j)
    }

    /// Returns `true` if the graph is a directed forest: no vertex has more
    /// than one incoming edge and there are no cycles.
    pub fn is_forest(&self) -> bool {
        let mut indegree = vec![0usize; self.n];
        for succ in &self.edges {
            for &j in succ {
                indegree[j] += 1;
                if indegree[j] > 1 {
                    return false;
                }
            }
        }
        // Cycle check via Kahn's algorithm.
        let mut order = 0;
        let mut avail: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut indeg = indegree;
        while let Some(i) = avail.pop() {
            order += 1;
            for &j in &self.edges[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    avail.push(j);
                }
            }
        }
        order == self.n
    }

    /// Returns `true` if every edge satisfies the full-join condition
    /// `Key(S) \ free ⊆ notKey(R)`.
    pub fn all_joins_full(&self) -> bool {
        for i in 0..self.n {
            for &j in &self.edges[i] {
                if !self.full_join[i][j] {
                    return false;
                }
            }
        }
        true
    }
}

/// Returns `true` if the conjunctive query is in Fuxman's class Cforest
/// (Definition N.1): self-join-free, Fuxman graph is a directed forest, and
/// every edge is a full join.
pub fn is_cforest(query: &ConjunctiveQuery, schema: &Schema) -> bool {
    if !query.is_self_join_free() {
        return false;
    }
    let g = FuxmanGraph::new(query, schema);
    g.is_forest() && g.all_joins_full()
}

/// Returns `true` if the aggregation query is in the class Caggforest
/// (Definition N.1): the body is in Cforest and the aggregate is one of
/// MIN, MAX, SUM over a body variable, or COUNT(\*).
pub fn is_caggforest(query: &AggQuery, schema: &Schema) -> bool {
    if !is_cforest(&query.body, schema) {
        return false;
    }
    matches!(
        (&query.agg, &query.term),
        (AggFunc::Min | AggFunc::Max | AggFunc::Sum, AggTerm::Var(_)) | (AggFunc::Count, _)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};
    use rcqa_data::Signature;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars.iter().map(|v| Term::var(*v)))
    }

    fn two_rel_schema() -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(2, 1, [1]).unwrap())
    }

    #[test]
    fn full_join_is_cforest() {
        // R(x, y), S(y, r): the non-key y of R covers the whole key of S.
        let schema = two_rel_schema();
        let q = ConjunctiveQuery::boolean([atom("R", &["x", "y"]), atom("S", &["y", "r"])]);
        assert!(is_cforest(&q, &schema));
        let g = FuxmanGraph::new(&q, &schema);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.is_forest());
        assert!(g.all_joins_full());
    }

    #[test]
    fn partial_join_is_not_cforest() {
        // R(x, y), S(y, z, r) with key(S) = {y, z}: the join only covers part
        // of S's key ("partial join"), which Cforest forbids but the paper's
        // rewriting handles.
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap());
        let q = ConjunctiveQuery::boolean([atom("R", &["x", "y"]), atom("S", &["y", "z", "r"])]);
        assert!(!is_cforest(&q, &schema));
        let g = FuxmanGraph::new(&q, &schema);
        assert!(g.has_edge(0, 1));
        assert!(!g.all_joins_full());
    }

    #[test]
    fn non_forest_rejected() {
        // Two parents pointing at the same child.
        let schema = Schema::new()
            .with_relation("R1", Signature::new(2, 1, []).unwrap())
            .with_relation("R2", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(1, 1, []).unwrap());
        let q = ConjunctiveQuery::boolean([
            atom("R1", &["x", "y"]),
            atom("R2", &["z", "y"]),
            atom("S", &["y"]),
        ]);
        let g = FuxmanGraph::new(&q, &schema);
        assert!(!g.is_forest());
        assert!(!is_cforest(&q, &schema));
    }

    #[test]
    fn caggforest_membership() {
        let schema = two_rel_schema();
        let body = ConjunctiveQuery::boolean([atom("R", &["x", "y"]), atom("S", &["y", "r"])]);
        let sum = AggQuery::closed(AggFunc::Sum, "r", body.clone());
        assert!(is_caggforest(&sum, &schema));
        let avg = AggQuery::closed(AggFunc::Avg, "r", body.clone());
        assert!(!is_caggforest(&avg, &schema));
        let count = AggQuery::new(
            AggFunc::Count,
            AggTerm::Const(rcqa_data::Rational::ONE),
            body.clone(),
        );
        assert!(is_caggforest(&count, &schema));
    }

    #[test]
    fn lemma_7_3_query_is_caggforest() {
        // g() := SUM(r) <- S1(x, c1), S2(y, c2), T(x, y, r) with T full-key on
        // (x, y). This is the Theorem 7.9 query: it *is* in Caggforest, which
        // is exactly why it refutes Fuxman's claim when -1 is allowed.
        let schema = Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 2, [2]).unwrap());
        let q = ConjunctiveQuery::boolean([
            Atom::new("S1", vec![Term::var("x"), Term::constant("c1")]),
            Atom::new("S2", vec![Term::var("y"), Term::constant("c2")]),
            Atom::new("T", vec![Term::var("x"), Term::var("y"), Term::var("r")]),
        ]);
        let g = FuxmanGraph::new(&q, &schema);
        // No atom has a bound non-key variable shared with another atom
        // (x and y are key variables of their atoms), so the graph has no edges.
        assert!(g.is_forest());
        assert!(is_cforest(&q, &schema));
        let sum = AggQuery::closed(AggFunc::Sum, "r", q);
        assert!(is_caggforest(&sum, &schema));
    }
}
