//! Error types for query construction and parsing.

use std::fmt;

/// Errors raised while building, validating, or parsing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query contains two atoms with the same relation name (a self-join),
    /// which is outside the class AGGR\[sjfBCQ\] studied by the paper.
    SelfJoin(String),
    /// An atom refers to a relation that is not in the schema.
    UnknownRelation(String),
    /// An atom has the wrong number of terms.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of terms in the atom.
        found: usize,
    },
    /// A non-numeric constant appears at a numerical position.
    NonNumericTerm {
        /// Relation name.
        relation: String,
        /// 0-based position.
        position: usize,
    },
    /// The aggregated term is a variable that does not occur in the body.
    AggregatedVariableNotInBody(String),
    /// The aggregated term is a variable that never occurs at a numerical
    /// position, so aggregation over it is not well-typed.
    AggregatedVariableNotNumeric(String),
    /// A GROUP BY / free variable does not occur in the body.
    FreeVariableNotInBody(String),
    /// Generic parse error with a human-readable message.
    Parse(String),
    /// A SQL query referenced an unknown table or column.
    UnknownColumn {
        /// Table (or alias) name.
        table: String,
        /// Column name.
        column: String,
    },
    /// The SQL query used a feature outside the supported fragment.
    Unsupported(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::SelfJoin(r) => {
                write!(
                    f,
                    "relation {r:?} occurs twice: self-joins are not supported"
                )
            }
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            QueryError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for {relation}: expected {expected} terms, found {found}"
            ),
            QueryError::NonNumericTerm { relation, position } => write!(
                f,
                "non-numeric constant at numerical position {position} of {relation}"
            ),
            QueryError::AggregatedVariableNotInBody(v) => {
                write!(
                    f,
                    "aggregated variable {v} does not occur in the query body"
                )
            }
            QueryError::AggregatedVariableNotNumeric(v) => {
                write!(
                    f,
                    "aggregated variable {v} never occurs at a numerical position"
                )
            }
            QueryError::FreeVariableNotInBody(v) => {
                write!(f, "free variable {v} does not occur in the query body")
            }
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            QueryError::Unsupported(msg) => write!(f, "unsupported SQL feature: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}
