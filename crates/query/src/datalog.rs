//! Parser for the extended Datalog syntax used throughout the paper.
//!
//! Examples of accepted input:
//!
//! ```text
//! SUM(y) <- Dealers('Smith', t), Stock(p, t, y)
//! (x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)
//! COUNT(*) <- R(x, y), S(y, z)
//! MIN(r) <- S(y, z, 'd', r)
//! ```
//!
//! Unquoted identifiers denote variables; single- or double-quoted strings
//! denote symbolic constants; numeric literals denote rational constants.

use crate::ast::{AggQuery, AggTerm, Atom, ConjunctiveQuery, Term, Var};
use crate::error::QueryError;
use rcqa_data::{AggFunc, Rational, Value};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(Rational),
    LParen,
    RParen,
    Comma,
    Arrow,
    Star,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, QueryError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err(QueryError::Parse(format!(
                        "unexpected character '<' at {i}"
                    )));
                }
            }
            ':' => {
                // also accept ":-" as the rule arrow
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err(QueryError::Parse(format!(
                        "unexpected character ':' at {i}"
                    )));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != quote {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(QueryError::Parse("unterminated string literal".to_string()));
                }
                i += 1;
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == '/')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let r: Rational = text
                    .parse()
                    .map_err(|_| QueryError::Parse(format!("bad number literal {text:?}")))?;
                toks.push(Tok::Num(r));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    // allow hyphens inside identifiers only for aggregate
                    // names like COUNT-DISTINCT
                    if chars[i] == '-' && !(i + 1 < chars.len() && chars[i + 1].is_alphabetic()) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "unexpected character {other:?} at position {i}"
                )))
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), QueryError> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(QueryError::Parse(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    fn parse_term(&mut self) -> Result<Term, QueryError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(Term::Var(Var::new(name))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::text(s))),
            Some(Tok::Num(r)) => Ok(Term::Const(Value::Num(r))),
            other => Err(QueryError::Parse(format!(
                "expected a term, found {other:?}"
            ))),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, QueryError> {
        let rel = match self.next() {
            Some(Tok::Ident(name)) => name,
            other => {
                return Err(QueryError::Parse(format!(
                    "expected a relation name, found {other:?}"
                )))
            }
        };
        self.expect(&Tok::LParen)?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                terms.push(self.parse_term()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Atom::new(rel, terms))
    }

    fn parse_body(&mut self) -> Result<Vec<Atom>, QueryError> {
        let mut atoms = vec![self.parse_atom()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            atoms.push(self.parse_atom()?);
        }
        if self.pos != self.toks.len() {
            return Err(QueryError::Parse(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )));
        }
        Ok(atoms)
    }

    /// Parses `AGG(term)` and returns the aggregate plus its argument.
    fn parse_agg_head(&mut self) -> Result<(AggFunc, AggTerm), QueryError> {
        let name = match self.next() {
            Some(Tok::Ident(name)) => name,
            other => {
                return Err(QueryError::Parse(format!(
                    "expected an aggregate symbol, found {other:?}"
                )))
            }
        };
        let agg = AggFunc::parse(&name)
            .ok_or_else(|| QueryError::Parse(format!("unknown aggregate symbol {name:?}")))?;
        self.expect(&Tok::LParen)?;
        let term = match self.next() {
            Some(Tok::Star) => {
                if agg != AggFunc::Count && agg != AggFunc::CountDistinct {
                    return Err(QueryError::Parse(format!("{agg}(*) is not supported")));
                }
                AggTerm::Const(Rational::ONE)
            }
            Some(Tok::Ident(v)) => AggTerm::Var(Var::new(v)),
            Some(Tok::Num(r)) => AggTerm::Const(r),
            other => {
                return Err(QueryError::Parse(format!(
                    "expected an aggregate argument, found {other:?}"
                )))
            }
        };
        self.expect(&Tok::RParen)?;
        Ok((agg, term))
    }
}

/// Parses a conjunction of atoms, e.g. `"R(x, y), S(y, z, 'd', r)"`.
pub fn parse_body(input: &str) -> Result<ConjunctiveQuery, QueryError> {
    let mut p = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    Ok(ConjunctiveQuery::boolean(p.parse_body()?))
}

/// Parses an aggregation query in the extended Datalog syntax, e.g.
/// `"SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"` or, with GROUP BY
/// variables, `"(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)"`.
pub fn parse_agg_query(input: &str) -> Result<AggQuery, QueryError> {
    let mut p = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    // Head: either `AGG(term)` or `(v1, ..., vk, AGG(term))`.
    let (group_by, agg, term) = if p.peek() == Some(&Tok::LParen) {
        p.next();
        let mut group_by: Vec<Var> = Vec::new();
        loop {
            // Either a group-by variable followed by a comma, or the aggregate.
            match p.peek() {
                Some(Tok::Ident(name)) => {
                    // Look ahead: if the next token after the identifier is a
                    // '(', this is the aggregate symbol.
                    if p.toks.get(p.pos + 1) == Some(&Tok::LParen) {
                        let (agg, term) = p.parse_agg_head()?;
                        p.expect(&Tok::RParen)?;
                        break (group_by, agg, term);
                    }
                    group_by.push(Var::new(name.clone()));
                    p.next();
                    p.expect(&Tok::Comma)?;
                }
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected a group-by variable or aggregate, found {other:?}"
                    )))
                }
            }
        }
    } else {
        let (agg, term) = p.parse_agg_head()?;
        (Vec::new(), agg, term)
    };
    p.expect(&Tok::Arrow)?;
    let atoms = p.parse_body()?;
    let body = ConjunctiveQuery::with_free_vars(atoms, group_by);
    Ok(AggQuery::new(agg, term, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_g0_from_introduction() {
        let q = parse_agg_query("SUM(y) <- Dealers('Smith', t), Stock(p, t, y)").unwrap();
        assert_eq!(q.agg, AggFunc::Sum);
        assert_eq!(q.term, AggTerm::Var(Var::new("y")));
        assert_eq!(q.body.atoms().len(), 2);
        assert_eq!(q.body.atoms()[0].relation(), "Dealers");
        assert_eq!(
            q.body.atoms()[0].term(0),
            &Term::Const(Value::text("Smith"))
        );
        assert!(q.is_closed());
        assert_eq!(
            q.to_string(),
            "SUM(y) <- Dealers('Smith', t), Stock(p, t, y)"
        );
    }

    #[test]
    fn parse_group_by_head() {
        let q = parse_agg_query("(x, SUM(y)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        assert_eq!(q.group_by(), &[Var::new("x")]);
        assert_eq!(q.agg, AggFunc::Sum);
        let q2 = parse_agg_query("(x, t, COUNT(*)) <- Dealers(x, t), Stock(p, t, y)").unwrap();
        assert_eq!(q2.group_by().len(), 2);
        assert_eq!(q2.term, AggTerm::Const(Rational::ONE));
    }

    #[test]
    fn parse_count_star_and_constants() {
        let q = parse_agg_query("COUNT(*) <- R(x, y)").unwrap();
        assert_eq!(q.agg, AggFunc::Count);
        assert_eq!(q.term, AggTerm::Const(Rational::ONE));

        let q = parse_agg_query("SUM(1) <- R(x, y)").unwrap();
        assert_eq!(q.term, AggTerm::Const(Rational::ONE));

        let q = parse_agg_query("MIN(r) <- S(y, z, 'd', r)").unwrap();
        assert_eq!(q.agg, AggFunc::Min);
        assert_eq!(q.body.atoms()[0].term(2), &Term::Const(Value::text("d")));

        // numeric constants in atoms
        let q = parse_agg_query("MAX(r) <- Stock(p, \"Boston\", 35), T(r)").unwrap();
        assert_eq!(q.body.atoms()[0].term(2), &Term::Const(Value::int(35)));
    }

    #[test]
    fn parse_alternative_arrow_and_distinct() {
        let q = parse_agg_query("COUNT-DISTINCT(r) :- R(x, r)").unwrap();
        assert_eq!(q.agg, AggFunc::CountDistinct);
        let q = parse_agg_query("AVG(r) :- R(x, r)").unwrap();
        assert_eq!(q.agg, AggFunc::Avg);
    }

    #[test]
    fn parse_body_only() {
        let b = parse_body("R(x, y), S(y, z, u), T(y, z, w)").unwrap();
        assert_eq!(b.atoms().len(), 3);
        assert!(b.is_self_join_free());
        let b = parse_body("R(x, y), S(y, x)").unwrap();
        assert_eq!(b.atoms().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_agg_query("SUM(y) Dealers(x)").is_err());
        assert!(parse_agg_query("FOO(y) <- R(x, y)").is_err());
        assert!(parse_agg_query("SUM(*) <- R(x, y)").is_err());
        assert!(parse_agg_query("SUM(y) <- R(x, y").is_err());
        assert!(parse_agg_query("SUM(y) <- R(x, 'unterminated)").is_err());
        assert!(parse_agg_query("").is_err());
        assert!(parse_body("R(x,y) extra !").is_err());
        assert!(parse_agg_query("SUM(y) <- R(x, y) trailing").is_err());
    }

    #[test]
    fn negative_and_fractional_literals() {
        let b = parse_body("T(x, y, -1), U(z, 3/4)").unwrap();
        assert_eq!(b.atoms()[0].term(2), &Term::Const(Value::int(-1)));
        assert_eq!(
            b.atoms()[1].term(1),
            &Term::Const(Value::Num(rcqa_data::ratio(3, 4)))
        );
    }
}
