//! # rcqa-query
//!
//! Query representation and analysis for the class AGGR\[sjfBCQ\] of the
//! PODS 2024 paper *"Computing Range Consistent Answers to Aggregation
//! Queries via Rewriting"*:
//!
//! * abstract syntax for self-join-free conjunctive queries and aggregation
//!   queries (with GROUP BY / free variables),
//! * a Datalog-style parser and a SQL front-end,
//! * functional-dependency reasoning (`K(q)` and attribute closures),
//! * attack graphs (acyclicity, topological sorts, weak/strong cycles) and the
//!   implied `CERTAINTY(q)` complexity,
//! * Fuxman graphs and the Cforest / Caggforest classes used by ConQuer.

#![warn(missing_docs)]

pub mod ast;
pub mod attack;
pub mod catalog;
pub mod datalog;
pub mod error;
pub mod fd;
pub mod fuxman;
pub mod sql;

pub use ast::{AggQuery, AggTerm, Atom, CmpOp, ConjunctiveQuery, Term, Var, VarPredicate};
pub use attack::{AttackGraph, CertaintyComplexity};
pub use catalog::{Catalog, TableDef};
pub use datalog::{parse_agg_query, parse_body};
pub use error::QueryError;
pub use fd::{Fd, FdSet};
pub use fuxman::{is_caggforest, is_cforest, FuxmanGraph};
pub use sql::{normalize_sql, parse_sql, HavingCond, OrderSpec, SqlQuery};
