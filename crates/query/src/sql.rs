//! SQL front-end: a parser for the SELECT-FROM-WHERE-GROUP BY-HAVING-ORDER
//! BY-LIMIT fragment the paper targets (Section 1), translating into
//! AGGR\[sjfBCQ\] plus the interval-level clauses evaluated over `[glb, lub]`
//! rows.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT [col_ref ,]* AGG( col_ref | * | number ) (, AGG(...))*
//! FROM   table [AS alias] (, table [AS alias])*
//! [WHERE  col_ref = (col_ref | literal) (AND ...)*
//!         | col_ref (< | <= | > | >= | <> | !=) literal (AND ...)*]
//! [GROUP BY col_ref (, col_ref)*]
//! [HAVING AGG(...) (= | < | <= | > | >= | <> | !=) number (AND ...)*]
//! [ORDER BY AGG(...) [ASC | DESC] [LIMIT k]]
//! ```
//!
//! Every table occurrence becomes one atom; equality conditions are applied
//! by unifying variables or substituting constants; non-equality comparisons
//! against literals become [`VarPredicate`]s attached to the query; GROUP BY
//! columns become the free variables of the body. HAVING, ORDER BY and LIMIT
//! operate on the per-group answer *intervals* (certain/possible/violated
//! trichotomy and certain top-k), so they compare aggregates to numeric
//! literals only. Two occurrences of the same table (a self-join) are
//! rejected, matching the paper's restriction to self-join-free queries.
//!
//! Shapes that parse but fall outside the executable fragment (column-column
//! comparisons, ORDER BY a plain column, LIMIT without ORDER BY, …) fail with
//! a precise [`QueryError::Unsupported`] naming the shape — never a tokenizer
//! error.

use crate::ast::{AggQuery, AggTerm, Atom, CmpOp, ConjunctiveQuery, Term, Var, VarPredicate};
use crate::catalog::Catalog;
use crate::error::QueryError;
use rcqa_data::{AggFunc, Rational, Value};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(Rational),
    Comma,
    Dot,
    Star,
    Eq,
    /// A non-equality comparison operator (`<`, `<=`, `>`, `>=`, `<>`,
    /// `!=`). `<>` and `!=` are distinct tokens but normalise to the same
    /// [`CmpOp::Ne`] AST node in the parser.
    Cmp(&'static str),
    LParen,
    RParen,
    Semi,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, QueryError> {
    let chars: Vec<char> = input.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '<' => {
                let (op, len) = match chars.get(i + 1) {
                    Some('=') => ("<=", 2),
                    Some('>') => ("<>", 2),
                    _ => ("<", 1),
                };
                toks.push(Tok::Cmp(op));
                i += len;
            }
            '>' => {
                let (op, len) = match chars.get(i + 1) {
                    Some('=') => (">=", 2),
                    _ => (">", 1),
                };
                toks.push(Tok::Cmp(op));
                i += len;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Cmp("!="));
                i += 2;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(QueryError::Parse("unterminated string literal".into()))
                        }
                        Some(&ch) if ch == quote => {
                            // SQL-standard escape: a doubled quote inside the
                            // literal denotes one quote character.
                            if chars.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let r: Rational = text
                    .parse()
                    .map_err(|_| QueryError::Parse(format!("bad number literal {text:?}")))?;
                toks.push(Tok::Num(r));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "unexpected character {other:?} in SQL query"
                )))
            }
        }
    }
    Ok(toks)
}

/// Normalizes SQL text into a canonical form suitable as a statement-cache
/// key: whitespace runs *outside* string literals collapse to a single space,
/// text outside string literals is case-folded to ASCII uppercase (keywords,
/// table/column identifiers, and aggregate names are all case-insensitive to
/// the parser, so `select sum(s.qty)` and `SELECT SUM(S.Qty)` must share one
/// prepared statement), surrounding whitespace is trimmed, and one trailing
/// statement terminator (`;`) is dropped. Literal contents — including
/// doubled-quote escapes — are preserved verbatim and stay case-sensitive.
///
/// This lives next to [`tokenize`] because the two must agree on where
/// string literals begin and end: two statements may share a normalized form
/// only if they parse identically. Unterminated literals are copied as-is;
/// the parser rejects them later.
pub fn normalize_sql(input: &str) -> String {
    let chars: Vec<char> = input.chars().collect();
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\'' || c == '"' {
            out.push(c);
            i += 1;
            while i < chars.len() {
                out.push(chars[i]);
                if chars[i] == c {
                    // Doubled closing quote: an escape, not a terminator.
                    if chars.get(i + 1) == Some(&c) {
                        out.push(c);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
        } else if c.is_whitespace() {
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            out.push(' ');
        } else {
            // Outside literals the language is case-insensitive; fold to the
            // conventional uppercase (ASCII-only, matching the parser's
            // `eq_ignore_ascii_case` comparisons).
            out.push(c.to_ascii_uppercase());
            i += 1;
        }
    }
    let trimmed = out.trim();
    let trimmed = trimmed
        .strip_suffix(';')
        .map(str::trim_end)
        .unwrap_or(trimmed);
    trimmed.to_string()
}

/// A column reference `alias.column` or bare `column`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColRef {
    qualifier: Option<String>,
    column: String,
}

#[derive(Debug, Clone, PartialEq)]
enum SelectItem {
    Column(ColRef),
    Aggregate(AggFunc, AggArg),
}

#[derive(Debug, Clone, PartialEq)]
enum AggArg {
    Star,
    Column(ColRef),
    Number(Rational),
}

#[derive(Debug, Clone, PartialEq)]
enum RhsValue {
    Column(ColRef),
    Text(String),
    Number(Rational),
}

#[derive(Debug, Clone, PartialEq)]
struct ParsedSql {
    select: Vec<SelectItem>,
    from: Vec<(String, String)>, // (table, alias)
    conditions: Vec<(ColRef, RhsValue)>,
    /// Non-equality WHERE comparisons, always column-vs-literal (the parser
    /// rejects column-column comparisons with a precise error).
    comparisons: Vec<(ColRef, CmpOp, Value)>,
    group_by: Vec<ColRef>,
    /// `HAVING AGG(arg) OP number` conjuncts.
    having: Vec<(AggFunc, AggArg, CmpOp, Rational)>,
    /// `ORDER BY AGG(arg) [ASC|DESC]`.
    order_by: Option<(AggFunc, AggArg, bool)>,
    /// `LIMIT k` (requires ORDER BY).
    limit: Option<usize>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), QueryError> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(QueryError::Parse(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    fn parse_ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(QueryError::Parse(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    fn parse_col_ref(&mut self) -> Result<ColRef, QueryError> {
        let first = self.parse_ident()?;
        if self.peek() == Some(&Tok::Dot) {
            self.next();
            let column = self.parse_ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                column: first,
            })
        }
    }

    /// Parses `AGG( … )` if the upcoming tokens are an aggregate call;
    /// returns `Ok(None)` without consuming anything otherwise.
    fn parse_aggregate(&mut self) -> Result<Option<(AggFunc, AggArg)>, QueryError> {
        let Some(Tok::Ident(name)) = self.peek() else {
            return Ok(None);
        };
        if AggFunc::parse(name).is_none() || self.toks.get(self.pos + 1) != Some(&Tok::LParen) {
            return Ok(None);
        }
        let name = self.parse_ident()?;
        let mut agg = AggFunc::parse(&name).expect("checked above");
        self.expect(&Tok::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        if distinct {
            agg = match agg {
                AggFunc::Count => AggFunc::CountDistinct,
                AggFunc::Sum => AggFunc::SumDistinct,
                other => {
                    return Err(QueryError::Unsupported(format!(
                        "DISTINCT is not supported for {other}"
                    )))
                }
            };
        }
        let arg = match self.peek() {
            Some(Tok::Star) => {
                self.next();
                AggArg::Star
            }
            Some(Tok::Num(_)) => {
                if let Some(Tok::Num(r)) = self.next() {
                    AggArg::Number(r)
                } else {
                    unreachable!()
                }
            }
            _ => AggArg::Column(self.parse_col_ref()?),
        };
        self.expect(&Tok::RParen)?;
        Ok(Some((agg, arg)))
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, QueryError> {
        // Aggregate if identifier is a known aggregate name followed by '('.
        if let Some((agg, arg)) = self.parse_aggregate()? {
            return Ok(SelectItem::Aggregate(agg, arg));
        }
        Ok(SelectItem::Column(self.parse_col_ref()?))
    }

    /// Parses the comparison operator of a HAVING conjunct.
    fn parse_cmp_op(&mut self, clause: &str) -> Result<CmpOp, QueryError> {
        match self.next() {
            Some(Tok::Eq) => Ok(CmpOp::Eq),
            Some(Tok::Cmp(s)) => Ok(CmpOp::parse(s).expect("tokenizer emits known operators")),
            other => Err(QueryError::Parse(format!(
                "expected a comparison operator in {clause}, found {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<ParsedSql, QueryError> {
        self.expect_keyword("SELECT")?;
        let mut select = vec![self.parse_select_item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            select.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.parse_ident()?;
            let alias = if self.eat_keyword("AS") {
                self.parse_ident()?
            } else if let Some(Tok::Ident(s)) = self.peek() {
                // implicit alias, unless the identifier is a keyword
                if ["WHERE", "GROUP", "ORDER", "HAVING", "LIMIT"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw))
                {
                    table.clone()
                } else {
                    self.parse_ident()?
                }
            } else {
                table.clone()
            };
            from.push((table, alias));
            if self.peek() == Some(&Tok::Comma) {
                self.next();
            } else {
                break;
            }
        }
        let mut conditions = Vec::new();
        let mut comparisons = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                let lhs = self.parse_col_ref()?;
                // Non-equality comparisons restrict a column against a
                // literal; column-column comparisons stay outside the
                // executable fragment (equality joins go through the
                // unifier instead) and are rejected by name.
                if let Some(Tok::Cmp(op_str)) = self.peek().cloned() {
                    self.next();
                    let op = CmpOp::parse(op_str).expect("tokenizer emits known operators");
                    let rhs = match self.next() {
                        Some(Tok::Str(s)) => Value::text(s),
                        Some(Tok::Num(r)) => Value::Num(r),
                        Some(Tok::Ident(_)) => {
                            return Err(QueryError::Unsupported(format!(
                                "comparison operator {op_str} between two columns in WHERE: \
                                 non-equality comparisons must be against a literal \
                                 (column {op_str} constant)"
                            )))
                        }
                        other => {
                            return Err(QueryError::Parse(format!(
                                "expected a literal after {op_str}, found {other:?}"
                            )))
                        }
                    };
                    comparisons.push((lhs, op, rhs));
                } else {
                    self.expect(&Tok::Eq)?;
                    let rhs = match self.next() {
                        Some(Tok::Str(s)) => RhsValue::Text(s),
                        Some(Tok::Num(r)) => RhsValue::Number(r),
                        Some(Tok::Ident(name)) => {
                            if self.peek() == Some(&Tok::Dot) {
                                self.next();
                                let column = self.parse_ident()?;
                                RhsValue::Column(ColRef {
                                    qualifier: Some(name),
                                    column,
                                })
                            } else {
                                RhsValue::Column(ColRef {
                                    qualifier: None,
                                    column: name,
                                })
                            }
                        }
                        other => {
                            return Err(QueryError::Parse(format!(
                                "expected a column or literal, found {other:?}"
                            )))
                        }
                    };
                    conditions.push((lhs, rhs));
                }
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_col_ref()?);
            while self.peek() == Some(&Tok::Comma) {
                self.next();
                group_by.push(self.parse_col_ref()?);
            }
        }
        // HAVING conjuncts compare an aggregate's answer interval against a
        // numeric literal; anything else parses but is named unsupported.
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            loop {
                let Some((agg, arg)) = self.parse_aggregate()? else {
                    return Err(QueryError::Unsupported(
                        "HAVING over a non-aggregate expression: only conjunctions of \
                         AGG(...) OP number are supported (the interval trichotomy is \
                         defined over aggregate [glb, lub] bounds)"
                            .into(),
                    ));
                };
                let op = self.parse_cmp_op("HAVING")?;
                let threshold = match self.next() {
                    Some(Tok::Num(r)) => r,
                    Some(Tok::Str(_)) => {
                        return Err(QueryError::Unsupported(
                            "HAVING compares aggregate intervals to numeric literals only".into(),
                        ))
                    }
                    other => {
                        return Err(QueryError::Parse(format!(
                            "expected a number in HAVING, found {other:?}"
                        )))
                    }
                };
                having.push((agg, arg, op, threshold));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        // ORDER BY an aggregate (certain top-k); plain columns are named
        // unsupported rather than silently reordered.
        let mut order_by = None;
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let Some((agg, arg)) = self.parse_aggregate()? else {
                let col = self.parse_col_ref()?;
                return Err(QueryError::Unsupported(format!(
                    "ORDER BY column {}: only ORDER BY over an aggregate is supported \
                     (certain top-k is defined over aggregate [glb, lub] intervals)",
                    col.column
                )));
            };
            let descending = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            if self.peek() == Some(&Tok::Comma) {
                return Err(QueryError::Unsupported(
                    "multiple ORDER BY keys: only a single aggregate sort key is supported".into(),
                ));
            }
            order_by = Some((agg, arg, descending));
        }
        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            let k = match self.next() {
                Some(Tok::Num(r)) => r.to_string().parse::<usize>().map_err(|_| {
                    QueryError::Parse(format!("LIMIT must be a non-negative integer, got {r}"))
                })?,
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected a number after LIMIT, found {other:?}"
                    )))
                }
            };
            if order_by.is_none() {
                return Err(QueryError::Unsupported(
                    "LIMIT without ORDER BY: certain top-k needs an aggregate sort key".into(),
                ));
            }
            limit = Some(k);
        }
        // A single statement terminator may close the query; anything after
        // it (or a second `;`) is trailing garbage, not more SQL.
        if self.peek() == Some(&Tok::Semi) {
            self.next();
        }
        if self.pos != self.toks.len() {
            return Err(QueryError::Parse(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )));
        }
        Ok(ParsedSql {
            select,
            from,
            conditions,
            comparisons,
            group_by,
            having,
            order_by,
            limit,
        })
    }
}

/// Union-find over variable indices, with an optional constant per class.
struct Unifier {
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
}

impl Unifier {
    fn new(n: usize) -> Unifier {
        Unifier {
            parent: (0..n).collect(),
            constant: vec![None; n],
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) -> Result<(), QueryError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        let merged = match (self.constant[ra].clone(), self.constant[rb].clone()) {
            (Some(x), Some(y)) if x != y => {
                return Err(QueryError::Parse(format!(
                    "contradictory constants {x} and {y} for the same column"
                )))
            }
            (Some(x), _) | (_, Some(x)) => Some(x),
            _ => None,
        };
        self.parent[rb] = ra;
        self.constant[ra] = merged;
        Ok(())
    }

    fn assign(&mut self, i: usize, v: Value) -> Result<(), QueryError> {
        let r = self.find(i);
        match &self.constant[r] {
            Some(existing) if existing != &v => Err(QueryError::Parse(format!(
                "contradictory constants {existing} and {v} for the same column"
            ))),
            _ => {
                self.constant[r] = Some(v);
                Ok(())
            }
        }
    }
}

/// A HAVING conjunct `AGG(...) OP number`, evaluated over the `[glb, lub]`
/// interval of the aggregate at `agg_index` in [`SqlQuery::aggregates`].
#[derive(Debug, Clone, PartialEq)]
pub struct HavingCond {
    /// Index into [`SqlQuery::aggregates`] of the compared aggregate.
    pub agg_index: usize,
    /// The comparison operator.
    pub op: CmpOp,
    /// The numeric threshold.
    pub threshold: Rational,
}

/// `ORDER BY AGG(...) [ASC|DESC]`, the sort key of certain top-k.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderSpec {
    /// Index into [`SqlQuery::aggregates`] of the sort-key aggregate.
    pub agg_index: usize,
    /// `true` for DESC.
    pub descending: bool,
}

/// The result of translating a SQL query: one [`AggQuery`] per aggregate
/// (sharing the body), comparison predicates, and the interval-level
/// HAVING / ORDER BY / LIMIT clauses, plus the SELECT-clause column names in
/// output order (group-by columns followed by the aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// The primary translated aggregation query (`aggregates[0]`).
    pub query: AggQuery,
    /// Human-readable output column names, one per GROUP BY column plus one
    /// per SELECT-clause aggregate.
    pub output_columns: Vec<String>,
    /// Every aggregate needed to answer the statement, sharing one body: the
    /// first [`SqlQuery::visible_aggregates`] are the SELECT-clause
    /// aggregates in order; the rest are hidden aggregates referenced only
    /// by HAVING / ORDER BY.
    pub aggregates: Vec<AggQuery>,
    /// How many leading entries of [`SqlQuery::aggregates`] are SELECT items.
    pub visible_aggregates: usize,
    /// Non-equality WHERE comparisons against literals.
    pub predicates: Vec<VarPredicate>,
    /// HAVING conjuncts (interval trichotomy).
    pub having: Vec<HavingCond>,
    /// ORDER BY sort key (certain top-k when paired with `limit`).
    pub order_by: Option<OrderSpec>,
    /// LIMIT k.
    pub limit: Option<usize>,
    /// `true` when a WHERE comparison on a column already forced to a
    /// constant is statically false: no repair has a satisfying embedding,
    /// so grouped queries answer with no rows and closed queries with `⊥`.
    pub unsatisfiable: bool,
}

/// Parses a SQL aggregation query against a [`Catalog`] and translates it into
/// AGGR\[sjfBCQ\].
pub fn parse_sql(input: &str, catalog: &Catalog) -> Result<SqlQuery, QueryError> {
    let mut parser = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    let parsed = parser.parse()?;

    // Reject self-joins (same table twice).
    for i in 0..parsed.from.len() {
        for j in (i + 1)..parsed.from.len() {
            if parsed.from[i].0.eq_ignore_ascii_case(&parsed.from[j].0) {
                return Err(QueryError::SelfJoin(parsed.from[i].0.clone()));
            }
        }
    }

    // Reject duplicate aliases: every FROM item must bind a distinct name.
    // Variable ids are keyed `(alias, position)`, so a repeated alias would
    // silently overwrite the earlier relation's entries and conflate
    // variables across relations instead of erroring.
    for i in 0..parsed.from.len() {
        for j in (i + 1)..parsed.from.len() {
            if parsed.from[i].1.eq_ignore_ascii_case(&parsed.from[j].1) {
                return Err(QueryError::Parse(format!(
                    "duplicate table alias {:?} in FROM",
                    parsed.from[j].1
                )));
            }
        }
    }

    // Assign one variable id per (alias, column position).
    let mut var_ids: BTreeMap<(String, usize), usize> = BTreeMap::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut alias_to_table: BTreeMap<String, String> = BTreeMap::new();
    for (table, alias) in &parsed.from {
        let def = catalog.expect_table(table)?;
        alias_to_table.insert(alias.to_ascii_lowercase(), def.name().to_string());
        for (p, col) in def.columns().iter().enumerate() {
            let id = var_names.len();
            var_names.push(format!(
                "{}_{}",
                alias.to_ascii_lowercase(),
                col.to_ascii_lowercase()
            ));
            var_ids.insert((alias.to_ascii_lowercase(), p), id);
        }
    }
    let mut unifier = Unifier::new(var_names.len());

    // The one shared enumeration of the FROM items that can supply a column
    // reference: alias filtering is case-insensitive, and each candidate
    // carries its variable id and the catalog's declared column spelling.
    // `resolve`, `resolve_root`, and `canonical_column` all feed off this,
    // so the qualifier-matching rules cannot drift apart.
    let candidates = |col: &ColRef| -> Vec<(usize, String)> {
        parsed
            .from
            .iter()
            .filter(|(_, alias)| match &col.qualifier {
                Some(q) => alias.eq_ignore_ascii_case(q),
                None => true,
            })
            .filter_map(|(table, alias)| {
                let def = catalog.table(table)?;
                let p = def.position_of(&col.column)?;
                let id = var_ids.get(&(alias.to_ascii_lowercase(), p)).copied()?;
                Some((id, def.columns()[p].clone()))
            })
            .collect()
    };
    let unknown_column = |col: &ColRef| QueryError::UnknownColumn {
        table: col.qualifier.clone().unwrap_or_else(|| "?".to_string()),
        column: col.column.clone(),
    };
    let ambiguous_column =
        |col: &ColRef| QueryError::Parse(format!("ambiguous column reference {}", col.column));

    // Resolve a column reference to a variable id (strict: used while the
    // unifier is still being built, so every candidate must be one id).
    let resolve = |col: &ColRef| -> Result<usize, QueryError> {
        let found = candidates(col);
        match found.len() {
            1 => Ok(found[0].0),
            0 => Err(unknown_column(col)),
            _ => Err(ambiguous_column(col)),
        }
    };

    // Apply WHERE conditions.
    for (lhs, rhs) in &parsed.conditions {
        let l = resolve(lhs)?;
        match rhs {
            RhsValue::Column(c) => {
                let r = resolve(c)?;
                unifier.union(l, r)?;
            }
            RhsValue::Text(s) => unifier.assign(l, Value::text(s))?,
            RhsValue::Number(r) => unifier.assign(l, Value::Num(*r))?,
        }
    }

    // Resolve a column reference *through the unifier*, for clauses examined
    // after the WHERE conditions were applied: the candidate variables (one
    // per FROM item that has the column) collapse to their union-find roots,
    // so a reference is unambiguous as soon as its candidates were equated —
    // `SELECT S.Town … WHERE D.Town = S.Town GROUP BY D.Town` names one
    // variable, while an un-equated unqualified `Town` over two tables stays
    // ambiguous.
    let resolve_root = |col: &ColRef, unifier: &mut Unifier| -> Result<usize, QueryError> {
        let found = candidates(col);
        if found.is_empty() {
            return Err(unknown_column(col));
        }
        let mut roots: Vec<usize> = Vec::new();
        for (id, _) in &found {
            let root = unifier.find(*id);
            if !roots.contains(&root) {
                roots.push(root);
            }
        }
        if roots.len() == 1 {
            Ok(roots[0])
        } else {
            Err(ambiguous_column(col))
        }
    };

    // Output columns report the catalog's declared spelling: statement text
    // may arrive case-folded by [`normalize_sql`] and the parser is
    // case-insensitive, so the query text's casing is not authoritative.
    let canonical_column = |col: &ColRef| -> String {
        candidates(col)
            .into_iter()
            .next()
            .map(|(_, name)| name)
            .unwrap_or_else(|| col.column.clone())
    };

    // Build the term for a variable id after unification.
    let term_of = |id: usize, unifier: &mut Unifier| -> Term {
        let root = unifier.find(id);
        match &unifier.constant[root] {
            Some(c) => Term::Const(c.clone()),
            None => Term::Var(Var::new(&var_names[root])),
        }
    };

    // Build atoms.
    let mut atoms = Vec::new();
    for (table, alias) in &parsed.from {
        let def = catalog.expect_table(table)?;
        let terms: Vec<Term> = (0..def.columns().len())
            .map(|p| {
                let id = var_ids[&(alias.to_ascii_lowercase(), p)];
                term_of(id, &mut unifier)
            })
            .collect();
        atoms.push(Atom::new(def.name(), terms));
    }

    // SELECT items: non-aggregate columns must be in GROUP BY.
    let mut select_aggs: Vec<(AggFunc, AggArg)> = Vec::new();
    let mut selected_columns: Vec<ColRef> = Vec::new();
    for item in &parsed.select {
        match item {
            SelectItem::Aggregate(agg, arg) => select_aggs.push((*agg, arg.clone())),
            SelectItem::Column(c) => selected_columns.push(c.clone()),
        }
    }
    if select_aggs.is_empty() {
        return Err(QueryError::Unsupported(
            "the SELECT clause must contain an aggregate".into(),
        ));
    }

    // GROUP BY columns resolve to union-find roots; a selected non-aggregate
    // column must name the same *variable* (root) as some GROUP BY column.
    // The old textual qualifier comparison got this wrong in both directions:
    // it rejected `SELECT S.Town … WHERE D.Town = S.Town GROUP BY D.Town`
    // (the columns are unified — one variable) and accepted an ambiguous
    // unqualified `SELECT Town` over two un-equated tables.
    let mut group_roots: Vec<usize> = Vec::new();
    for g in &parsed.group_by {
        group_roots.push(resolve_root(g, &mut unifier)?);
    }
    for c in &selected_columns {
        let root = resolve_root(c, &mut unifier)?;
        if !group_roots.contains(&root) {
            return Err(QueryError::Unsupported(format!(
                "selected column {} must appear in GROUP BY",
                c.column
            )));
        }
    }

    // GROUP BY columns become free variables.
    let mut free_vars: Vec<Var> = Vec::new();
    let mut output_columns: Vec<String> = Vec::new();
    for (g, &root) in parsed.group_by.iter().zip(&group_roots) {
        match &unifier.constant[root] {
            Some(_) => {
                // Grouping by a column forced to a constant is harmless: the
                // group key is fixed; we simply skip it as a free variable.
            }
            None => {
                let v = Var::new(&var_names[root]);
                if !free_vars.contains(&v) {
                    free_vars.push(v);
                }
            }
        }
        output_columns.push(canonical_column(g));
    }

    // Aggregate arguments resolve through the unifier (same rules for SELECT,
    // HAVING, and ORDER BY aggregates).
    let build_term =
        |agg: AggFunc, arg: &AggArg, unifier: &mut Unifier| -> Result<AggTerm, QueryError> {
            match arg {
                AggArg::Star => {
                    if agg != AggFunc::Count && agg != AggFunc::CountDistinct {
                        return Err(QueryError::Unsupported(format!(
                            "{agg}(*) is not supported"
                        )));
                    }
                    Ok(AggTerm::Const(Rational::ONE))
                }
                AggArg::Number(r) => Ok(AggTerm::Const(*r)),
                AggArg::Column(c) => {
                    let root = resolve_root(c, &mut *unifier)?;
                    match &unifier.constant[root] {
                        Some(Value::Num(r)) => Ok(AggTerm::Const(*r)),
                        Some(Value::Text(_)) => Err(QueryError::Unsupported(format!(
                            "aggregating the non-numeric constant column {}",
                            c.column
                        ))),
                        None => Ok(AggTerm::Var(Var::new(&var_names[root]))),
                    }
                }
            }
        };

    // SELECT aggregates come first (they define the output columns); HAVING
    // and ORDER BY aggregates reuse a matching SELECT aggregate or append a
    // hidden one sharing the same body.
    let mut agg_specs: Vec<(AggFunc, AggTerm)> = Vec::new();
    for (agg, arg) in &select_aggs {
        let term = build_term(*agg, arg, &mut unifier)?;
        output_columns.push(format!("{agg}"));
        agg_specs.push((*agg, term));
    }
    let visible_aggregates = agg_specs.len();
    let index_of = |specs: &mut Vec<(AggFunc, AggTerm)>, agg: AggFunc, term: AggTerm| {
        specs
            .iter()
            .position(|(a, t)| *a == agg && *t == term)
            .unwrap_or_else(|| {
                specs.push((agg, term));
                specs.len() - 1
            })
    };
    let mut having = Vec::new();
    for (agg, arg, op, threshold) in &parsed.having {
        let term = build_term(*agg, arg, &mut unifier)?;
        having.push(HavingCond {
            agg_index: index_of(&mut agg_specs, *agg, term),
            op: *op,
            threshold: *threshold,
        });
    }
    let order_by = match &parsed.order_by {
        None => None,
        Some((agg, arg, descending)) => {
            let term = build_term(*agg, arg, &mut unifier)?;
            Some(OrderSpec {
                agg_index: index_of(&mut agg_specs, *agg, term),
                descending: *descending,
            })
        }
    };

    // Non-equality WHERE comparisons: a comparison on a column the equality
    // conditions forced to a constant is decided statically; otherwise it
    // becomes a predicate on the column's body variable.
    let mut predicates: Vec<VarPredicate> = Vec::new();
    let mut unsatisfiable = false;
    for (lhs, op, value) in &parsed.comparisons {
        let root = resolve_root(lhs, &mut unifier)?;
        match &unifier.constant[root] {
            Some(c) => {
                if !op.holds(c.cmp(value)) {
                    unsatisfiable = true;
                }
            }
            None => predicates.push(VarPredicate {
                var: Var::new(&var_names[root]),
                op: *op,
                value: value.clone(),
            }),
        }
    }

    let body = ConjunctiveQuery::with_free_vars(atoms, free_vars);
    let aggregates: Vec<AggQuery> = agg_specs
        .into_iter()
        .map(|(agg, term)| AggQuery::new(agg, term, body.clone()))
        .collect();
    Ok(SqlQuery {
        query: aggregates[0].clone(),
        output_columns,
        aggregates,
        visible_aggregates,
        predicates,
        having,
        order_by,
        limit: parsed.limit,
        unsatisfiable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use proptest::prelude::*;

    fn stock_catalog() -> Catalog {
        Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            )
    }

    #[test]
    fn duplicate_from_aliases_are_rejected() {
        let cat = stock_catalog();
        // Explicit duplicate: `var_ids` entries keyed (alias, position) used
        // to be overwritten silently, conflating X across both relations.
        let err = parse_sql("SELECT SUM(X.Qty) FROM Dealers AS X, Stock AS X", &cat).unwrap_err();
        assert!(err.to_string().contains("duplicate table alias"), "{err}");
        // Case-insensitive, like every other identifier comparison.
        let err = parse_sql("SELECT SUM(x.Qty) FROM Dealers AS x, Stock AS X", &cat).unwrap_err();
        assert!(err.to_string().contains("duplicate table alias"), "{err}");
        // An implicit alias (the table name) colliding with an explicit one
        // is the same bug.
        let err =
            parse_sql("SELECT SUM(Stock.Qty) FROM Dealers AS Stock, Stock", &cat).unwrap_err();
        assert!(err.to_string().contains("duplicate table alias"), "{err}");
        // Distinct aliases keep working.
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S", &cat).is_ok());
    }

    #[test]
    fn select_resolves_through_the_unifier() {
        let cat = stock_catalog();
        // S.Town and D.Town are unified by the WHERE condition: selecting one
        // while grouping by the other names the same variable and must be
        // accepted (the textual qualifier comparison used to reject it).
        let sql = "SELECT S.Town, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY D.Town";
        let out = parse_sql(sql, &cat).unwrap();
        assert_eq!(
            out.output_columns,
            vec!["Town".to_string(), "SUM".to_string()]
        );
        assert_eq!(out.query.group_by().len(), 1);
        // An unqualified reference is unambiguous once its candidates are
        // unified …
        let sql = "SELECT Town, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town GROUP BY Town";
        assert!(parse_sql(sql, &cat).is_ok());
        // … but stays ambiguous without the equating condition — this used
        // to be silently accepted, grouping by an arbitrary Town.
        let sql = "SELECT Town, SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Name = 'Smith' GROUP BY D.Town";
        let err = parse_sql(sql, &cat).unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn normalize_case_folds_outside_literals() {
        // Keywords, aliases, and column identifiers fold to uppercase;
        // literal contents are untouched.
        assert_eq!(
            normalize_sql("select  sum(s.qty) from Stock as s where s.Town = 'New  York'"),
            "SELECT SUM(S.QTY) FROM STOCK AS S WHERE S.TOWN = 'New  York'"
        );
        // The folded and original spellings parse to the same query.
        let cat = stock_catalog();
        let sql = "select d.Name, max(s.Qty) from Dealers as d, Stock as s \
                   where d.Town = s.Town group by d.Name";
        let a = parse_sql(sql, &cat).unwrap();
        let b = parse_sql(&normalize_sql(sql), &cat).unwrap();
        assert_eq!(a, b);
        // Output columns report the catalog's declared spelling either way.
        assert_eq!(
            a.output_columns,
            vec!["Name".to_string(), "MAX".to_string()]
        );
    }

    #[test]
    fn selected_column_with_mismatched_qualifier_is_rejected() {
        // D.Town and S.Town are distinct (un-equated) columns here, so
        // selecting one while grouping by the other must be an error rather
        // than silently grouping by the wrong column.
        let sql = "SELECT D.Town, SUM(S.Qty) \
                   FROM Dealers AS D, Stock AS S \
                   WHERE D.Name = 'Smith' \
                   GROUP BY S.Town";
        let err = parse_sql(sql, &stock_catalog()).unwrap_err();
        assert!(err.to_string().contains("must appear in GROUP BY"), "{err}");
        // Unqualified references to the grouped column stay accepted.
        let sql = "SELECT Name, SUM(S.Qty) \
                   FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town \
                   GROUP BY D.Name";
        assert!(parse_sql(sql, &stock_catalog()).is_ok());
    }

    #[test]
    fn translate_introduction_query() {
        // The GROUP BY example from Section 1 of the paper.
        let sql = "SELECT D.Name, SUM(S.Qty) \
                   FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town \
                   GROUP BY D.Name";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let q = &out.query;
        assert_eq!(q.agg, AggFunc::Sum);
        assert_eq!(q.body.atoms().len(), 2);
        assert_eq!(q.group_by().len(), 1);
        // The shared Town variable must be the same in both atoms.
        let dealers = q.body.atom_for("Dealers").unwrap();
        let stock = q.body.atom_for("Stock").unwrap();
        assert_eq!(dealers.term(1), stock.term(1));
        assert_eq!(
            out.output_columns,
            vec!["Name".to_string(), "SUM".to_string()]
        );
        // Validation against the catalog's schema succeeds.
        assert!(q.validate(&stock_catalog().schema()).is_ok());
    }

    #[test]
    fn translate_constant_selection() {
        // g0 from the introduction: Smith's total stock.
        let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town AND D.Name = 'Smith'";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let q = &out.query;
        assert!(q.is_closed());
        let dealers = q.body.atom_for("Dealers").unwrap();
        assert_eq!(dealers.term(0), &Term::Const(Value::text("Smith")));
        assert_eq!(q.agg, AggFunc::Sum);
    }

    #[test]
    fn count_star_and_numeric_literal_conditions() {
        let sql = "SELECT COUNT(*) FROM Stock AS S WHERE S.Qty = 35";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::Count);
        assert_eq!(out.query.term, AggTerm::Const(Rational::ONE));
        let stock = out.query.body.atom_for("Stock").unwrap();
        assert_eq!(stock.term(2), &Term::Const(Value::int(35)));
    }

    #[test]
    fn distinct_aggregates() {
        let sql = "SELECT COUNT(DISTINCT S.Qty) FROM Stock AS S";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::CountDistinct);
        let sql = "SELECT SUM(DISTINCT S.Qty) FROM Stock AS S";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::SumDistinct);
        let sql = "SELECT MIN(DISTINCT S.Qty) FROM Stock AS S";
        assert!(parse_sql(sql, &stock_catalog()).is_err());
    }

    #[test]
    fn unqualified_columns_and_implicit_alias() {
        let sql = "SELECT MAX(Qty) FROM Stock WHERE Product = 'Tesla X'";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::Max);
        let stock = out.query.body.atom_for("Stock").unwrap();
        assert_eq!(stock.term(0), &Term::Const(Value::text("Tesla X")));
    }

    #[test]
    fn doubled_quote_escapes_in_string_literals() {
        // SQL standard: '' inside a single-quoted literal is one quote.
        let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town AND D.Name = 'O''Brien'";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let dealers = out.query.body.atom_for("Dealers").unwrap();
        assert_eq!(dealers.term(0), &Term::Const(Value::text("O'Brien")));
        // Same for double-quoted literals ("" is one double quote).
        let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town AND D.Name = \"the \"\"Dealer\"\"\"";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let dealers = out.query.body.atom_for("Dealers").unwrap();
        assert_eq!(dealers.term(0), &Term::Const(Value::text("the \"Dealer\"")));
        // An escape at the very end must not swallow the terminator.
        let toks = tokenize("'a''' x").unwrap();
        assert_eq!(toks[0], Tok::Str("a'".to_string()));
        // Unterminated literals (including one ending in an escape) error.
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("'abc''").is_err());
    }

    #[test]
    fn statement_terminator_only_trailing() {
        let cat = stock_catalog();
        // One trailing terminator is fine, with or without whitespace.
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S;", &cat).is_ok());
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S ; ", &cat).is_ok());
        // A semicolon in the middle of a statement is an error, not ignored:
        // this used to parse as `SELECT SUM(Qty) FROM Stock`.
        assert!(parse_sql("SELECT SUM(Qty) FROM ; Stock", &cat).is_err());
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S WHERE ; S.Qty = 1", &cat).is_err());
        // Doubled terminators and leading terminators are errors too.
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S;;", &cat).is_err());
        assert!(parse_sql("; SELECT SUM(S.Qty) FROM Stock AS S", &cat).is_err());
        // A second statement after the terminator is trailing garbage.
        assert!(parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S; SELECT SUM(S.Qty) FROM Stock AS S",
            &cat
        )
        .is_err());
    }

    #[test]
    fn comparison_predicates_parse_and_normalise() {
        let cat = stock_catalog();
        // Every non-equality operator parses into a predicate on the column's
        // body variable; `<>` and `!=` normalise to the one `Ne` node.
        for (op, cmp) in [
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
            ("<>", CmpOp::Ne),
            ("!=", CmpOp::Ne),
        ] {
            let sql = format!("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Qty {op} 35");
            let out = parse_sql(&sql, &cat).unwrap();
            assert_eq!(out.predicates.len(), 1, "{op}");
            assert_eq!(out.predicates[0].op, cmp, "{op}");
            assert_eq!(out.predicates[0].value, Value::int(35), "{op}");
            assert!(!out.unsatisfiable);
        }
        let a = parse_sql("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Qty <> 35", &cat).unwrap();
        let b = parse_sql("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Qty != 35", &cat).unwrap();
        assert_eq!(a, b, "<> and != must produce identical ASTs");
        // Comparisons compose with equality conditions mid-conjunction.
        let out = parse_sql(
            "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town AND S.Qty >= 10",
            &cat,
        )
        .unwrap();
        assert_eq!(out.predicates.len(), 1);
        assert_eq!(out.predicates[0].op, CmpOp::Ge);
        // Column-column comparisons stay outside the fragment, named by
        // operator — not a tokenizer error.
        let err = parse_sql(
            "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
             WHERE D.Town = S.Town AND S.Qty >= D.Name",
            &cat,
        )
        .unwrap_err();
        match &err {
            QueryError::Unsupported(msg) => {
                assert!(msg.contains(">="), "{msg}");
                assert!(msg.contains("two columns"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // A comparison on a column forced to a constant is decided statically.
        let out = parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Town = 'a' AND S.Town < 'b'",
            &cat,
        )
        .unwrap();
        assert!(out.predicates.is_empty() && !out.unsatisfiable);
        let out = parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Town = 'b' AND S.Town < 'a'",
            &cat,
        )
        .unwrap();
        assert!(out.unsatisfiable);
        // A bare `!` (not part of `!=`) stays a character-level parse error.
        assert!(matches!(
            parse_sql("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Qty ! 35", &cat),
            Err(QueryError::Parse(_))
        ));
        // Equality keeps working.
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Qty = 35", &cat).is_ok());
    }

    #[test]
    fn having_order_by_and_limit_parse() {
        let cat = stock_catalog();
        let sql = "SELECT S.Town, SUM(S.Qty), COUNT(*) FROM Stock AS S GROUP BY S.Town \
                   HAVING SUM(S.Qty) > 10 AND MIN(S.Qty) <> 3 \
                   ORDER BY SUM(S.Qty) DESC LIMIT 2";
        let out = parse_sql(sql, &cat).unwrap();
        assert_eq!(out.visible_aggregates, 2);
        // SELECT SUM and COUNT, plus the hidden MIN from HAVING; the HAVING
        // SUM reuses the SELECT aggregate.
        assert_eq!(out.aggregates.len(), 3);
        assert_eq!(out.having.len(), 2);
        assert_eq!(out.having[0].agg_index, 0);
        assert_eq!(out.having[0].op, CmpOp::Gt);
        assert_eq!(out.having[1].agg_index, 2);
        assert_eq!(out.having[1].op, CmpOp::Ne);
        assert_eq!(
            out.order_by,
            Some(OrderSpec {
                agg_index: 0,
                descending: true
            })
        );
        assert_eq!(out.limit, Some(2));
        assert_eq!(out.output_columns, vec!["Town", "SUM", "COUNT"]);
        assert_eq!(out.query, out.aggregates[0]);
        // HAVING without GROUP BY (the single implicit group) parses too.
        let out = parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S HAVING COUNT(*) >= 1",
            &cat,
        )
        .unwrap();
        assert_eq!(out.aggregates.len(), 2);
        assert_eq!(out.having[0].agg_index, 1);
        // ORDER BY ASC and bare ORDER BY both mean ascending.
        let asc = parse_sql(
            "SELECT S.Town, MAX(S.Qty) FROM Stock AS S GROUP BY S.Town ORDER BY MAX(S.Qty) ASC",
            &cat,
        )
        .unwrap();
        let bare = parse_sql(
            "SELECT S.Town, MAX(S.Qty) FROM Stock AS S GROUP BY S.Town ORDER BY MAX(S.Qty)",
            &cat,
        )
        .unwrap();
        assert_eq!(asc.order_by, bare.order_by);
        assert!(!asc.order_by.unwrap().descending);
    }

    #[test]
    fn staged_unsupported_shapes_are_named() {
        let cat = stock_catalog();
        let unsupported = |sql: &str| -> String {
            match parse_sql(sql, &cat).unwrap_err() {
                QueryError::Unsupported(msg) => msg,
                other => panic!("{sql}: expected Unsupported, got {other:?}"),
            }
        };
        // Each shape that parses but isn't executable fails with a message
        // naming the shape precisely.
        let msg = unsupported(
            "SELECT S.Town, SUM(S.Qty) FROM Stock AS S GROUP BY S.Town ORDER BY S.Town",
        );
        assert!(msg.contains("ORDER BY column Town"), "{msg}");
        let msg = unsupported("SELECT SUM(S.Qty) FROM Stock AS S LIMIT 5");
        assert!(msg.contains("LIMIT without ORDER BY"), "{msg}");
        let msg = unsupported(
            "SELECT S.Town, SUM(S.Qty) FROM Stock AS S GROUP BY S.Town HAVING S.Town = 'a'",
        );
        assert!(msg.contains("non-aggregate"), "{msg}");
        let msg = unsupported(
            "SELECT S.Town, SUM(S.Qty) FROM Stock AS S GROUP BY S.Town HAVING SUM(S.Qty) > 'a'",
        );
        assert!(msg.contains("numeric literals"), "{msg}");
        let msg = unsupported(
            "SELECT S.Town, MAX(S.Qty) FROM Stock AS S GROUP BY S.Town \
             ORDER BY MAX(S.Qty), MIN(S.Qty)",
        );
        assert!(msg.contains("multiple ORDER BY keys"), "{msg}");
    }

    #[test]
    fn errors() {
        let cat = stock_catalog();
        // self-join
        assert!(matches!(
            parse_sql("SELECT SUM(a.Qty) FROM Stock AS a, Stock AS b", &cat),
            Err(QueryError::SelfJoin(_))
        ));
        // unknown table
        assert!(parse_sql("SELECT SUM(x.Qty) FROM Nope AS x", &cat).is_err());
        // unknown column
        assert!(matches!(
            parse_sql("SELECT SUM(S.Weight) FROM Stock AS S", &cat),
            Err(QueryError::UnknownColumn { .. })
        ));
        // no aggregate
        assert!(parse_sql("SELECT S.Qty FROM Stock AS S", &cat).is_err());
        // selected column not grouped
        assert!(parse_sql("SELECT S.Town, SUM(S.Qty) FROM Stock AS S", &cat).is_err());
        // contradictory constants
        assert!(parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Town = 'a' AND S.Town = 'b'",
            &cat
        )
        .is_err());
        // trailing garbage
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S GARBAGE 5", &cat).is_err());
        // a fractional or negative LIMIT is a parse error
        assert!(matches!(
            parse_sql(
                "SELECT MAX(S.Qty) FROM Stock AS S ORDER BY MAX(S.Qty) LIMIT 2.5",
                &cat
            ),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            parse_sql(
                "SELECT MAX(S.Qty) FROM Stock AS S ORDER BY MAX(S.Qty) LIMIT -1",
                &cat
            ),
            Err(QueryError::Parse(_))
        ));
    }

    /// Deterministically re-spells `word` with a per-bit random case and
    /// appends it to `out`, prefixed by a random whitespace run.
    fn push_respelled(out: &mut String, word: &str, mut bits: u64) {
        const WS: &[&str] = &[" ", "  ", "\t", "\n ", " \t "];
        out.push_str(WS[(bits % WS.len() as u64) as usize]);
        bits /= WS.len() as u64;
        for c in word.chars() {
            if bits & 1 == 1 {
                out.extend(c.to_uppercase());
            } else {
                out.extend(c.to_lowercase());
            }
            bits >>= 1;
        }
    }

    /// Builds a syntactically valid statement over [`stock_catalog`] from a
    /// vector of draws: aggregate, shape (closed / grouped / unqualified),
    /// literal, optional comparison predicate, HAVING, ORDER BY / LIMIT, and
    /// terminator — each keyword and identifier re-spelled with random case
    /// and whitespace.
    const SQL_CHOICES: usize = 33;

    fn build_sql(choices: &[u64]) -> String {
        let pick = |i: usize, n: usize| (choices[i] % n as u64) as usize;
        let mut sql = String::new();
        let agg = ["SUM", "MIN", "MAX", "COUNT", "AVG"][pick(0, 5)];
        push_respelled(&mut sql, "SELECT", choices[1]);
        let grouped = pick(2, 2) == 1;
        if grouped {
            push_respelled(&mut sql, "D.Name,", choices[3]);
        }
        push_respelled(&mut sql, agg, choices[4]);
        sql.push('(');
        push_respelled(&mut sql, "S.Qty", choices[5]);
        sql.push(')');
        // Optionally a second SELECT aggregate (multi-aggregate lists).
        if pick(25, 2) == 1 {
            sql.push(',');
            push_respelled(&mut sql, "COUNT", choices[26]);
            sql.push_str("(*)");
        }
        push_respelled(&mut sql, "FROM", choices[6]);
        push_respelled(&mut sql, "Dealers", choices[7]);
        push_respelled(&mut sql, "AS", choices[8]);
        push_respelled(&mut sql, "D,", choices[9]);
        push_respelled(&mut sql, "Stock", choices[10]);
        push_respelled(&mut sql, "AS", choices[11]);
        push_respelled(&mut sql, "S", choices[12]);
        push_respelled(&mut sql, "WHERE", choices[13]);
        push_respelled(&mut sql, "D.Town", choices[14]);
        sql.push('=');
        push_respelled(&mut sql, "S.Town", choices[15]);
        match pick(16, 4) {
            0 => {}
            1 => {
                push_respelled(&mut sql, "AND", choices[17]);
                push_respelled(&mut sql, "D.Name", choices[18]);
                sql.push('=');
                // Literals keep their exact spelling, including escapes and
                // interior whitespace.
                sql.push_str(
                    ["'Smith'", "'O''Brien'", "'New  York'", "\"a \"\"b\"\"\""][pick(19, 4)],
                );
            }
            2 => {
                push_respelled(&mut sql, "AND", choices[17]);
                push_respelled(&mut sql, "S.Qty", choices[18]);
                sql.push('=');
                sql.push_str(["35", "3.5", "-7"][pick(19, 3)]);
            }
            _ => {
                // Comparison predicate over the new operator palette.
                push_respelled(&mut sql, "AND", choices[17]);
                push_respelled(&mut sql, "S.Qty", choices[18]);
                sql.push_str(["<", "<=", ">", ">=", "<>", "!="][pick(27, 6)]);
                sql.push_str(["35", "3.5", "-7"][pick(19, 3)]);
            }
        }
        if grouped {
            push_respelled(&mut sql, "GROUP", choices[20]);
            push_respelled(&mut sql, "BY", choices[21]);
            push_respelled(&mut sql, "D.Name", choices[22]);
        }
        if pick(28, 2) == 1 {
            push_respelled(&mut sql, "HAVING", choices[29]);
            push_respelled(&mut sql, "SUM", choices[26]);
            sql.push('(');
            push_respelled(&mut sql, "S.Qty", choices[5]);
            sql.push(')');
            sql.push_str(["=", "<", "<=", ">", ">=", "<>", "!="][pick(30, 7)]);
            sql.push_str("10");
        }
        if pick(31, 2) == 1 {
            push_respelled(&mut sql, "ORDER", choices[29]);
            push_respelled(&mut sql, "BY", choices[21]);
            push_respelled(&mut sql, "MAX", choices[26]);
            sql.push('(');
            push_respelled(&mut sql, "S.Qty", choices[5]);
            sql.push(')');
            match pick(32, 3) {
                0 => {}
                1 => push_respelled(&mut sql, "ASC", choices[29]),
                _ => push_respelled(&mut sql, "DESC", choices[29]),
            }
            if pick(24, 2) == 1 {
                push_respelled(&mut sql, "LIMIT", choices[29]);
                sql.push_str(" 3");
            }
        }
        if pick(23, 2) == 1 {
            push_respelled(&mut sql, ";", choices[24]);
        }
        sql
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The tokenizer and normalizer are total: no input panics them, and
        /// normalization never breaks tokenization that succeeded.
        #[test]
        fn prop_tokenize_never_panics(bytes in proptest::collection::vec(0u64..u64::MAX, 0..48)) {
            // A palette heavy on SQL punctuation, quote characters, and edge
            // cases (unterminated literals, doubled quotes, lone escapes),
            // plus arbitrary unicode drawn from the raw value.
            const PALETTE: &[char] = &[
                'a', 'Z', '0', '9', ' ', '\t', '\n', '\'', '"', ';', '.', ',', '*', '=', '(',
                ')', '_', '-', '/', '<', '>', '!', 'é', 'Ω',
            ];
            let s: String = bytes
                .iter()
                .map(|&b| {
                    if b % 4 == 0 {
                        char::from_u32((b >> 2) as u32 % 0x11_0000).unwrap_or('\u{FFFD}')
                    } else {
                        PALETTE[(b as usize / 4) % PALETTE.len()]
                    }
                })
                .collect();
            let direct = tokenize(&s);
            let normalized = normalize_sql(&s);
            let folded = tokenize(&normalized);
            // Tokenization of the normalized text can only fail if the
            // original failed too (normalization preserves literal structure).
            prop_assert!(direct.is_err() || folded.is_ok(), "{:?} vs {:?}", s, normalized);
        }

        /// Normalization is parse-transparent: for generated statements,
        /// parsing the normalized spelling yields exactly the same query as
        /// parsing the original.
        #[test]
        fn prop_parse_of_normalized_equals_parse(choices in proptest::collection::vec(0u64..u64::MAX, SQL_CHOICES)) {
            let cat = stock_catalog();
            let sql = build_sql(&choices);
            let direct = parse_sql(&sql, &cat);
            let normalized = parse_sql(&normalize_sql(&sql), &cat);
            match (direct, normalized) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{}", sql),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("normalization changed the outcome of {sql:?}: {a:?} vs {b:?}"),
            }
        }

        /// `<>` and `!=` are one operator: for any generated statement whose
        /// WHERE carries a not-equal comparison, the two spellings parse to
        /// identical ASTs.
        #[test]
        fn prop_ne_spellings_identical_ast(choices in proptest::collection::vec(0u64..u64::MAX, SQL_CHOICES)) {
            let cat = stock_catalog();
            let mut with_angle = choices.clone();
            with_angle[16] = 3; // force the comparison arm
            with_angle[27] = 4; // "<>"
            let mut with_bang = with_angle.clone();
            with_bang[27] = 5; // "!="
            let a = parse_sql(&build_sql(&with_angle), &cat);
            let b = parse_sql(&build_sql(&with_bang), &cat);
            prop_assert_eq!(a, b);
        }
    }
}
