//! SQL front-end: a parser for the SELECT-FROM-WHERE-GROUP BY fragment the
//! paper targets (Section 1), translating into AGGR\[sjfBCQ\].
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT [col_ref ,]* AGG( col_ref | * | number )
//! FROM   table [AS alias] (, table [AS alias])*
//! [WHERE  col_ref = (col_ref | literal) (AND ...)*]
//! [GROUP BY col_ref (, col_ref)*]
//! ```
//!
//! Every table occurrence becomes one atom; equality conditions are applied
//! by unifying variables or substituting constants; GROUP BY columns become
//! the free variables of the body. Two occurrences of the same table (a
//! self-join) are rejected, matching the paper's restriction to
//! self-join-free queries.

use crate::ast::{AggQuery, AggTerm, Atom, ConjunctiveQuery, Term, Var};
use crate::catalog::Catalog;
use crate::error::QueryError;
use rcqa_data::{AggFunc, Rational, Value};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(Rational),
    Comma,
    Dot,
    Star,
    Eq,
    LParen,
    RParen,
    Semi,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, QueryError> {
    let chars: Vec<char> = input.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(QueryError::Parse("unterminated string literal".into()))
                        }
                        Some(&ch) if ch == quote => {
                            // SQL-standard escape: a doubled quote inside the
                            // literal denotes one quote character.
                            if chars.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let r: Rational = text
                    .parse()
                    .map_err(|_| QueryError::Parse(format!("bad number literal {text:?}")))?;
                toks.push(Tok::Num(r));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "unexpected character {other:?} in SQL query"
                )))
            }
        }
    }
    Ok(toks)
}

/// Normalizes SQL text into a canonical form suitable as a statement-cache
/// key: whitespace runs *outside* string literals collapse to a single space,
/// surrounding whitespace is trimmed, and one trailing statement terminator
/// (`;`) is dropped. Literal contents — including doubled-quote escapes — are
/// preserved verbatim.
///
/// This lives next to [`tokenize`] because the two must agree on where
/// string literals begin and end: two statements may share a normalized form
/// only if they tokenize identically. Unterminated literals are copied as-is;
/// the parser rejects them later.
pub fn normalize_sql(input: &str) -> String {
    let chars: Vec<char> = input.chars().collect();
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\'' || c == '"' {
            out.push(c);
            i += 1;
            while i < chars.len() {
                out.push(chars[i]);
                if chars[i] == c {
                    // Doubled closing quote: an escape, not a terminator.
                    if chars.get(i + 1) == Some(&c) {
                        out.push(c);
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
        } else if c.is_whitespace() {
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            out.push(' ');
        } else {
            out.push(c);
            i += 1;
        }
    }
    let trimmed = out.trim();
    let trimmed = trimmed
        .strip_suffix(';')
        .map(str::trim_end)
        .unwrap_or(trimmed);
    trimmed.to_string()
}

/// A column reference `alias.column` or bare `column`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColRef {
    qualifier: Option<String>,
    column: String,
}

#[derive(Debug, Clone, PartialEq)]
enum SelectItem {
    Column(ColRef),
    Aggregate(AggFunc, AggArg),
}

#[derive(Debug, Clone, PartialEq)]
enum AggArg {
    Star,
    Column(ColRef),
    Number(Rational),
}

#[derive(Debug, Clone, PartialEq)]
enum RhsValue {
    Column(ColRef),
    Text(String),
    Number(Rational),
}

#[derive(Debug, Clone, PartialEq)]
struct ParsedSql {
    select: Vec<SelectItem>,
    from: Vec<(String, String)>, // (table, alias)
    conditions: Vec<(ColRef, RhsValue)>,
    group_by: Vec<ColRef>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), QueryError> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            other => Err(QueryError::Parse(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    fn parse_ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(QueryError::Parse(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    fn parse_col_ref(&mut self) -> Result<ColRef, QueryError> {
        let first = self.parse_ident()?;
        if self.peek() == Some(&Tok::Dot) {
            self.next();
            let column = self.parse_ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, QueryError> {
        // Aggregate if identifier is a known aggregate name followed by '('.
        if let Some(Tok::Ident(name)) = self.peek() {
            let is_agg =
                AggFunc::parse(name).is_some() && self.toks.get(self.pos + 1) == Some(&Tok::LParen);
            if is_agg {
                let name = self.parse_ident()?;
                let mut agg = AggFunc::parse(&name).expect("checked above");
                self.expect(&Tok::LParen)?;
                let distinct = self.eat_keyword("DISTINCT");
                if distinct {
                    agg = match agg {
                        AggFunc::Count => AggFunc::CountDistinct,
                        AggFunc::Sum => AggFunc::SumDistinct,
                        other => {
                            return Err(QueryError::Unsupported(format!(
                                "DISTINCT is not supported for {other}"
                            )))
                        }
                    };
                }
                let arg = match self.peek() {
                    Some(Tok::Star) => {
                        self.next();
                        AggArg::Star
                    }
                    Some(Tok::Num(_)) => {
                        if let Some(Tok::Num(r)) = self.next() {
                            AggArg::Number(r)
                        } else {
                            unreachable!()
                        }
                    }
                    _ => AggArg::Column(self.parse_col_ref()?),
                };
                self.expect(&Tok::RParen)?;
                return Ok(SelectItem::Aggregate(agg, arg));
            }
        }
        Ok(SelectItem::Column(self.parse_col_ref()?))
    }

    fn parse(&mut self) -> Result<ParsedSql, QueryError> {
        self.expect_keyword("SELECT")?;
        let mut select = vec![self.parse_select_item()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            select.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.parse_ident()?;
            let alias = if self.eat_keyword("AS") {
                self.parse_ident()?
            } else if let Some(Tok::Ident(s)) = self.peek() {
                // implicit alias, unless the identifier is a keyword
                if ["WHERE", "GROUP", "ORDER"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw))
                {
                    table.clone()
                } else {
                    self.parse_ident()?
                }
            } else {
                table.clone()
            };
            from.push((table, alias));
            if self.peek() == Some(&Tok::Comma) {
                self.next();
            } else {
                break;
            }
        }
        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                let lhs = self.parse_col_ref()?;
                self.expect(&Tok::Eq)?;
                let rhs = match self.next() {
                    Some(Tok::Str(s)) => RhsValue::Text(s),
                    Some(Tok::Num(r)) => RhsValue::Number(r),
                    Some(Tok::Ident(name)) => {
                        if self.peek() == Some(&Tok::Dot) {
                            self.next();
                            let column = self.parse_ident()?;
                            RhsValue::Column(ColRef {
                                qualifier: Some(name),
                                column,
                            })
                        } else {
                            RhsValue::Column(ColRef {
                                qualifier: None,
                                column: name,
                            })
                        }
                    }
                    other => {
                        return Err(QueryError::Parse(format!(
                            "expected a column or literal, found {other:?}"
                        )))
                    }
                };
                conditions.push((lhs, rhs));
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_col_ref()?);
            while self.peek() == Some(&Tok::Comma) {
                self.next();
                group_by.push(self.parse_col_ref()?);
            }
        }
        // A single statement terminator may close the query; anything after
        // it (or a second `;`) is trailing garbage, not more SQL.
        if self.peek() == Some(&Tok::Semi) {
            self.next();
        }
        if self.pos != self.toks.len() {
            return Err(QueryError::Parse(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )));
        }
        Ok(ParsedSql {
            select,
            from,
            conditions,
            group_by,
        })
    }
}

/// Union-find over variable indices, with an optional constant per class.
struct Unifier {
    parent: Vec<usize>,
    constant: Vec<Option<Value>>,
}

impl Unifier {
    fn new(n: usize) -> Unifier {
        Unifier {
            parent: (0..n).collect(),
            constant: vec![None; n],
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) -> Result<(), QueryError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        let merged = match (self.constant[ra].clone(), self.constant[rb].clone()) {
            (Some(x), Some(y)) if x != y => {
                return Err(QueryError::Parse(format!(
                    "contradictory constants {x} and {y} for the same column"
                )))
            }
            (Some(x), _) | (_, Some(x)) => Some(x),
            _ => None,
        };
        self.parent[rb] = ra;
        self.constant[ra] = merged;
        Ok(())
    }

    fn assign(&mut self, i: usize, v: Value) -> Result<(), QueryError> {
        let r = self.find(i);
        match &self.constant[r] {
            Some(existing) if existing != &v => Err(QueryError::Parse(format!(
                "contradictory constants {existing} and {v} for the same column"
            ))),
            _ => {
                self.constant[r] = Some(v);
                Ok(())
            }
        }
    }
}

/// The result of translating a SQL query: an [`AggQuery`] plus, for reporting,
/// the SELECT-clause column names in output order (group-by columns followed
/// by the aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// The translated aggregation query.
    pub query: AggQuery,
    /// Human-readable output column names, one per GROUP BY column plus one
    /// for the aggregate.
    pub output_columns: Vec<String>,
}

/// Parses a SQL aggregation query against a [`Catalog`] and translates it into
/// AGGR\[sjfBCQ\].
pub fn parse_sql(input: &str, catalog: &Catalog) -> Result<SqlQuery, QueryError> {
    let mut parser = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    let parsed = parser.parse()?;

    // Reject self-joins (same table twice).
    for i in 0..parsed.from.len() {
        for j in (i + 1)..parsed.from.len() {
            if parsed.from[i].0.eq_ignore_ascii_case(&parsed.from[j].0) {
                return Err(QueryError::SelfJoin(parsed.from[i].0.clone()));
            }
        }
    }

    // Assign one variable id per (alias, column position).
    let mut var_ids: BTreeMap<(String, usize), usize> = BTreeMap::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut alias_to_table: BTreeMap<String, String> = BTreeMap::new();
    for (table, alias) in &parsed.from {
        let def = catalog.expect_table(table)?;
        alias_to_table.insert(alias.to_ascii_lowercase(), def.name().to_string());
        for (p, col) in def.columns().iter().enumerate() {
            let id = var_names.len();
            var_names.push(format!(
                "{}_{}",
                alias.to_ascii_lowercase(),
                col.to_ascii_lowercase()
            ));
            var_ids.insert((alias.to_ascii_lowercase(), p), id);
        }
    }
    let mut unifier = Unifier::new(var_names.len());

    // Resolve a column reference to a variable id.
    let resolve = |col: &ColRef| -> Result<usize, QueryError> {
        let candidates: Vec<usize> = parsed
            .from
            .iter()
            .filter(|(_, alias)| match &col.qualifier {
                Some(q) => alias.eq_ignore_ascii_case(q),
                None => true,
            })
            .filter_map(|(table, alias)| {
                let def = catalog.table(table)?;
                let p = def.position_of(&col.column)?;
                var_ids.get(&(alias.to_ascii_lowercase(), p)).copied()
            })
            .collect();
        match candidates.len() {
            1 => Ok(candidates[0]),
            0 => Err(QueryError::UnknownColumn {
                table: col.qualifier.clone().unwrap_or_else(|| "?".to_string()),
                column: col.column.clone(),
            }),
            _ => Err(QueryError::Parse(format!(
                "ambiguous column reference {}",
                col.column
            ))),
        }
    };

    // Apply WHERE conditions.
    for (lhs, rhs) in &parsed.conditions {
        let l = resolve(lhs)?;
        match rhs {
            RhsValue::Column(c) => {
                let r = resolve(c)?;
                unifier.union(l, r)?;
            }
            RhsValue::Text(s) => unifier.assign(l, Value::text(s))?,
            RhsValue::Number(r) => unifier.assign(l, Value::Num(*r))?,
        }
    }

    // Build the term for a variable id after unification.
    let term_of = |id: usize, unifier: &mut Unifier| -> Term {
        let root = unifier.find(id);
        match &unifier.constant[root] {
            Some(c) => Term::Const(c.clone()),
            None => Term::Var(Var::new(&var_names[root])),
        }
    };

    // Build atoms.
    let mut atoms = Vec::new();
    for (table, alias) in &parsed.from {
        let def = catalog.expect_table(table)?;
        let terms: Vec<Term> = (0..def.columns().len())
            .map(|p| {
                let id = var_ids[&(alias.to_ascii_lowercase(), p)];
                term_of(id, &mut unifier)
            })
            .collect();
        atoms.push(Atom::new(def.name(), terms));
    }

    // SELECT items: non-aggregate columns must be in GROUP BY.
    let mut aggregate: Option<(AggFunc, AggArg)> = None;
    let mut selected_columns: Vec<ColRef> = Vec::new();
    for item in &parsed.select {
        match item {
            SelectItem::Aggregate(agg, arg) => {
                if aggregate.is_some() {
                    return Err(QueryError::Unsupported(
                        "only one aggregate per query is supported".into(),
                    ));
                }
                aggregate = Some((*agg, arg.clone()));
            }
            SelectItem::Column(c) => selected_columns.push(c.clone()),
        }
    }
    let (agg, arg) = aggregate.ok_or_else(|| {
        QueryError::Unsupported("the SELECT clause must contain an aggregate".into())
    })?;

    for c in &selected_columns {
        // Same column name, and compatible qualifiers: equal, or one side
        // unqualified (an unqualified reference resolves to the same column).
        let in_group_by = parsed.group_by.iter().any(|g| {
            g.column.eq_ignore_ascii_case(&c.column)
                && (g.qualifier == c.qualifier || g.qualifier.is_none() || c.qualifier.is_none())
        });
        if !in_group_by {
            return Err(QueryError::Unsupported(format!(
                "selected column {} must appear in GROUP BY",
                c.column
            )));
        }
    }

    // GROUP BY columns become free variables.
    let mut free_vars: Vec<Var> = Vec::new();
    let mut output_columns: Vec<String> = Vec::new();
    for g in &parsed.group_by {
        let id = resolve(g)?;
        let root = unifier.find(id);
        match &unifier.constant[root] {
            Some(_) => {
                // Grouping by a column forced to a constant is harmless: the
                // group key is fixed; we simply skip it as a free variable.
            }
            None => {
                let v = Var::new(&var_names[root]);
                if !free_vars.contains(&v) {
                    free_vars.push(v);
                }
            }
        }
        output_columns.push(g.column.clone());
    }

    // Aggregate argument.
    let term = match arg {
        AggArg::Star => {
            if agg != AggFunc::Count && agg != AggFunc::CountDistinct {
                return Err(QueryError::Unsupported(format!(
                    "{agg}(*) is not supported"
                )));
            }
            AggTerm::Const(Rational::ONE)
        }
        AggArg::Number(r) => AggTerm::Const(r),
        AggArg::Column(c) => {
            let id = resolve(&c)?;
            let root = unifier.find(id);
            match &unifier.constant[root] {
                Some(Value::Num(r)) => AggTerm::Const(*r),
                Some(Value::Text(_)) => {
                    return Err(QueryError::Unsupported(format!(
                        "aggregating the non-numeric constant column {}",
                        c.column
                    )))
                }
                None => AggTerm::Var(Var::new(&var_names[root])),
            }
        }
    };
    output_columns.push(format!("{agg}"));

    let body = ConjunctiveQuery::with_free_vars(atoms, free_vars);
    Ok(SqlQuery {
        query: AggQuery::new(agg, term, body),
        output_columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;

    fn stock_catalog() -> Catalog {
        Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            )
    }

    #[test]
    fn selected_column_with_mismatched_qualifier_is_rejected() {
        // D.Town and S.Town are distinct (un-equated) columns here, so
        // selecting one while grouping by the other must be an error rather
        // than silently grouping by the wrong column.
        let sql = "SELECT D.Town, SUM(S.Qty) \
                   FROM Dealers AS D, Stock AS S \
                   WHERE D.Name = 'Smith' \
                   GROUP BY S.Town";
        let err = parse_sql(sql, &stock_catalog()).unwrap_err();
        assert!(err.to_string().contains("must appear in GROUP BY"), "{err}");
        // Unqualified references to the grouped column stay accepted.
        let sql = "SELECT Name, SUM(S.Qty) \
                   FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town \
                   GROUP BY D.Name";
        assert!(parse_sql(sql, &stock_catalog()).is_ok());
    }

    #[test]
    fn translate_introduction_query() {
        // The GROUP BY example from Section 1 of the paper.
        let sql = "SELECT D.Name, SUM(S.Qty) \
                   FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town \
                   GROUP BY D.Name";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let q = &out.query;
        assert_eq!(q.agg, AggFunc::Sum);
        assert_eq!(q.body.atoms().len(), 2);
        assert_eq!(q.group_by().len(), 1);
        // The shared Town variable must be the same in both atoms.
        let dealers = q.body.atom_for("Dealers").unwrap();
        let stock = q.body.atom_for("Stock").unwrap();
        assert_eq!(dealers.term(1), stock.term(1));
        assert_eq!(
            out.output_columns,
            vec!["Name".to_string(), "SUM".to_string()]
        );
        // Validation against the catalog's schema succeeds.
        assert!(q.validate(&stock_catalog().schema()).is_ok());
    }

    #[test]
    fn translate_constant_selection() {
        // g0 from the introduction: Smith's total stock.
        let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town AND D.Name = 'Smith'";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let q = &out.query;
        assert!(q.is_closed());
        let dealers = q.body.atom_for("Dealers").unwrap();
        assert_eq!(dealers.term(0), &Term::Const(Value::text("Smith")));
        assert_eq!(q.agg, AggFunc::Sum);
    }

    #[test]
    fn count_star_and_numeric_literal_conditions() {
        let sql = "SELECT COUNT(*) FROM Stock AS S WHERE S.Qty = 35";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::Count);
        assert_eq!(out.query.term, AggTerm::Const(Rational::ONE));
        let stock = out.query.body.atom_for("Stock").unwrap();
        assert_eq!(stock.term(2), &Term::Const(Value::int(35)));
    }

    #[test]
    fn distinct_aggregates() {
        let sql = "SELECT COUNT(DISTINCT S.Qty) FROM Stock AS S";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::CountDistinct);
        let sql = "SELECT SUM(DISTINCT S.Qty) FROM Stock AS S";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::SumDistinct);
        let sql = "SELECT MIN(DISTINCT S.Qty) FROM Stock AS S";
        assert!(parse_sql(sql, &stock_catalog()).is_err());
    }

    #[test]
    fn unqualified_columns_and_implicit_alias() {
        let sql = "SELECT MAX(Qty) FROM Stock WHERE Product = 'Tesla X'";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        assert_eq!(out.query.agg, AggFunc::Max);
        let stock = out.query.body.atom_for("Stock").unwrap();
        assert_eq!(stock.term(0), &Term::Const(Value::text("Tesla X")));
    }

    #[test]
    fn doubled_quote_escapes_in_string_literals() {
        // SQL standard: '' inside a single-quoted literal is one quote.
        let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town AND D.Name = 'O''Brien'";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let dealers = out.query.body.atom_for("Dealers").unwrap();
        assert_eq!(dealers.term(0), &Term::Const(Value::text("O'Brien")));
        // Same for double-quoted literals ("" is one double quote).
        let sql = "SELECT SUM(S.Qty) FROM Dealers AS D, Stock AS S \
                   WHERE D.Town = S.Town AND D.Name = \"the \"\"Dealer\"\"\"";
        let out = parse_sql(sql, &stock_catalog()).unwrap();
        let dealers = out.query.body.atom_for("Dealers").unwrap();
        assert_eq!(dealers.term(0), &Term::Const(Value::text("the \"Dealer\"")));
        // An escape at the very end must not swallow the terminator.
        let toks = tokenize("'a''' x").unwrap();
        assert_eq!(toks[0], Tok::Str("a'".to_string()));
        // Unterminated literals (including one ending in an escape) error.
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("'abc''").is_err());
    }

    #[test]
    fn statement_terminator_only_trailing() {
        let cat = stock_catalog();
        // One trailing terminator is fine, with or without whitespace.
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S;", &cat).is_ok());
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S ; ", &cat).is_ok());
        // A semicolon in the middle of a statement is an error, not ignored:
        // this used to parse as `SELECT SUM(Qty) FROM Stock`.
        assert!(parse_sql("SELECT SUM(Qty) FROM ; Stock", &cat).is_err());
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S WHERE ; S.Qty = 1", &cat).is_err());
        // Doubled terminators and leading terminators are errors too.
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S;;", &cat).is_err());
        assert!(parse_sql("; SELECT SUM(S.Qty) FROM Stock AS S", &cat).is_err());
        // A second statement after the terminator is trailing garbage.
        assert!(parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S; SELECT SUM(S.Qty) FROM Stock AS S",
            &cat
        )
        .is_err());
    }

    #[test]
    fn errors() {
        let cat = stock_catalog();
        // self-join
        assert!(matches!(
            parse_sql("SELECT SUM(a.Qty) FROM Stock AS a, Stock AS b", &cat),
            Err(QueryError::SelfJoin(_))
        ));
        // unknown table
        assert!(parse_sql("SELECT SUM(x.Qty) FROM Nope AS x", &cat).is_err());
        // unknown column
        assert!(matches!(
            parse_sql("SELECT SUM(S.Weight) FROM Stock AS S", &cat),
            Err(QueryError::UnknownColumn { .. })
        ));
        // no aggregate
        assert!(parse_sql("SELECT S.Qty FROM Stock AS S", &cat).is_err());
        // selected column not grouped
        assert!(parse_sql("SELECT S.Town, SUM(S.Qty) FROM Stock AS S", &cat).is_err());
        // contradictory constants
        assert!(parse_sql(
            "SELECT SUM(S.Qty) FROM Stock AS S WHERE S.Town = 'a' AND S.Town = 'b'",
            &cat
        )
        .is_err());
        // trailing garbage
        assert!(parse_sql("SELECT SUM(S.Qty) FROM Stock AS S LIMIT 5", &cat).is_err());
    }
}
