//! A named-column catalog for the SQL front-end.
//!
//! The positional [`Schema`](rcqa_data::Schema) used by the storage layer has
//! no column names; SQL queries refer to columns by name, so the SQL parser is
//! driven by a [`Catalog`] that records, per table, the ordered column names,
//! how many leading columns form the primary key, and which columns are
//! numerical. A catalog can be lowered to a positional schema.

use crate::error::QueryError;
use rcqa_data::{Schema, Signature};
use std::collections::BTreeMap;

/// Definition of one table: ordered columns, key prefix length, numeric flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    name: String,
    columns: Vec<String>,
    key_len: usize,
    numeric: Vec<bool>,
}

impl TableDef {
    /// Starts a table definition with the given name.
    pub fn new(name: impl Into<String>) -> TableDef {
        TableDef {
            name: name.into(),
            columns: Vec::new(),
            key_len: 0,
            numeric: Vec::new(),
        }
    }

    /// Adds a primary-key column. Key columns must be declared before non-key
    /// columns.
    pub fn key_column(mut self, name: impl Into<String>) -> TableDef {
        debug_assert_eq!(
            self.key_len,
            self.columns.len(),
            "key columns must be declared first"
        );
        self.columns.push(name.into());
        self.numeric.push(false);
        self.key_len += 1;
        self
    }

    /// Adds a non-key, non-numeric column.
    pub fn column(mut self, name: impl Into<String>) -> TableDef {
        self.columns.push(name.into());
        self.numeric.push(false);
        self
    }

    /// Adds a non-key numerical column.
    pub fn numeric_column(mut self, name: impl Into<String>) -> TableDef {
        self.columns.push(name.into());
        self.numeric.push(true);
        self
    }

    /// Adds a numerical primary-key column.
    pub fn numeric_key_column(mut self, name: impl Into<String>) -> TableDef {
        debug_assert_eq!(
            self.key_len,
            self.columns.len(),
            "key columns must be declared first"
        );
        self.columns.push(name.into());
        self.numeric.push(true);
        self.key_len += 1;
        self
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of leading key columns.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Position of a column name (case-insensitive), if present.
    pub fn position_of(&self, column: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(column))
    }

    /// Whether the column at position `p` is numerical.
    pub fn is_numeric(&self, p: usize) -> bool {
        self.numeric[p]
    }

    /// Lowers the table definition into a positional signature.
    pub fn signature(&self) -> Signature {
        let numeric: Vec<usize> = self
            .numeric
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        Signature::new(self.columns.len(), self.key_len, numeric)
            .expect("table definition yields a valid signature")
    }
}

/// A collection of table definitions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds a table definition.
    pub fn with_table(mut self, def: TableDef) -> Catalog {
        self.add_table(def);
        self
    }

    /// Adds a table definition.
    pub fn add_table(&mut self, def: TableDef) -> &mut Self {
        self.tables.insert(def.name.clone(), def);
        self
    }

    /// Looks up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables
            .values()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a table by name or returns an error.
    pub fn expect_table(&self, name: &str) -> Result<&TableDef, QueryError> {
        self.table(name)
            .ok_or_else(|| QueryError::UnknownRelation(name.to_string()))
    }

    /// All table definitions.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    /// Lowers the catalog to a positional schema.
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for t in self.tables.values() {
            schema.add_relation(&t.name, t.signature());
        }
        schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stock_catalog() -> Catalog {
        Catalog::new()
            .with_table(TableDef::new("Dealers").key_column("Name").column("Town"))
            .with_table(
                TableDef::new("Stock")
                    .key_column("Product")
                    .key_column("Town")
                    .numeric_column("Qty"),
            )
    }

    #[test]
    fn table_definition() {
        let cat = stock_catalog();
        let stock = cat.table("stock").unwrap();
        assert_eq!(stock.name(), "Stock");
        assert_eq!(stock.key_len(), 2);
        assert_eq!(stock.position_of("qty"), Some(2));
        assert_eq!(stock.position_of("Missing"), None);
        assert!(stock.is_numeric(2));
        assert!(!stock.is_numeric(0));
        assert!(cat.expect_table("Nope").is_err());
        assert_eq!(cat.tables().count(), 2);
    }

    #[test]
    fn lower_to_schema() {
        let cat = stock_catalog();
        let schema = cat.schema();
        let sig = schema.signature("Stock").unwrap();
        assert_eq!(sig.arity(), 3);
        assert_eq!(sig.key_len(), 2);
        assert!(sig.is_numeric(2));
        assert_eq!(schema.signature("Dealers").unwrap().key_len(), 1);
    }

    #[test]
    fn numeric_key_column() {
        let def = TableDef::new("Series")
            .numeric_key_column("Id")
            .numeric_column("Value");
        let sig = def.signature();
        assert!(sig.is_numeric(0));
        assert!(sig.is_numeric(1));
        assert_eq!(sig.key_len(), 1);
    }
}
