//! Functional dependencies over query variables.
//!
//! For a query `q` in sjfBCQ, the paper defines `K(q)` as the set of
//! functional dependencies `Key(F) → vars(F)` for every atom `F ∈ q`
//! (Section 3, "Attack graph"). Logical implication of such dependencies is
//! computed with the classical attribute-closure algorithm.

use crate::ast::{ConjunctiveQuery, Var};
use rcqa_data::Schema;
use std::collections::BTreeSet;
use std::fmt;

/// A functional dependency `lhs → rhs` over variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// Left-hand side (determinant).
    pub lhs: BTreeSet<Var>,
    /// Right-hand side (dependent).
    pub rhs: BTreeSet<Var>,
}

impl Fd {
    /// Creates a functional dependency.
    pub fn new(lhs: impl IntoIterator<Item = Var>, rhs: impl IntoIterator<Item = Var>) -> Fd {
        Fd {
            lhs: lhs.into_iter().collect(),
            rhs: rhs.into_iter().collect(),
        }
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_set = |s: &BTreeSet<Var>| {
            s.iter()
                .map(|v| v.name().to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(f, "{} -> {}", fmt_set(&self.lhs), fmt_set(&self.rhs))
    }
}

/// A set of functional dependencies, supporting closure and implication.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// Creates an empty set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Creates a set from the given dependencies.
    pub fn from_fds(fds: impl IntoIterator<Item = Fd>) -> FdSet {
        FdSet {
            fds: fds.into_iter().collect(),
        }
    }

    /// Adds a dependency.
    pub fn add(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    /// The dependencies in the set.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Computes `K(q)`: the dependency `Key(F) → vars(F)` for every atom of
    /// `q`, where key positions are taken from the schema. Constants and free
    /// variables contribute nothing (free variables are treated as constants,
    /// cf. Section 6.2), so they are removed from both sides.
    pub fn keys_of(query: &ConjunctiveQuery, schema: &Schema) -> FdSet {
        let frozen: BTreeSet<Var> = query.free_vars().iter().cloned().collect();
        let mut set = FdSet::new();
        for atom in query.atoms() {
            let key_len = schema
                .signature(atom.relation())
                .map(|s| s.key_len())
                .unwrap_or(atom.arity());
            let lhs: BTreeSet<Var> = atom
                .key_vars(key_len)
                .into_iter()
                .filter(|v| !frozen.contains(v))
                .collect();
            let rhs: BTreeSet<Var> = atom
                .vars()
                .into_iter()
                .filter(|v| !frozen.contains(v))
                .collect();
            set.add(Fd { lhs, rhs });
        }
        set
    }

    /// Computes the closure of a set of variables under the dependencies.
    pub fn closure(&self, vars: &BTreeSet<Var>) -> BTreeSet<Var> {
        let mut closure = vars.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if fd.lhs.is_subset(&closure) && !fd.rhs.is_subset(&closure) {
                    closure.extend(fd.rhs.iter().cloned());
                    changed = true;
                }
            }
        }
        closure
    }

    /// Returns `true` if the set logically implies `lhs → rhs`.
    pub fn implies(&self, lhs: &BTreeSet<Var>, rhs: &BTreeSet<Var>) -> bool {
        rhs.is_subset(&self.closure(lhs))
    }

    /// Returns `true` if the set logically implies `lhs → {v}`.
    pub fn implies_var(&self, lhs: &BTreeSet<Var>, v: &Var) -> bool {
        self.closure(lhs).contains(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};
    use rcqa_data::Signature;

    fn vars(names: &[&str]) -> BTreeSet<Var> {
        names.iter().map(Var::new).collect()
    }

    #[test]
    fn closure_basic() {
        // x -> y, y -> z
        let set = FdSet::from_fds([
            Fd::new([Var::new("x")], [Var::new("y")]),
            Fd::new([Var::new("y")], [Var::new("z")]),
        ]);
        assert_eq!(set.closure(&vars(&["x"])), vars(&["x", "y", "z"]));
        assert_eq!(set.closure(&vars(&["y"])), vars(&["y", "z"]));
        assert!(set.implies(&vars(&["x"]), &vars(&["z"])));
        assert!(!set.implies(&vars(&["z"]), &vars(&["x"])));
        assert!(set.implies_var(&vars(&["x"]), &Var::new("z")));
    }

    #[test]
    fn keys_of_query() {
        // q0 of Fig. 3: R(x, y), S(y, z, d, r) with key(R)={1}, key(S)={1,2}.
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(4, 2, [3]).unwrap());
        let r = Atom::new("R", vec![Term::var("x"), Term::var("y")]);
        let s = Atom::new(
            "S",
            vec![
                Term::var("y"),
                Term::var("z"),
                Term::constant("d"),
                Term::var("r"),
            ],
        );
        let q = ConjunctiveQuery::boolean([r, s]);
        let k = FdSet::keys_of(&q, &schema);
        // K(q0) = {x -> y, yz -> r} as in Section 6.1.
        assert!(k.implies(&vars(&["x"]), &vars(&["y"])));
        assert!(k.implies(&vars(&["y", "z"]), &vars(&["r"])));
        assert!(!k.implies(&vars(&["y"]), &vars(&["r"])));
        assert!(!k.implies(&vars(&["x"]), &vars(&["r"])));
        assert!(k.implies(&vars(&["x", "z"]), &vars(&["x", "y", "z", "r"])));
    }

    #[test]
    fn free_vars_are_frozen() {
        let schema = Schema::new().with_relation("R", Signature::new(2, 1, []).unwrap());
        let r = Atom::new("R", vec![Term::var("x"), Term::var("y")]);
        let q = ConjunctiveQuery::with_free_vars([r], [Var::new("x")]);
        let k = FdSet::keys_of(&q, &schema);
        // x is treated as a constant, so the FD becomes {} -> {y}.
        assert!(k.implies(&BTreeSet::new(), &vars(&["y"])));
    }

    #[test]
    fn display() {
        let fd = Fd::new([Var::new("x"), Var::new("y")], [Var::new("z")]);
        assert_eq!(fd.to_string(), "x,y -> z");
    }
}
