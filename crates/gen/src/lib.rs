//! # rcqa-gen
//!
//! Synthetic inconsistent-database generators for the experiments. The paper
//! has no evaluation section of its own, so the benchmark workloads follow the
//! style of the systems it cites (ConQuer, AggCAvSAT): foreign-key style joins
//! over relations whose primary keys are violated in a controlled fraction of
//! blocks.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rcqa_data::{DatabaseInstance, Fact, Schema, Signature, Value};
use rcqa_query::{parse_agg_query, AggQuery, CmpOp, Var, VarPredicate};

/// Configuration of the two-relation join workload
/// `SUM(r) <- R(x, y), S(y, z, r)` (the shape of the paper's running example,
/// Fig. 3, with a *partial* key join that Cforest does not support).
#[derive(Clone, Copy, Debug)]
pub struct JoinWorkload {
    /// Number of `R`-blocks (distinct `x` values).
    pub r_blocks: usize,
    /// Number of distinct `y` values that `R` tuples point to.
    pub y_domain: usize,
    /// Number of `S`-blocks per `y` value (distinct `z` values).
    pub s_blocks_per_y: usize,
    /// Fraction of blocks (in both relations) that violate their primary key.
    pub inconsistency_ratio: f64,
    /// Number of facts in an inconsistent block.
    pub block_size: usize,
    /// Values in the numeric column are drawn uniformly from `0..=max_value`.
    pub max_value: i64,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for JoinWorkload {
    fn default() -> Self {
        JoinWorkload {
            r_blocks: 100,
            y_domain: 50,
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.1,
            block_size: 2,
            max_value: 100,
            seed: 42,
        }
    }
}

impl JoinWorkload {
    /// The schema of the workload: `R(x, y)` with key `x`, `S(y, z, r)` with
    /// key `(y, z)` and numeric `r`.
    pub fn schema(&self) -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
    }

    /// The closed SUM query over the workload.
    pub fn sum_query(&self) -> AggQuery {
        parse_agg_query("SUM(r) <- R(x, y), S(y, z, r)").expect("fixed query parses")
    }

    /// The COUNT variant of the workload query.
    pub fn count_query(&self) -> AggQuery {
        parse_agg_query("COUNT(*) <- R(x, y), S(y, z, r)").expect("fixed query parses")
    }

    /// The grouped variant of the workload query (GROUP BY `x`).
    pub fn grouped_sum_query(&self) -> AggQuery {
        parse_agg_query("(x, SUM(r)) <- R(x, y), S(y, z, r)").expect("fixed query parses")
    }

    /// Generates the database instance.
    pub fn generate(&self) -> DatabaseInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = DatabaseInstance::new(self.schema());
        let y_of = |i: usize| Value::text(format!("y{i}"));
        // R blocks.
        for i in 0..self.r_blocks {
            let key = Value::text(format!("x{i}"));
            let copies = if rng.gen_bool(self.inconsistency_ratio) {
                self.block_size.max(2)
            } else {
                1
            };
            let mut used = std::collections::BTreeSet::new();
            for _ in 0..copies {
                let mut y = rng.gen_range(0..self.y_domain.max(1));
                // Ensure distinct facts within the block.
                let mut guard = 0;
                while used.contains(&y) && guard < 10 {
                    y = rng.gen_range(0..self.y_domain.max(1));
                    guard += 1;
                }
                if used.insert(y) {
                    db.insert(Fact::new("R", [key.clone(), y_of(y)]))
                        .expect("generated fact conforms to schema");
                }
            }
        }
        // S blocks: every y value stocks something, so the query is certain.
        for y in 0..self.y_domain.max(1) {
            for z in 0..self.s_blocks_per_y.max(1) {
                let zkey = Value::text(format!("z{y}_{z}"));
                let copies = if rng.gen_bool(self.inconsistency_ratio) {
                    self.block_size.max(2)
                } else {
                    1
                };
                let mut used = std::collections::BTreeSet::new();
                for _ in 0..copies {
                    let r = rng.gen_range(0..=self.max_value.max(1));
                    if used.insert(r) {
                        db.insert(Fact::new("S", [y_of(y), zkey.clone(), Value::int(r)]))
                            .expect("generated fact conforms to schema");
                    }
                }
            }
        }
        db
    }
}

/// The Section 7.3 counterexample database: a Caggforest SUM query over a
/// numeric column that contains `−1`, on which Fuxman-style lower-bound
/// rewritings are unsound.
pub fn fuxman_counterexample() -> (DatabaseInstance, AggQuery) {
    let schema = Schema::new()
        .with_relation("S1", Signature::new(2, 1, []).unwrap())
        .with_relation("S2", Signature::new(2, 1, []).unwrap())
        .with_relation("T", Signature::new(3, 2, [2]).unwrap());
    let mut db = DatabaseInstance::new_unconstrained(schema);
    db.insert_all([
        // An uncertain selection: u's S1-block contains both c1 and d.
        Fact::new("S1", [Value::text("u"), Value::text("c1")]),
        Fact::new("S1", [Value::text("u"), Value::text("d")]),
        Fact::new("S2", [Value::text("v"), Value::text("c2")]),
        Fact::new("T", [Value::text("u"), Value::text("v"), Value::int(-1)]),
        // Guard facts that keep the query certain in every repair.
        Fact::new("S1", [Value::text("bot"), Value::text("c1")]),
        Fact::new("S2", [Value::text("bot"), Value::text("c2")]),
        Fact::new("T", [Value::text("bot"), Value::text("bot"), Value::int(0)]),
    ])
    .expect("counterexample facts conform to schema");
    let query = parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)")
        .expect("fixed query parses");
    (db, query)
}

/// A star-schema workload in the shape of Lemma 7.3 / Theorem 7.9:
/// `SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)` with a full-key fact table
/// `T` and two uncertain dimension tables.
#[derive(Clone, Copy, Debug)]
pub struct StarWorkload {
    /// Number of dimension keys in each of `S1` and `S2`.
    pub dimension_keys: usize,
    /// Fraction of dimension blocks that are inconsistent.
    pub inconsistency_ratio: f64,
    /// Number of fact-table rows.
    pub fact_rows: usize,
    /// Maximum numeric value.
    pub max_value: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarWorkload {
    fn default() -> Self {
        StarWorkload {
            dimension_keys: 20,
            inconsistency_ratio: 0.2,
            fact_rows: 100,
            max_value: 50,
            seed: 7,
        }
    }
}

impl StarWorkload {
    /// The schema of the workload.
    pub fn schema(&self) -> Schema {
        Schema::new()
            .with_relation("S1", Signature::new(2, 1, []).unwrap())
            .with_relation("S2", Signature::new(2, 1, []).unwrap())
            .with_relation("T", Signature::new(3, 2, [2]).unwrap())
    }

    /// The SUM query over the workload.
    pub fn sum_query(&self) -> AggQuery {
        parse_agg_query("SUM(r) <- S1(x, 'c1'), S2(y, 'c2'), T(x, y, r)")
            .expect("fixed query parses")
    }

    /// Generates the database instance.
    pub fn generate(&self) -> DatabaseInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = DatabaseInstance::new(self.schema());
        for (rel, tag) in [("S1", "a"), ("S2", "b")] {
            for i in 0..self.dimension_keys.max(1) {
                let key = Value::text(format!("{tag}{i}"));
                let wanted = if rel == "S1" { "c1" } else { "c2" };
                db.insert(Fact::new(rel, [key.clone(), Value::text(wanted)]))
                    .expect("generated fact conforms to schema");
                if rng.gen_bool(self.inconsistency_ratio) {
                    db.insert(Fact::new(rel, [key, Value::text("other")]))
                        .expect("generated fact conforms to schema");
                }
            }
        }
        // A guard row keeps the query certain.
        db.insert(Fact::new("S1", [Value::text("bot"), Value::text("c1")]))
            .unwrap();
        db.insert(Fact::new("S2", [Value::text("bot"), Value::text("c2")]))
            .unwrap();
        db.insert(Fact::new(
            "T",
            [Value::text("bot"), Value::text("bot"), Value::int(0)],
        ))
        .unwrap();
        for _ in 0..self.fact_rows {
            let x = rng.gen_range(0..self.dimension_keys.max(1));
            let y = rng.gen_range(0..self.dimension_keys.max(1));
            let r = rng.gen_range(0..=self.max_value.max(1));
            db.insert(Fact::new(
                "T",
                [
                    Value::text(format!("a{x}")),
                    Value::text(format!("b{y}")),
                    Value::int(r),
                ],
            ))
            .expect("generated fact conforms to schema");
        }
        db
    }
}

/// A large, Zipf-skewed variant of the two-relation join workload for the
/// scale benchmark (E16). The schema and queries are those of
/// [`JoinWorkload`] — `R(x, y)` key `x`, `S(y, z, r)` key `(y, z)` — but the
/// instance is sized in total facts (10⁵–10⁶) rather than in blocks, and the
/// join fan-out is skewed: the number of `S`-blocks behind a `y` value falls
/// off as `max_fanout / rank^zipf_exponent`, and `R` tuples pick their `y` by
/// a log-uniform rank draw, so a few hot `y` values carry most of the join.
/// Skew is what separates data layouts — the hot spans are long, so the
/// per-fact cost of the inner loop (hash a `String`-backed key vs compare a
/// dense `u32`) dominates end-to-end join time.
#[derive(Clone, Copy, Debug)]
pub struct ScaleWorkload {
    /// Approximate total fact budget (`R` and `S` together). The generator
    /// stops opening new blocks once the budget is reached, so the realised
    /// size tracks the target within one block.
    pub target_facts: usize,
    /// Zipf exponent of the fan-out skew (1.0 is classic Zipf; 0.0 uniform).
    pub zipf_exponent: f64,
    /// Fraction of blocks (in both relations) that violate their primary key.
    pub inconsistency_ratio: f64,
    /// Values in the numeric column are drawn uniformly from `0..=max_value`.
    pub max_value: i64,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for ScaleWorkload {
    fn default() -> Self {
        ScaleWorkload {
            target_facts: 100_000,
            zipf_exponent: 1.0,
            inconsistency_ratio: 0.1,
            max_value: 100,
            seed: 23,
        }
    }
}

impl ScaleWorkload {
    /// The schema of the workload (same shape as [`JoinWorkload`]).
    pub fn schema(&self) -> Schema {
        Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap())
    }

    /// The grouped SUM query over the workload (GROUP BY `x`).
    pub fn grouped_sum_query(&self) -> AggQuery {
        parse_agg_query("(x, SUM(r)) <- R(x, y), S(y, z, r)").expect("fixed query parses")
    }

    /// The grouped MAX query with a selective range predicate on the group
    /// key (E17): `(x, MAX(r)) <- R(x, y), S(y, z, r)` restricted to
    /// `x >= 'x9'`. The `R` keys are `x0`, `x1`, …, so the predicate matches
    /// exactly the `x9*` prefix family — a few percent of the blocks at the
    /// 10⁵-fact scale — and is contiguous in the index's sorted block order,
    /// so the cost-based planner can answer it with a binary-searched seek
    /// while the forced-scan baseline evaluates every group and filters
    /// rows afterwards.
    pub fn range_query(&self) -> (AggQuery, VarPredicate) {
        let query =
            parse_agg_query("(x, MAX(r)) <- R(x, y), S(y, z, r)").expect("fixed query parses");
        let predicate = VarPredicate {
            var: Var::new("x"),
            op: CmpOp::Ge,
            value: Value::text("x9"),
        };
        (query, predicate)
    }

    /// Number of distinct `y` values: wide enough that the Zipf tail is
    /// mostly singleton blocks, narrow enough that hot heads repeat a lot.
    fn y_domain(&self) -> usize {
        (self.target_facts / 16).clamp(1, 1 << 20)
    }

    /// Zipf-like fan-out: `S`-blocks behind the `y` of the given rank.
    fn fanout(&self, rank: usize) -> usize {
        let max_fanout = 64.0;
        let f = max_fanout / ((rank + 1) as f64).powf(self.zipf_exponent);
        (f as usize).max(1)
    }

    /// Generates the database instance.
    pub fn generate(&self) -> DatabaseInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = DatabaseInstance::new(self.schema());
        let y_of = |i: usize| Value::text(format!("y{i}"));
        let budget = self.target_facts.max(16);
        // Half the budget on `S`: walk the ranks, opening `fanout(rank)`
        // blocks per `y`, until the half-budget is spent.
        let s_budget = budget / 2;
        let mut s_facts = 0usize;
        let mut y_open = 0usize;
        'srel: for y in 0..self.y_domain() {
            y_open = y + 1;
            for z in 0..self.fanout(y) {
                let zkey = Value::text(format!("z{y}_{z}"));
                let copies = if rng.gen_bool(self.inconsistency_ratio) {
                    2
                } else {
                    1
                };
                let mut used = std::collections::BTreeSet::new();
                for _ in 0..copies {
                    let r = rng.gen_range(0..=self.max_value.max(1));
                    if used.insert(r) {
                        db.insert(Fact::new("S", [y_of(y), zkey.clone(), Value::int(r)]))
                            .expect("generated fact conforms to schema");
                        s_facts += 1;
                    }
                }
                if s_facts >= s_budget {
                    break 'srel;
                }
            }
        }
        // The other half on `R`: every tuple picks its `y` by a log-uniform
        // rank draw over the opened `y` values, so low ranks (hot, high
        // fan-out) are exponentially more popular — the R-side of the skew.
        let r_budget = budget - s_facts;
        let mut r_facts = 0usize;
        let mut block = 0usize;
        while r_facts < r_budget {
            let key = Value::text(format!("x{block}"));
            block += 1;
            let copies = if rng.gen_bool(self.inconsistency_ratio) {
                2
            } else {
                1
            };
            let mut used = std::collections::BTreeSet::new();
            for _ in 0..copies {
                // Unit draw with 53 mantissa bits (the rand shim's gen_range
                // only covers integer ranges).
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let y = ((y_open as f64).powf(u) as usize - 1).min(y_open - 1);
                if used.insert(y) {
                    db.insert(Fact::new("R", [key.clone(), y_of(y)]))
                        .expect("generated fact conforms to schema");
                    r_facts += 1;
                }
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_workload_is_deterministic_and_valid() {
        let cfg = JoinWorkload {
            r_blocks: 30,
            y_domain: 10,
            s_blocks_per_y: 2,
            inconsistency_ratio: 0.3,
            block_size: 2,
            max_value: 20,
            seed: 1,
        };
        let db1 = cfg.generate();
        let db2 = cfg.generate();
        assert_eq!(db1, db2);
        assert!(db1.len() >= 30 + 20);
        assert!(db1.inconsistent_block_count() > 0);
        // The query parses and validates against the schema.
        assert!(cfg.sum_query().validate(&cfg.schema()).is_ok());
        assert!(cfg.grouped_sum_query().validate(&cfg.schema()).is_ok());
        assert!(cfg.count_query().validate(&cfg.schema()).is_ok());
    }

    #[test]
    fn zero_inconsistency_yields_consistent_database() {
        let cfg = JoinWorkload {
            inconsistency_ratio: 0.0,
            r_blocks: 20,
            ..Default::default()
        };
        let db = cfg.generate();
        assert!(db.is_consistent());
        assert_eq!(db.repair_count(), Some(1));
    }

    #[test]
    fn scale_workload_hits_budget_and_is_skewed() {
        let cfg = ScaleWorkload {
            target_facts: 4_000,
            ..Default::default()
        };
        let db1 = cfg.generate();
        let db2 = cfg.generate();
        assert_eq!(db1, db2, "generator must be deterministic");
        // The realised size tracks the budget within one block.
        assert!(db1.len() >= cfg.target_facts);
        assert!(db1.len() <= cfg.target_facts + 4);
        assert!(db1.inconsistent_block_count() > 0);
        assert!(cfg.grouped_sum_query().validate(&cfg.schema()).is_ok());
        // Skew: the hottest y value backs far more S-blocks than the median.
        let hot = db1
            .facts()
            .filter(|f| f.relation() == "S" && f.args()[0] == Value::text("y0"))
            .count();
        let cold = db1
            .facts()
            .filter(|f| f.relation() == "S" && f.args()[0] == Value::text("y40"))
            .count();
        assert!(
            hot >= 8 * cold.max(1),
            "expected Zipf head ({hot}) ≫ tail ({cold})"
        );
    }

    #[test]
    fn star_workload_and_counterexample() {
        let cfg = StarWorkload::default();
        let db = cfg.generate();
        assert!(cfg.sum_query().validate(&cfg.schema()).is_ok());
        assert!(db.len() > cfg.dimension_keys);

        let (db, q) = fuxman_counterexample();
        assert!(q.validate(db.schema()).is_ok());
        assert_eq!(db.len(), 7);
        assert_eq!(db.inconsistent_block_count(), 1);
        assert_eq!(db.repair_count(), Some(2));
    }
}
