//! Active-domain evaluation of AGGR\[FOL\] formulas and numerical terms over
//! a database instance.
//!
//! This evaluator gives the rewritings produced by the core crate a reference
//! semantics: quantifiers range over the active domain of the instance, and
//! aggregate terms enumerate all satisfying valuations of their bound
//! variables, exactly as in Section 5.2 of the paper. The evaluator is
//! intentionally simple (its cost is `O(|adom|^k)` for `k` nested quantified
//! variables); the operational evaluator in `rcqa-core` is the fast path.

use crate::ast::{Formula, NumTerm, NumericalQuery};
use rcqa_data::{DatabaseInstance, Rational, Value};
use rcqa_query::{Term, Var};
use std::collections::BTreeMap;

/// A (partial) assignment of values to variables.
pub type Valuation = BTreeMap<Var, Value>;

/// Evaluates formulas and numerical terms over one database instance.
pub struct Evaluator<'a> {
    db: &'a DatabaseInstance,
    adom: Vec<Value>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator whose quantifiers range over the active domain of
    /// `db`.
    pub fn new(db: &'a DatabaseInstance) -> Evaluator<'a> {
        Evaluator {
            db,
            adom: db.active_domain().into_iter().collect(),
        }
    }

    /// The active domain used for quantification.
    pub fn domain(&self) -> &[Value] {
        &self.adom
    }

    fn resolve(&self, term: &Term, val: &Valuation) -> Value {
        match term {
            Term::Const(c) => c.clone(),
            Term::Var(v) => val
                .get(v)
                .cloned()
                .unwrap_or_else(|| panic!("unbound variable {v} during evaluation")),
        }
    }

    /// Evaluates a formula under a valuation of (at least) its free variables.
    pub fn eval_formula(&self, formula: &Formula, val: &Valuation) -> bool {
        match formula {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(atom) => {
                let args: Vec<Value> = atom.terms().iter().map(|t| self.resolve(t, val)).collect();
                self.db
                    .facts_of(atom.relation())
                    .any(|f| f.args() == args.as_slice())
            }
            Formula::Eq(a, b) => self.resolve(a, val) == self.resolve(b, val),
            Formula::Leq(a, b) => match (self.eval_num(a, val), self.eval_num(b, val)) {
                (Some(x), Some(y)) => x <= y,
                _ => false,
            },
            Formula::Lt(a, b) => match (self.eval_num(a, val), self.eval_num(b, val)) {
                (Some(x), Some(y)) => x < y,
                _ => false,
            },
            Formula::NumEq(a, b) => match (self.eval_num(a, val), self.eval_num(b, val)) {
                (Some(x), Some(y)) => x == y,
                (None, None) => true,
                _ => false,
            },
            Formula::Not(inner) => !self.eval_formula(inner, val),
            Formula::And(parts) => parts.iter().all(|p| self.eval_formula(p, val)),
            Formula::Or(parts) => parts.iter().any(|p| self.eval_formula(p, val)),
            Formula::Implies(a, b) => !self.eval_formula(a, val) || self.eval_formula(b, val),
            Formula::Exists(vars, inner) => self.eval_quantified(vars, inner, val, true),
            Formula::Forall(vars, inner) => !self.eval_quantified(vars, inner, val, false),
        }
    }

    /// For `Exists` (witness = true): returns whether some extension satisfies
    /// `inner`. For `Forall` (witness = false): returns whether some extension
    /// *falsifies* `inner` (the caller negates).
    fn eval_quantified(
        &self,
        vars: &[Var],
        inner: &Formula,
        val: &Valuation,
        witness: bool,
    ) -> bool {
        if vars.is_empty() {
            let result = self.eval_formula(inner, val);
            return if witness { result } else { !result };
        }
        let (first, rest) = vars.split_first().unwrap();
        for value in &self.adom {
            let mut extended = val.clone();
            extended.insert(first.clone(), value.clone());
            if self.eval_quantified(rest, inner, &extended, witness) {
                return true;
            }
        }
        false
    }

    /// Evaluates a numerical term. Returns `None` when an aggregate term has
    /// no satisfying valuation (the paper's `f0` case).
    pub fn eval_num(&self, term: &NumTerm, val: &Valuation) -> Option<Rational> {
        match term {
            NumTerm::Const(c) => Some(*c),
            NumTerm::Var(v) => match val.get(v) {
                Some(Value::Num(r)) => Some(*r),
                Some(Value::Text(_)) => None,
                None => panic!("unbound numerical variable {v} during evaluation"),
            },
            NumTerm::Aggr {
                op,
                bound,
                arg,
                formula,
            } => {
                let mut values: Vec<Rational> = Vec::new();
                self.collect_aggregate(bound, formula, arg, val, &mut values);
                if values.is_empty() {
                    None
                } else {
                    op.apply(&values)
                }
            }
        }
    }

    fn collect_aggregate(
        &self,
        bound: &[Var],
        formula: &Formula,
        arg: &NumTerm,
        val: &Valuation,
        out: &mut Vec<Rational>,
    ) {
        if bound.is_empty() {
            if self.eval_formula(formula, val) {
                if let Some(v) = self.eval_num(arg, val) {
                    out.push(v);
                }
            }
            return;
        }
        let (first, rest) = bound.split_first().unwrap();
        for value in &self.adom {
            let mut extended = val.clone();
            extended.insert(first.clone(), value.clone());
            self.collect_aggregate(rest, formula, arg, &extended, out);
        }
    }

    /// Evaluates a [`NumericalQuery`]: for every assignment of the free
    /// variables (over the active domain) satisfying the guard, reports the
    /// value of the term. Closed queries yield exactly one row with an empty
    /// group key.
    pub fn eval_query(&self, query: &NumericalQuery) -> Vec<(Vec<Value>, Option<Rational>)> {
        let mut rows = Vec::new();
        self.eval_query_rec(query, &query.free_vars, &BTreeMap::new(), &mut rows);
        rows
    }

    fn eval_query_rec(
        &self,
        query: &NumericalQuery,
        remaining: &[Var],
        val: &Valuation,
        rows: &mut Vec<(Vec<Value>, Option<Rational>)>,
    ) {
        if remaining.is_empty() {
            if self.eval_formula(&query.guard, val) {
                let key: Vec<Value> = query
                    .free_vars
                    .iter()
                    .map(|v| val.get(v).cloned().expect("free variable bound"))
                    .collect();
                rows.push((key, self.eval_num(&query.term, val)));
            }
            return;
        }
        let (first, rest) = remaining.split_first().unwrap();
        for value in &self.adom {
            let mut extended = val.clone();
            extended.insert(first.clone(), value.clone());
            self.eval_query_rec(query, rest, &extended, rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::{nvar, var};
    use rcqa_data::{fact, rat, AggFunc, AggOp, Schema, Signature};
    use rcqa_query::Atom;

    fn simple_db() -> DatabaseInstance {
        let schema = Schema::new()
            .with_relation("R", Signature::new(2, 1, []).unwrap())
            .with_relation("S", Signature::new(3, 2, [2]).unwrap());
        let mut db = DatabaseInstance::new(schema);
        db.insert_all([
            fact!("R", "a1", "b1"),
            fact!("R", "a2", "b2"),
            fact!("S", "b1", "c1", 3),
            fact!("S", "b1", "c2", 5),
            fact!("S", "b2", "c3", 7),
        ])
        .unwrap();
        db
    }

    fn atom(rel: &str, terms: &[Term]) -> Formula {
        Formula::Atom(Atom::new(rel, terms.to_vec()))
    }

    #[test]
    fn atoms_and_equality() {
        let db = simple_db();
        let ev = Evaluator::new(&db);
        let val = Valuation::new();
        assert!(ev.eval_formula(
            &atom("R", &[Term::constant("a1"), Term::constant("b1")]),
            &val
        ));
        assert!(!ev.eval_formula(
            &atom("R", &[Term::constant("a1"), Term::constant("b2")]),
            &val
        ));
        assert!(ev.eval_formula(&Formula::Eq(Term::constant("x"), Term::constant("x")), &val));
        let mut v = Valuation::new();
        v.insert(Var::new("x"), Value::text("a1"));
        assert!(ev.eval_formula(&atom("R", &[var("x"), Term::constant("b1")]), &v));
    }

    #[test]
    fn quantifiers() {
        let db = simple_db();
        let ev = Evaluator::new(&db);
        let val = Valuation::new();
        // Every R-tuple has an S-partner: forall x y (R(x,y) -> exists z r S(y,z,r)).
        let f = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(
                atom("R", &[var("x"), var("y")]),
                Formula::exists(
                    [Var::new("z"), Var::new("r")],
                    atom("S", &[var("y"), var("z"), var("r")]),
                ),
            ),
        );
        assert!(ev.eval_formula(&f, &val));
        // There is an S-value 9: false.
        let g = Formula::exists(
            [Var::new("y"), Var::new("z")],
            atom("S", &[var("y"), var("z"), Term::constant(9)]),
        );
        assert!(!ev.eval_formula(&g, &val));
    }

    #[test]
    fn aggregation_terms() {
        let db = simple_db();
        let ev = Evaluator::new(&db);
        let val = Valuation::new();
        // SUM of all S values.
        let sum_all = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("y"), Var::new("z"), Var::new("r")],
            nvar("r"),
            atom("S", &[var("y"), var("z"), var("r")]),
        );
        assert_eq!(ev.eval_num(&sum_all, &val), Some(rat(15)));
        // MAX of S values in block b1.
        let max_b1 = NumTerm::aggr(
            AggOp::positive(AggFunc::Max),
            [Var::new("z"), Var::new("r")],
            nvar("r"),
            atom("S", &[Term::constant("b1"), var("z"), var("r")]),
        );
        assert_eq!(ev.eval_num(&max_b1, &val), Some(rat(5)));
        // Aggregation over an empty set yields None.
        let empty = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("z"), Var::new("r")],
            nvar("r"),
            atom("S", &[Term::constant("nope"), var("z"), var("r")]),
        );
        assert_eq!(ev.eval_num(&empty, &val), None);
        // Dual operator flips the sign.
        let dual = NumTerm::aggr(
            AggOp::dual_of(AggFunc::Sum),
            [Var::new("z"), Var::new("r")],
            nvar("r"),
            atom("S", &[Term::constant("b1"), var("z"), var("r")]),
        );
        assert_eq!(ev.eval_num(&dual, &val), Some(rat(-8)));
    }

    #[test]
    fn comparisons_and_numeq() {
        let db = simple_db();
        let ev = Evaluator::new(&db);
        let val = Valuation::new();
        let three = NumTerm::Const(rat(3));
        let five = NumTerm::Const(rat(5));
        assert!(ev.eval_formula(&Formula::Leq(three.clone(), five.clone()), &val));
        assert!(ev.eval_formula(&Formula::Lt(three.clone(), five.clone()), &val));
        assert!(!ev.eval_formula(&Formula::Lt(five.clone(), three.clone()), &val));
        assert!(ev.eval_formula(&Formula::NumEq(three.clone(), three.clone()), &val));
        // Comparison against an empty aggregate is false; equality of two
        // empty aggregates is true.
        let empty = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("z"), Var::new("r")],
            nvar("r"),
            atom("S", &[Term::constant("nope"), var("z"), var("r")]),
        );
        assert!(!ev.eval_formula(&Formula::Leq(empty.clone(), five), &val));
        assert!(ev.eval_formula(&Formula::NumEq(empty.clone(), empty), &val));
    }

    #[test]
    fn numerical_query_with_groups() {
        let db = simple_db();
        let ev = Evaluator::new(&db);
        // For every y such that some R(x, y) holds, the sum of S-values at y.
        let guard = Formula::exists([Var::new("x")], atom("R", &[var("x"), var("y")]));
        let term = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("z"), Var::new("r")],
            nvar("r"),
            atom("S", &[var("y"), var("z"), var("r")]),
        );
        let q = NumericalQuery {
            free_vars: vec![Var::new("y")],
            term,
            guard,
        };
        let mut rows = ev.eval_query(&q);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                (vec![Value::text("b1")], Some(rat(8))),
                (vec![Value::text("b2")], Some(rat(7))),
            ]
        );
        // Closed query evaluates to a single row.
        let closed = NumericalQuery::closed(NumTerm::Const(rat(42)));
        assert_eq!(ev.eval_query(&closed), vec![(vec![], Some(rat(42)))]);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        let db = simple_db();
        let ev = Evaluator::new(&db);
        ev.eval_formula(
            &atom("R", &[var("unbound"), Term::constant("b1")]),
            &Valuation::new(),
        );
    }
}
