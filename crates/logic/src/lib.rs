//! # rcqa-logic
//!
//! The aggregate logic AGGR\[FOL\] of Section 5.2 of the paper: first-order
//! formulas over the database vocabulary extended with aggregate numerical
//! terms, together with an active-domain evaluator that serves as the
//! reference semantics for the rewritings produced by `rcqa-core`.

#![warn(missing_docs)]

pub mod ast;
pub mod eval;

pub use ast::{build, Formula, NumTerm, NumericalQuery};
pub use eval::{Evaluator, Valuation};
