//! Abstract syntax of the aggregate logic AGGR\[FOL\] (Section 5.2 of the
//! paper, following Hella, Libkin, Nurmonen and Wong).
//!
//! AGGR\[FOL\] extends first-order logic over the database vocabulary with
//! numerical terms `Aggr_F ȳ [r, q(x̄, ȳ)]`, which aggregate the values of a
//! primitive numerical term `r` over all valuations of `ȳ` satisfying
//! `q(x̄, ȳ)`. The paper's rewritings (Fig. 5) are formulas of this logic;
//! evaluating them is what a SQL engine would do after translation.

use rcqa_data::{AggOp, Rational, Value};
use rcqa_query::{Atom, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A primitive or aggregate numerical term.
#[derive(Clone, Debug, PartialEq)]
pub enum NumTerm {
    /// A rational constant.
    Const(Rational),
    /// A numerical variable.
    Var(Var),
    /// An aggregate term `Aggr_F ȳ [r, φ(x̄, ȳ)]`: aggregate the value of `r`
    /// over all valuations of `ȳ` that satisfy `φ` (given values for the
    /// other free variables `x̄`).
    Aggr {
        /// The aggregate operator `F`.
        op: AggOp,
        /// The variables `ȳ` bound by the aggregation.
        bound: Vec<Var>,
        /// The aggregated primitive term `r`.
        arg: Box<NumTerm>,
        /// The formula `φ(x̄, ȳ)`.
        formula: Box<Formula>,
    },
}

impl NumTerm {
    /// Creates an aggregate term.
    pub fn aggr(
        op: AggOp,
        bound: impl IntoIterator<Item = Var>,
        arg: NumTerm,
        formula: Formula,
    ) -> NumTerm {
        NumTerm::Aggr {
            op,
            bound: bound.into_iter().collect(),
            arg: Box::new(arg),
            formula: Box::new(formula),
        }
    }

    /// Number of AST nodes (used to check the quadratic-size bound of
    /// Theorem 1.1).
    pub fn size(&self) -> usize {
        match self {
            NumTerm::Const(_) | NumTerm::Var(_) => 1,
            NumTerm::Aggr { arg, formula, .. } => 1 + arg.size() + formula.size(),
        }
    }

    /// Free variables of the term.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            NumTerm::Const(_) => BTreeSet::new(),
            NumTerm::Var(v) => std::iter::once(v.clone()).collect(),
            NumTerm::Aggr {
                bound,
                arg,
                formula,
                ..
            } => {
                let mut vars = formula.free_vars();
                vars.extend(arg.free_vars());
                for b in bound {
                    vars.remove(b);
                }
                vars
            }
        }
    }
}

impl fmt::Display for NumTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumTerm::Const(c) => write!(f, "{c}"),
            NumTerm::Var(v) => write!(f, "{v}"),
            NumTerm::Aggr {
                op,
                bound,
                arg,
                formula,
            } => {
                write!(f, "Aggr[{op}]")?;
                if !bound.is_empty() {
                    write!(f, "(")?;
                    for (i, b) in bound.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{b}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, "[{arg}, {formula}]")
            }
        }
    }
}

/// A formula of AGGR\[FOL\].
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A relational atom `R(u1, ..., un)`.
    Atom(Atom),
    /// Equality of two (non-numeric or numeric) first-order terms.
    Eq(Term, Term),
    /// Comparison `t1 <= t2` between numerical terms.
    Leq(NumTerm, NumTerm),
    /// Comparison `t1 < t2` between numerical terms.
    Lt(NumTerm, NumTerm),
    /// Equality `t1 = t2` between numerical terms.
    NumEq(NumTerm, NumTerm),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Conjunction of the given formulas, flattening nested conjunctions and
    /// removing `True`.
    pub fn and(formulas: impl IntoIterator<Item = Formula>) -> Formula {
        let mut parts = Vec::new();
        for f in formulas {
            match f {
                Formula::True => {}
                Formula::And(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::True,
            1 => parts.pop().unwrap(),
            _ => Formula::And(parts),
        }
    }

    /// Disjunction of the given formulas, flattening nested disjunctions and
    /// removing `False`.
    pub fn or(formulas: impl IntoIterator<Item = Formula>) -> Formula {
        let mut parts = Vec::new();
        for f in formulas {
            match f {
                Formula::False => {}
                Formula::Or(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::False,
            1 => parts.pop().unwrap(),
            _ => Formula::Or(parts),
        }
    }

    /// Negation (a constructor taking the operand by value, not `ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Implication.
    pub fn implies(antecedent: Formula, consequent: Formula) -> Formula {
        Formula::Implies(Box::new(antecedent), Box::new(consequent))
    }

    /// Existential quantification (no-op if `vars` is empty).
    pub fn exists(vars: impl IntoIterator<Item = Var>, f: Formula) -> Formula {
        let vars: Vec<Var> = vars.into_iter().collect();
        if vars.is_empty() {
            f
        } else {
            Formula::Exists(vars, Box::new(f))
        }
    }

    /// Universal quantification (no-op if `vars` is empty).
    pub fn forall(vars: impl IntoIterator<Item = Var>, f: Formula) -> Formula {
        let vars: Vec<Var> = vars.into_iter().collect();
        if vars.is_empty() {
            f
        } else {
            Formula::Forall(vars, Box::new(f))
        }
    }

    /// Number of AST nodes (used to check the quadratic-size bound of
    /// Theorem 1.1).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False => 1,
            Formula::Atom(a) => 1 + a.arity(),
            Formula::Eq(_, _) => 3,
            Formula::Leq(a, b) | Formula::Lt(a, b) | Formula::NumEq(a, b) => {
                1 + a.size() + b.size()
            }
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) => 1 + a.size() + b.size(),
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => 1 + vs.len() + f.size(),
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom(a) => a.vars(),
            Formula::Eq(a, b) => {
                let mut s = BTreeSet::new();
                if let Some(v) = a.as_var() {
                    s.insert(v.clone());
                }
                if let Some(v) = b.as_var() {
                    s.insert(v.clone());
                }
                s
            }
            Formula::Leq(a, b) | Formula::Lt(a, b) | Formula::NumEq(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Not(f) => f.free_vars(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().flat_map(Formula::free_vars).collect(),
            Formula::Implies(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let mut s = f.free_vars();
                for v in vs {
                    s.remove(v);
                }
                s
            }
        }
    }
}

fn fmt_var_list(f: &mut fmt::Formatter<'_>, vars: &[Var]) -> fmt::Result {
    for (i, v) in vars.iter().enumerate() {
        if i > 0 {
            write!(f, " ")?;
        }
        write!(f, "{v}")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Leq(a, b) => write!(f, "{a} <= {b}"),
            Formula::Lt(a, b) => write!(f, "{a} < {b}"),
            Formula::NumEq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "NOT ({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, part) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{part}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, part) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{part}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            Formula::Exists(vs, inner) => {
                write!(f, "EXISTS ")?;
                fmt_var_list(f, vs)?;
                write!(f, " ({inner})")
            }
            Formula::Forall(vs, inner) => {
                write!(f, "FORALL ")?;
                fmt_var_list(f, vs)?;
                write!(f, " ({inner})")
            }
        }
    }
}

/// A named numerical query: a numerical term together with the free variables
/// it reports (the GROUP BY columns), used as the output of the rewriting.
#[derive(Clone, Debug, PartialEq)]
pub struct NumericalQuery {
    /// The free (GROUP BY) variables, in output order.
    pub free_vars: Vec<Var>,
    /// The numerical term computing the answer for given values of the free
    /// variables.
    pub term: NumTerm,
    /// A guard formula over the free variables: the groups for which the term
    /// should be reported (for closed queries this is `True`).
    pub guard: Formula,
}

impl NumericalQuery {
    /// Creates a closed numerical query (no free variables).
    pub fn closed(term: NumTerm) -> NumericalQuery {
        NumericalQuery {
            free_vars: Vec::new(),
            term,
            guard: Formula::True,
        }
    }

    /// Total AST size of the query (term plus guard).
    pub fn size(&self) -> usize {
        self.term.size() + self.guard.size()
    }
}

impl fmt::Display for NumericalQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.free_vars.is_empty() {
            write!(f, "{}", self.term)
        } else {
            write!(f, "{{ (")?;
            for (i, v) in self.free_vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ", {}) | {} }}", self.term, self.guard)
        }
    }
}

/// Convenience helpers for constructing terms.
pub mod build {
    use super::*;

    /// A numerical variable term.
    pub fn nvar(name: &str) -> NumTerm {
        NumTerm::Var(Var::new(name))
    }

    /// A numerical constant term.
    pub fn nconst(r: impl Into<Rational>) -> NumTerm {
        NumTerm::Const(r.into())
    }

    /// A first-order variable term.
    pub fn var(name: &str) -> Term {
        Term::var(name)
    }

    /// A first-order constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::constant(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcqa_data::{rat, AggFunc};

    fn atom(rel: &str, vars: &[&str]) -> Formula {
        Formula::Atom(Atom::new(rel, vars.iter().map(|v| Term::var(*v))))
    }

    #[test]
    fn builders_simplify() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(
            Formula::and([Formula::True, atom("R", &["x"])]),
            atom("R", &["x"])
        );
        let nested = Formula::and([
            Formula::And(vec![atom("R", &["x"]), atom("S", &["y"])]),
            atom("T", &["z"]),
        ]);
        assert!(matches!(nested, Formula::And(ref v) if v.len() == 3));
        assert_eq!(
            Formula::exists(Vec::<Var>::new(), atom("R", &["x"])),
            atom("R", &["x"])
        );
    }

    #[test]
    fn free_vars() {
        let f = Formula::exists(
            [Var::new("y")],
            Formula::and([atom("R", &["x", "y"]), atom("S", &["y", "z"])]),
        );
        let fv = f.free_vars();
        assert!(fv.contains(&Var::new("x")));
        assert!(fv.contains(&Var::new("z")));
        assert!(!fv.contains(&Var::new("y")));

        let t = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("y")],
            NumTerm::Var(Var::new("r")),
            atom("R", &["x", "y"]),
        );
        let fv = t.free_vars();
        assert!(fv.contains(&Var::new("x")));
        assert!(fv.contains(&Var::new("r")));
        assert!(!fv.contains(&Var::new("y")));
    }

    #[test]
    fn sizes() {
        let a = atom("R", &["x", "y"]);
        assert_eq!(a.size(), 3);
        let f = Formula::forall([Var::new("y")], Formula::implies(a.clone(), Formula::True));
        assert_eq!(f.size(), 1 + 1 + 1 + 3 + 1);
        let t = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("y")],
            NumTerm::Const(rat(1)),
            a,
        );
        assert_eq!(t.size(), 1 + 1 + 3);
    }

    #[test]
    fn display_formula() {
        let f = Formula::forall(
            [Var::new("y")],
            Formula::implies(atom("R", &["x", "y"]), atom("S", &["y"])),
        );
        assert_eq!(f.to_string(), "FORALL y ((R(x, y) -> S(y)))");
        let t = NumTerm::aggr(
            AggOp::positive(AggFunc::Sum),
            [Var::new("y")],
            NumTerm::Var(Var::new("r")),
            atom("R", &["y", "r"]),
        );
        assert_eq!(t.to_string(), "Aggr[SUM](y)[r, R(y, r)]");
        let q = NumericalQuery::closed(t);
        assert!(q.to_string().starts_with("Aggr[SUM]"));
    }
}
