//! # rcqa-data
//!
//! Data model for range-consistent query answering over inconsistent
//! databases: exact rational arithmetic, constants, relation signatures with
//! primary keys and numerical columns, facts, database instances, blocks,
//! repairs, and aggregate operators with their algebraic properties.
//!
//! This crate is the storage substrate used by the rest of the `rcqa`
//! workspace, which reproduces the PODS 2024 paper *"Computing Range
//! Consistent Answers to Aggregation Queries via Rewriting"* by Amezian El
//! Khalfioui and Wijsen.
//!
//! ## Quick example
//!
//! ```
//! use rcqa_data::prelude::*;
//! use rcqa_data::fact;
//!
//! // The Fig. 1 schema: Dealers(Name, Town), Stock(Product, Town, Qty).
//! let schema = Schema::new()
//!     .with_relation("Dealers", Signature::new(2, 1, []).unwrap())
//!     .with_relation("Stock", Signature::new(3, 2, [2]).unwrap());
//! let mut db = DatabaseInstance::new(schema);
//! db.insert(fact!("Dealers", "Smith", "Boston")).unwrap();
//! db.insert(fact!("Dealers", "Smith", "New York")).unwrap();
//! assert!(!db.is_consistent());
//! assert_eq!(db.repair_count(), Some(2));
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod codec;
pub mod delta;
pub mod error;
pub mod fact;
pub mod instance;
pub mod interner;
pub mod rational;
pub mod schema;
pub mod value;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::agg::{AggFunc, AggOp};
    pub use crate::delta::{DeltaEvent, DeltaOp};
    pub use crate::error::DataError;
    pub use crate::fact::Fact;
    pub use crate::instance::{Block, DatabaseInstance, NumericDomain, RepairIter};
    pub use crate::interner::{ValueInterner, MISSING_ID, UNBOUND_ID};
    pub use crate::rational::{rat, ratio, Rational};
    pub use crate::schema::{RelName, Schema, Signature};
    pub use crate::value::Value;
}

pub use prelude::*;
