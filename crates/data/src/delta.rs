//! Change events on a database instance.
//!
//! A [`DeltaEvent`] records one successful mutation — a fact inserted into or
//! deleted from a [`DatabaseInstance`](crate::instance::DatabaseInstance) —
//! in a form that derived read structures (block indexes, cached answers) can
//! replay incrementally instead of rebuilding from a full scan. The serving
//! layer (`rcqa-session`) records one event per effective mutation and feeds
//! them to `DbIndex::apply_delta` in `rcqa-core`.

use crate::fact::Fact;
use std::fmt;

/// The kind of mutation a [`DeltaEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// The fact was inserted (and was not previously present).
    Insert,
    /// The fact was deleted (and was previously present).
    Delete,
}

/// One effective mutation of a database instance: the fact together with the
/// direction of the change.
///
/// Events describe mutations that actually happened — inserting an
/// already-present fact or deleting an absent one produces no event — so
/// replaying a sequence of events against a derived structure built from the
/// pre-mutation instance yields the structure of the post-mutation instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaEvent {
    /// The direction of the change.
    pub op: DeltaOp,
    /// The inserted or deleted fact.
    pub fact: Fact,
}

impl DeltaEvent {
    /// An insertion event.
    pub fn insert(fact: Fact) -> DeltaEvent {
        DeltaEvent {
            op: DeltaOp::Insert,
            fact,
        }
    }

    /// A deletion event.
    pub fn delete(fact: Fact) -> DeltaEvent {
        DeltaEvent {
            op: DeltaOp::Delete,
            fact,
        }
    }
}

impl fmt::Display for DeltaEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            DeltaOp::Insert => write!(f, "+{}", self.fact),
            DeltaOp::Delete => write!(f, "-{}", self.fact),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact;

    #[test]
    fn display_shows_direction() {
        let e = DeltaEvent::insert(fact!("R", "a", 1));
        assert!(e.to_string().starts_with('+'), "{e}");
        let e = DeltaEvent::delete(fact!("R", "a", 1));
        assert!(e.to_string().starts_with('-'), "{e}");
    }
}
