//! Exact rational arithmetic.
//!
//! The paper restricts numeric columns to non-negative rationals `Q≥0`
//! (Section 3), and Section 7.3 additionally considers `N ∪ {−1}`. Aggregate
//! operators must be exact for monotonicity/associativity to hold, so the
//! library uses an exact rational type instead of floating point.
//!
//! The representation is a normalised `numerator / denominator` pair of
//! `i128`. All constructors normalise (gcd-reduced, denominator positive), so
//! equality and hashing are structural.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number with `i128` numerator and denominator.
///
/// The value is always kept in normal form: the denominator is strictly
/// positive and `gcd(|numerator|, denominator) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Error returned when parsing or constructing a [`Rational`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RationalError {
    /// The denominator was zero.
    ZeroDenominator,
    /// The textual form could not be parsed.
    Parse(String),
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::ZeroDenominator => write!(f, "denominator must be non-zero"),
            RationalError::Parse(s) => write!(f, "cannot parse rational from {s:?}"),
        }
    }
}

impl std::error::Error for RationalError {}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// Returns an error if the denominator is zero.
    pub fn new(num: i128, den: i128) -> Result<Rational, RationalError> {
        if den == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        Ok(Self::normalised(num, den))
    }

    fn normalised(mut num: i128, mut den: i128) -> Rational {
        if den < 0 {
            num = -num;
            den = -den;
        }
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let g = gcd(num, den);
        Rational {
            num: num / g,
            den: den / g,
        }
    }

    /// Creates a rational from an integer.
    pub const fn from_int(i: i64) -> Rational {
        Rational {
            num: i as i128,
            den: 1,
        }
    }

    /// The numerator of the normal form (sign carried here).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// The denominator of the normal form (always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is `>= 0`, i.e. lies in `Q≥0`.
    pub fn is_non_negative(&self) -> bool {
        self.num >= 0
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse; `None` for zero.
    pub fn recip(&self) -> Option<Rational> {
        if self.num == 0 {
            None
        } else {
            Some(Self::normalised(self.den, self.num))
        }
    }

    /// Returns the value as `f64` (approximate; only for reporting).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition (guards against i128 overflow).
    pub fn checked_add(&self, other: &Rational) -> Option<Rational> {
        let num = self
            .num
            .checked_mul(other.den)?
            .checked_add(other.num.checked_mul(self.den)?)?;
        let den = self.den.checked_mul(other.den)?;
        Some(Self::normalised(num, den))
    }

    /// Checked multiplication (guards against i128 overflow).
    pub fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep intermediate values small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Some(Self::normalised(num, den))
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b (b, d > 0). Use i128 widening carefully.
        let left = self.num.checked_mul(other.den);
        let right = other.num.checked_mul(self.den);
        match (left, right) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Fall back to float comparison in the (practically unreachable)
            // overflow case.
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(&rhs).expect("rational addition overflow")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division multiplies by the reciprocal, which clippy flags as suspicious.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        let r = rhs.recip().expect("division by zero rational");
        self * r
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl From<i64> for Rational {
    fn from(i: i64) -> Self {
        Rational::from_int(i)
    }
}

impl From<i32> for Rational {
    fn from(i: i32) -> Self {
        Rational::from_int(i as i64)
    }
}

impl From<u32> for Rational {
    fn from(i: u32) -> Self {
        Rational::from_int(i as i64)
    }
}

impl From<usize> for Rational {
    fn from(i: usize) -> Self {
        Rational {
            num: i as i128,
            den: 1,
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Rational {
    type Err = RationalError;

    /// Parses `"3"`, `"-3"`, `"3/4"`, or decimal notation `"3.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n
                .trim()
                .parse()
                .map_err(|_| RationalError::Parse(s.to_string()))?;
            let d: i128 = d
                .trim()
                .parse()
                .map_err(|_| RationalError::Parse(s.to_string()))?;
            return Rational::new(n, d);
        }
        if let Some((int, frac)) = s.split_once('.') {
            let sign = if int.trim_start().starts_with('-') {
                -1
            } else {
                1
            };
            let int_part: i128 = if int.is_empty() || int == "-" {
                0
            } else {
                int.parse()
                    .map_err(|_| RationalError::Parse(s.to_string()))?
            };
            if frac.is_empty() || !frac.chars().all(|c| c.is_ascii_digit()) {
                return Err(RationalError::Parse(s.to_string()));
            }
            let frac_num: i128 = frac
                .parse()
                .map_err(|_| RationalError::Parse(s.to_string()))?;
            let den: i128 = 10i128
                .checked_pow(frac.len() as u32)
                .ok_or_else(|| RationalError::Parse(s.to_string()))?;
            let num = int_part
                .checked_mul(den)
                .and_then(|v| v.checked_add(sign * frac_num))
                .ok_or_else(|| RationalError::Parse(s.to_string()))?;
            return Rational::new(num, den);
        }
        let n: i128 = s.parse().map_err(|_| RationalError::Parse(s.to_string()))?;
        Ok(Rational { num: n, den: 1 })
    }
}

/// Convenience constructor: `rat(3)` is the integer 3 as a rational.
pub fn rat(i: i64) -> Rational {
    Rational::from_int(i)
}

/// Convenience constructor: `ratio(1, 2)` is one half.
///
/// # Panics
/// Panics if `den == 0`.
pub fn ratio(num: i64, den: i64) -> Rational {
    Rational::new(num as i128, den as i128).expect("non-zero denominator")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rational::new(2, 4).unwrap(), ratio(1, 2));
        assert_eq!(Rational::new(-2, -4).unwrap(), ratio(1, 2));
        assert_eq!(Rational::new(2, -4).unwrap(), ratio(-1, 2));
        assert_eq!(Rational::new(0, -7).unwrap(), Rational::ZERO);
        assert!(Rational::new(1, 0).is_err());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["3", "-3", "1/2", "-7/3", "0"] {
            let r: Rational = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert_eq!("3.25".parse::<Rational>().unwrap(), ratio(13, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), ratio(-1, 2));
        assert_eq!(".".parse::<Rational>().ok(), None);
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ratio(1, 2) + ratio(1, 3), ratio(5, 6));
        assert_eq!(ratio(1, 2) - ratio(1, 3), ratio(1, 6));
        assert_eq!(ratio(2, 3) * ratio(3, 4), ratio(1, 2));
        assert_eq!(ratio(1, 2) / ratio(1, 4), rat(2));
        assert_eq!(-ratio(1, 2), ratio(-1, 2));
        assert_eq!(rat(5).abs(), rat(5));
        assert_eq!(rat(-5).abs(), rat(5));
    }

    #[test]
    fn ordering() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(rat(-1) < Rational::ZERO);
        assert_eq!(rat(3).min(rat(4)), rat(3));
        assert_eq!(rat(3).max(rat(4)), rat(4));
    }

    #[test]
    fn predicates() {
        assert!(rat(0).is_zero());
        assert!(rat(3).is_integer());
        assert!(!ratio(1, 2).is_integer());
        assert!(rat(0).is_non_negative());
        assert!(!rat(-1).is_non_negative());
        assert_eq!(ratio(2, 5).recip(), Some(ratio(5, 2)));
        assert_eq!(Rational::ZERO.recip(), None);
    }

    fn small_rational() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..100).prop_map(|(n, d)| Rational::new(n, d).unwrap())
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_ordering_total(a in small_rational(), b in small_rational()) {
            let by_float = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
            // Exact comparison must agree with float comparison on small inputs
            // unless the float comparison says Equal due to rounding.
            if a != b {
                prop_assert!(by_float == a.cmp(&b) || by_float == Ordering::Equal);
            }
        }

        #[test]
        fn prop_roundtrip_display(a in small_rational()) {
            let s = a.to_string();
            prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
        }

        #[test]
        fn prop_neg_involution(a in small_rational()) {
            prop_assert_eq!(-(-a), a);
        }
    }
}
