//! Exact rational arithmetic.
//!
//! The paper restricts numeric columns to non-negative rationals `Q≥0`
//! (Section 3), and Section 7.3 additionally considers `N ∪ {−1}`. Aggregate
//! operators must be exact for monotonicity/associativity to hold, so the
//! library uses an exact rational type instead of floating point.
//!
//! The representation is a normalised `numerator / denominator` pair of
//! `i128`. All constructors normalise (gcd-reduced, denominator positive), so
//! equality and hashing are structural.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number with `i128` numerator and denominator.
///
/// The value is always kept in normal form: the denominator is strictly
/// positive and `gcd(|numerator|, denominator) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Error returned when parsing or constructing a [`Rational`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RationalError {
    /// The denominator was zero.
    ZeroDenominator,
    /// The reduced value has no normal form in `i128` (e.g. `1 / i128::MIN`,
    /// whose positive denominator magnitude exceeds `i128::MAX`).
    Unrepresentable,
    /// The textual form could not be parsed.
    Parse(String),
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::ZeroDenominator => write!(f, "denominator must be non-zero"),
            RationalError::Unrepresentable => {
                write!(f, "reduced rational does not fit in i128")
            }
            RationalError::Parse(s) => write!(f, "cannot parse rational from {s:?}"),
        }
    }
}

impl std::error::Error for RationalError {}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn gcd(a: i128, b: i128) -> i128 {
    // Unsigned magnitudes: `i128::MIN.abs()` would overflow, but its
    // magnitude fits in u128. The result divides whichever operand is
    // non-zero and positive-representable, so the cast back is safe for
    // every call site (denominators are < 2^127).
    gcd_u128(a.unsigned_abs(), b.unsigned_abs()) as i128
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// Returns an error if the denominator is zero, or if the reduced value
    /// has no `i128` normal form (e.g. `1 / i128::MIN`: its positive
    /// denominator magnitude exceeds `i128::MAX`).
    pub fn new(num: i128, den: i128) -> Result<Rational, RationalError> {
        if den == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        Self::checked_normalised(num, den).ok_or(RationalError::Unrepresentable)
    }

    /// Reduces `num / den` (`den != 0`) to normal form, working on unsigned
    /// magnitudes so every `i128` operand — `i128::MIN` included — is
    /// handled. `None` if the *reduced* magnitude does not fit back into
    /// `i128` (a positive denominator of 2^127, or a positive numerator of
    /// 2^127 after sign cancellation).
    fn checked_normalised(num: i128, den: i128) -> Option<Rational> {
        debug_assert!(den != 0);
        if num == 0 {
            return Some(Rational { num: 0, den: 1 });
        }
        let negative = (num < 0) != (den < 0);
        let mut n = num.unsigned_abs();
        let mut d = den.unsigned_abs();
        let g = gcd_u128(n, d);
        n /= g;
        d /= g;
        if d > i128::MAX as u128 {
            return None;
        }
        let num = if negative {
            if n > i128::MAX as u128 + 1 {
                return None;
            }
            // `n == 2^127` wraps to `i128::MIN` under `as`, whose wrapping
            // negation is itself — exactly the intended value.
            (n as i128).wrapping_neg()
        } else {
            if n > i128::MAX as u128 {
                return None;
            }
            n as i128
        };
        Some(Rational {
            num,
            den: d as i128,
        })
    }

    /// Infallible normalisation for internal arithmetic, whose operands are
    /// already in normal form: reduction can only shrink magnitudes, so the
    /// result always fits (the `expect` is a debug guard, not a code path).
    fn normalised(num: i128, den: i128) -> Rational {
        Self::checked_normalised(num, den).expect("reduced rational fits in i128")
    }

    /// Creates a rational from an integer.
    pub const fn from_int(i: i64) -> Rational {
        Rational {
            num: i as i128,
            den: 1,
        }
    }

    /// The numerator of the normal form (sign carried here).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// The denominator of the normal form (always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is `>= 0`, i.e. lies in `Q≥0`.
    pub fn is_non_negative(&self) -> bool {
        self.num >= 0
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Absolute value.
    ///
    /// # Panics
    /// Panics if the numerator is `i128::MIN` (whose magnitude is not
    /// representable); use [`Rational::checked_abs`] to handle that case.
    pub fn abs(&self) -> Rational {
        self.checked_abs()
            .expect("absolute value of i128::MIN numerator overflows")
    }

    /// Checked absolute value: `None` if the numerator is `i128::MIN`, whose
    /// magnitude does not fit in `i128`.
    pub fn checked_abs(&self) -> Option<Rational> {
        Some(Rational {
            num: self.num.checked_abs()?,
            den: self.den,
        })
    }

    /// Checked negation: `None` if the numerator is `i128::MIN`, whose
    /// negation does not fit in `i128`.
    pub fn checked_neg(&self) -> Option<Rational> {
        Some(Rational {
            num: self.num.checked_neg()?,
            den: self.den,
        })
    }

    /// Multiplicative inverse; `None` for zero and for the one
    /// unrepresentable case (a numerator of `i128::MIN`, whose reciprocal
    /// would need a positive denominator of 2^127).
    pub fn recip(&self) -> Option<Rational> {
        if self.num == 0 {
            None
        } else {
            Self::checked_normalised(self.den, self.num)
        }
    }

    /// Returns the value as `f64` (approximate; only for reporting).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition (guards against i128 overflow).
    pub fn checked_add(&self, other: &Rational) -> Option<Rational> {
        // Integer fast path: aggregate columns are overwhelmingly integers,
        // and an integer sum is already in normal form — skip the gcd.
        if self.den == 1 && other.den == 1 {
            return self
                .num
                .checked_add(other.num)
                .map(|num| Rational { num, den: 1 });
        }
        let num = self
            .num
            .checked_mul(other.den)?
            .checked_add(other.num.checked_mul(self.den)?)?;
        let den = self.den.checked_mul(other.den)?;
        Some(Self::normalised(num, den))
    }

    /// Checked multiplication (guards against i128 overflow).
    pub fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep intermediate values small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Some(Self::normalised(num, den))
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Integer fast path: two integers compare by numerator alone, with no
        // sign split or cross-multiplication.
        if self.den == 1 && other.den == 1 {
            return self.num.cmp(&other.num);
        }
        // Sign comparison first: it is exact, and it reduces the remaining
        // work to positive magnitudes (which `u128` holds even for an
        // `i128::MIN` numerator).
        let ls = self.num.signum();
        let rs = other.num.signum();
        if ls != rs {
            return ls.cmp(&rs);
        }
        if ls == 0 {
            return Ordering::Equal;
        }
        // a/b ? c/d  <=>  a*d ? c*b (b, d > 0) when the products fit.
        if let (Some(l), Some(r)) = (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            return l.cmp(&r);
        }
        // Cross-multiplication overflowed: compare the magnitudes exactly by
        // continued-fraction (Euclidean) steps — never by floating point,
        // which can report Equal for distinct values and misorder bounds.
        let ord = cmp_pos_fractions(
            self.num.unsigned_abs(),
            self.den.unsigned_abs(),
            other.num.unsigned_abs(),
            other.den.unsigned_abs(),
        );
        if ls < 0 {
            ord.reverse()
        } else {
            ord
        }
    }
}

/// Exact comparison of `a/b` and `c/d` for strictly positive operands.
///
/// Compares integer parts, then recurses on the reciprocals of the remainders
/// (`a/b = q + r/b`, and `r1/b ? r2/d  <=>  d/r2 ? b/r1`). Each step is a
/// Euclidean division, so the operands shrink like a gcd computation and no
/// intermediate value can overflow.
fn cmp_pos_fractions(mut a: u128, mut b: u128, mut c: u128, mut d: u128) -> Ordering {
    loop {
        let (q1, r1) = (a / b, a % b);
        let (q2, r2) = (c / d, c % d);
        match q1.cmp(&q2) {
            Ordering::Equal => {}
            other => return other,
        }
        match (r1 == 0, r2 == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => (a, b, c, d) = (d, r2, b, r1),
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(&rhs).expect("rational addition overflow")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division multiplies by the reciprocal, which clippy flags as suspicious.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        let r = rhs.recip().expect("division by zero rational");
        self * r
    }
}

impl Neg for Rational {
    type Output = Rational;
    /// # Panics
    /// Panics if the numerator is `i128::MIN` (see [`Rational::checked_neg`]);
    /// the unchecked `-` used to wrap silently in release builds.
    fn neg(self) -> Rational {
        self.checked_neg()
            .expect("negation of i128::MIN numerator overflows")
    }
}

impl From<i64> for Rational {
    fn from(i: i64) -> Self {
        Rational::from_int(i)
    }
}

impl From<i32> for Rational {
    fn from(i: i32) -> Self {
        Rational::from_int(i as i64)
    }
}

impl From<u32> for Rational {
    fn from(i: u32) -> Self {
        Rational::from_int(i as i64)
    }
}

impl From<usize> for Rational {
    fn from(i: usize) -> Self {
        Rational {
            num: i as i128,
            den: 1,
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Rational {
    type Err = RationalError;

    /// Parses `"3"`, `"-3"`, `"3/4"`, or decimal notation `"3.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n
                .trim()
                .parse()
                .map_err(|_| RationalError::Parse(s.to_string()))?;
            let d: i128 = d
                .trim()
                .parse()
                .map_err(|_| RationalError::Parse(s.to_string()))?;
            return Rational::new(n, d);
        }
        if let Some((int, frac)) = s.split_once('.') {
            let sign = if int.trim_start().starts_with('-') {
                -1
            } else {
                1
            };
            let int_part: i128 = if int.is_empty() || int == "-" {
                0
            } else {
                int.parse()
                    .map_err(|_| RationalError::Parse(s.to_string()))?
            };
            if frac.is_empty() || !frac.chars().all(|c| c.is_ascii_digit()) {
                return Err(RationalError::Parse(s.to_string()));
            }
            let frac_num: i128 = frac
                .parse()
                .map_err(|_| RationalError::Parse(s.to_string()))?;
            let den: i128 = 10i128
                .checked_pow(frac.len() as u32)
                .ok_or_else(|| RationalError::Parse(s.to_string()))?;
            let num = int_part
                .checked_mul(den)
                .and_then(|v| v.checked_add(sign * frac_num))
                .ok_or_else(|| RationalError::Parse(s.to_string()))?;
            return Rational::new(num, den);
        }
        let n: i128 = s.parse().map_err(|_| RationalError::Parse(s.to_string()))?;
        Ok(Rational { num: n, den: 1 })
    }
}

/// Convenience constructor: `rat(3)` is the integer 3 as a rational.
pub fn rat(i: i64) -> Rational {
    Rational::from_int(i)
}

/// Convenience constructor: `ratio(1, 2)` is one half.
///
/// # Panics
/// Panics if `den == 0`.
pub fn ratio(num: i64, den: i64) -> Rational {
    Rational::new(num as i128, den as i128).expect("non-zero denominator")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rational::new(2, 4).unwrap(), ratio(1, 2));
        assert_eq!(Rational::new(-2, -4).unwrap(), ratio(1, 2));
        assert_eq!(Rational::new(2, -4).unwrap(), ratio(-1, 2));
        assert_eq!(Rational::new(0, -7).unwrap(), Rational::ZERO);
        assert!(Rational::new(1, 0).is_err());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["3", "-3", "1/2", "-7/3", "0"] {
            let r: Rational = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert_eq!("3.25".parse::<Rational>().unwrap(), ratio(13, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), ratio(-1, 2));
        assert_eq!(".".parse::<Rational>().ok(), None);
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ratio(1, 2) + ratio(1, 3), ratio(5, 6));
        assert_eq!(ratio(1, 2) - ratio(1, 3), ratio(1, 6));
        assert_eq!(ratio(2, 3) * ratio(3, 4), ratio(1, 2));
        assert_eq!(ratio(1, 2) / ratio(1, 4), rat(2));
        assert_eq!(-ratio(1, 2), ratio(-1, 2));
        assert_eq!(rat(5).abs(), rat(5));
        assert_eq!(rat(-5).abs(), rat(5));
    }

    #[test]
    fn ordering() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(rat(-1) < Rational::ZERO);
        assert_eq!(rat(3).min(rat(4)), rat(3));
        assert_eq!(rat(3).max(rat(4)), rat(4));
    }

    #[test]
    fn ordering_is_exact_under_i128_overflow() {
        // Cross-multiplying these overflows i128 (|num·den'| ≈ 1e39), and both
        // values round to 10.0 as f64 — the old float fallback reported
        // Equal/misordered; the exact path must not.
        let big = 10i128.pow(20);
        let den = 10i128.pow(19);
        let hi = Rational::new(big + 1, den).unwrap(); // 10 + 1e-19
        let lo = Rational::new(big - 1, den).unwrap(); // 10 - 1e-19
        assert_eq!(hi.cmp(&lo), Ordering::Greater);
        assert_eq!(lo.cmp(&hi), Ordering::Less);
        assert_eq!(hi.cmp(&hi), Ordering::Equal);
        // min/max (used to order [glb, lub]) route through the same cmp.
        assert_eq!(hi.min(lo), lo);
        assert_eq!(hi.max(lo), hi);
        // Values differing only past f64 precision, with huge denominators.
        let a = Rational::new(2i128.pow(100) + 1, 2i128.pow(99)).unwrap();
        let b = Rational::new(2i128.pow(100) - 1, 2i128.pow(99)).unwrap();
        assert_eq!(a.cmp(&b), Ordering::Greater);
        // Mixed signs decide on sign alone even when magnitudes overflow.
        let neg = Rational::new(-(big + 1), den).unwrap();
        assert_eq!(neg.cmp(&hi), Ordering::Less);
        assert_eq!(neg.cmp(&neg), Ordering::Equal);
        // Negative pair: magnitude comparison is reversed.
        let neg_lo = Rational::new(-(big - 1), den).unwrap();
        assert_eq!(neg.cmp(&neg_lo), Ordering::Less);
    }

    #[test]
    fn min_numerator_is_ordered_and_checked() {
        let min = Rational::new(i128::MIN, 1).unwrap();
        let almost = Rational::new(i128::MIN + 1, 1).unwrap();
        assert_eq!(min.cmp(&almost), Ordering::Less);
        assert_eq!(min.cmp(&min), Ordering::Equal);
        assert!(min < Rational::ZERO);
        // The magnitude of i128::MIN is not representable: the checked paths
        // report None instead of wrapping.
        assert_eq!(min.checked_neg(), None);
        assert_eq!(min.checked_abs(), None);
        assert_eq!(
            almost.checked_neg(),
            Some(Rational::new(i128::MAX, 1).unwrap())
        );
        assert_eq!(
            almost.checked_abs(),
            Some(Rational::new(i128::MAX, 1).unwrap())
        );
        // A huge-denominator value against the integer MIN, both negative.
        let frac = Rational::new(i128::MIN + 1, i128::MAX).unwrap();
        assert_eq!(min.cmp(&frac), Ordering::Less);
        assert_eq!(frac.cmp(&min), Ordering::Greater);
        // Constructors report unrepresentable reductions as recoverable
        // errors instead of panicking: 1/MIN needs a denominator of 2^127.
        assert_eq!(
            Rational::new(1, i128::MIN),
            Err(RationalError::Unrepresentable)
        );
        assert_eq!(min.recip(), None, "reciprocal of MIN is unrepresentable");
        // Reduction can rescue a MIN operand when a factor cancels.
        assert_eq!(
            Rational::new(2, i128::MIN).unwrap(),
            Rational::new(-1, 2i128.pow(126)).unwrap()
        );
        assert_eq!(
            Rational::new(i128::MIN, 2).unwrap(),
            Rational::new(-(2i128.pow(126)), 1).unwrap()
        );
        assert_eq!(Rational::new(i128::MIN, i128::MIN).unwrap(), Rational::ONE);
    }

    #[test]
    #[should_panic(expected = "i128::MIN")]
    fn neg_of_min_numerator_panics_instead_of_wrapping() {
        let min = Rational::new(i128::MIN, 1).unwrap();
        let _ = -min;
    }

    #[test]
    fn predicates() {
        assert!(rat(0).is_zero());
        assert!(rat(3).is_integer());
        assert!(!ratio(1, 2).is_integer());
        assert!(rat(0).is_non_negative());
        assert!(!rat(-1).is_non_negative());
        assert_eq!(ratio(2, 5).recip(), Some(ratio(5, 2)));
        assert_eq!(Rational::ZERO.recip(), None);
    }

    fn small_rational() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..100).prop_map(|(n, d)| Rational::new(n, d).unwrap())
    }

    fn huge_rational() -> impl Strategy<Value = Rational> {
        // Numerators/denominators big enough that cross-multiplication
        // overflows i128 for most pairs, forcing the Euclidean path.
        (i128::MIN..i128::MAX, 1i128..i128::MAX).prop_map(|(n, d)| Rational::new(n, d).unwrap())
    }

    /// Reference comparison via 256-bit widening cross-multiplication,
    /// independent of the Euclidean implementation under test.
    fn wide_cmp(a: &Rational, b: &Rational) -> Ordering {
        fn widening_mul(x: u128, y: u128) -> (u128, u128) {
            const MASK: u128 = (1 << 64) - 1;
            let (x0, x1) = (x & MASK, x >> 64);
            let (y0, y1) = (y & MASK, y >> 64);
            let lo_lo = x0 * y0;
            let mid1 = x1 * y0;
            let mid2 = x0 * y1;
            let hi_hi = x1 * y1;
            let (mid, carry1) = mid1.overflowing_add(mid2);
            let carry1 = (carry1 as u128) << 64;
            let (lo, carry2) = lo_lo.overflowing_add(mid << 64);
            let hi = hi_hi + (mid >> 64) + carry1 + carry2 as u128;
            (hi, lo)
        }
        let sign = |r: &Rational| r.numerator().signum();
        match (sign(a), sign(b)) {
            (sa, sb) if sa != sb => return sa.cmp(&sb),
            (0, _) => return Ordering::Equal,
            _ => {}
        }
        let l = widening_mul(a.numerator().unsigned_abs(), b.denominator().unsigned_abs());
        let r = widening_mul(b.numerator().unsigned_abs(), a.denominator().unsigned_abs());
        let mag = l.cmp(&r);
        if sign(a) < 0 {
            mag.reverse()
        } else {
            mag
        }
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_ordering_total(a in small_rational(), b in small_rational()) {
            let by_float = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
            // Exact comparison must agree with float comparison on small inputs
            // unless the float comparison says Equal due to rounding.
            if a != b {
                prop_assert!(by_float == a.cmp(&b) || by_float == Ordering::Equal);
            }
        }

        #[test]
        fn prop_roundtrip_display(a in small_rational()) {
            let s = a.to_string();
            prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
        }

        #[test]
        fn prop_neg_involution(a in small_rational()) {
            prop_assert_eq!(-(-a), a);
        }

        #[test]
        fn prop_cmp_is_exact_on_huge_operands(a in huge_rational(), b in huge_rational()) {
            let got = a.cmp(&b);
            prop_assert_eq!(got, wide_cmp(&a, &b), "{} vs {}", a, b);
            // Antisymmetry and Eq-consistency of the total order.
            prop_assert_eq!(b.cmp(&a), got.reverse());
            prop_assert_eq!(got == Ordering::Equal, a == b);
            prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        }

        /// The `den == 1` comparison fast path agrees with the exact
        /// cross-multiplication reference, both int-vs-int and int-vs-ratio.
        #[test]
        fn prop_int_fast_cmp_matches_exact_reference(
            a in i64::MIN..i64::MAX,
            b in i64::MIN..i64::MAX,
            q in small_rational(),
        ) {
            let ra = Rational::from_int(a);
            let rb = Rational::from_int(b);
            prop_assert_eq!(ra.cmp(&rb), a.cmp(&b));
            prop_assert_eq!(ra.cmp(&rb), wide_cmp(&ra, &rb));
            // Mixed: only one side is on the fast path's `den == 1` shape.
            prop_assert_eq!(ra.cmp(&q), wide_cmp(&ra, &q));
            prop_assert_eq!(q.cmp(&ra), wide_cmp(&q, &ra));
        }

        /// The `den == 1` addition fast path produces the same normal form
        /// as the general cross-multiplying path.
        #[test]
        fn prop_int_fast_add_matches_general_path(
            a in i64::MIN..i64::MAX,
            b in i64::MIN..i64::MAX,
            q in small_rational(),
        ) {
            let ra = Rational::from_int(a);
            let rb = Rational::from_int(b);
            let sum = ra.checked_add(&rb).unwrap();
            prop_assert_eq!(sum.numerator(), a as i128 + b as i128);
            prop_assert_eq!(sum.denominator(), 1);
            // Fast path composes with the general path: (a + q) + (b - q)
            // routes through cross-multiplication yet lands on the same
            // normal form as the integer-only sum.
            if let Some(aq) = ra.checked_add(&q) {
                if let Some(bq) = rb.checked_add(&q.checked_neg().unwrap()) {
                    if let Some(roundabout) = aq.checked_add(&bq) {
                        prop_assert_eq!(roundabout, sum);
                    }
                }
            }
        }
    }
}
